#!/usr/bin/env python3
"""Cross-seed stability check: do the paper's shapes hold for any seed?

Runs the Top-10K suite (plus Cloudflare rules and pools) under several
world seeds and reports which shape checks held everywhere.

Usage: python scripts/seed_stability.py [--seeds 7 8 9] [--scale tiny]
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.compare import compare_findings, numeric_drift
from repro.analysis.experiments import ExperimentSuite
from repro.websim.world import World, WorldConfig

DRIFT_KEYS = (
    "top10k.appengine_rate", "top10k.cloudflare_rate",
    "top10k.length_recall", "top10k.gt_precision",
    "table9.baseline_enterprise",
)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--seeds", type=int, nargs="+", default=[7, 8, 9])
    parser.add_argument("--scale", default="tiny",
                        choices=("nano", "tiny", "small"))
    args = parser.parse_args()

    factory = {"nano": WorldConfig.nano, "tiny": WorldConfig.tiny,
               "small": WorldConfig.small}[args.scale]
    findings_by_seed = {}
    for seed in args.seeds:
        print(f"running suite for seed {seed}...", flush=True)
        suite = ExperimentSuite(World(factory(seed=seed)))
        report = suite.run(include_top1m=False, include_vps=False,
                           include_ooni=False)
        findings_by_seed[seed] = report.findings

    stability = compare_findings(findings_by_seed)
    print(f"\nseeds: {stability.seeds}")
    for name in stability.stable_checks():
        print(f"  [STABLE]   {name}")
    for name in stability.unstable_checks():
        print(f"  [UNSTABLE] {name}")
    print(f"stability rate: {stability.stability_rate():.0%}\n")

    print("numeric drift across seeds:")
    for key, stats in numeric_drift(findings_by_seed, DRIFT_KEYS).items():
        print(f"  {key}: min={stats['min']:.4f} max={stats['max']:.4f} "
              f"spread={stats['spread']:.1%}")
    return 0 if stability.stability_rate() >= 0.8 else 1


if __name__ == "__main__":
    sys.exit(main())
