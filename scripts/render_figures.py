#!/usr/bin/env python3
"""Render Figures 1–5 to SVG files under figures/.

Usage: python scripts/render_figures.py [--scale tiny|small] [--outdir figures]
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.experiments import ExperimentSuite
from repro.analysis.svgplot import save_svg
from repro.websim.world import World, WorldConfig


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", default="tiny", choices=("nano", "tiny", "small"))
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--outdir", default="figures")
    args = parser.parse_args()

    factory = {"nano": WorldConfig.nano, "tiny": WorldConfig.tiny,
               "small": WorldConfig.small}[args.scale]
    world = World(factory(seed=args.seed))
    suite = ExperimentSuite(world)
    report = suite.run(include_top1m=False, include_vps=False,
                       include_ooni=False)

    os.makedirs(args.outdir, exist_ok=True)
    for key, figure in sorted(report.figures.items()):
        path = os.path.join(args.outdir, f"{key}.svg")
        save_svg(figure, path)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
