"""Citizen Lab block-list (simulated).

The Citizen Lab test lists [12] enumerate domains known or suspected to be
censored somewhere.  The study uses the list two ways:

* as a *safety filter*: listed domains are never probed from residential
  vantage points (§3.3), and
* as the corpus for the §7.1 finding that **9% of listed domains returned
  a CDN block page in at least one country** — i.e. geoblocking confounds
  censorship measurement.

The real global list is *curated and bounded* (on the order of a thousand
entries), not an exhaustive enumeration of everything any censor blocks.
The simulated list therefore samples:

* a slice of domains the synthetic censors actually block,
* a slice of sensitive-category domains (likely censorship targets), and
* benign popular domains — the list's control entries, drawn with a bias
  toward high-traffic news/media/social sites, which in practice sit on
  CDNs (and sometimes geoblock — the §7.1 confounder arises organically).
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.util.rng import derive_rng
from repro.websim.categories import CategoryTaxonomy
from repro.websim.domains import DomainPopulation

#: Benign control entries lean toward these categories (news, media,
#: social — the kinds of sites censorship measurement cares about).
_CONTROL_CATEGORIES = (
    "News and Media", "Newsgroups and Message Boards", "Streaming Media",
    "Society and Lifestyle", "Search Engines and Portals", "Shopping",
)


class CitizenLabList:
    """The simulated global test list (curated, bounded size)."""

    def __init__(self, population: DomainPopulation,
                 taxonomy=None, seed: int = 0,
                 max_size: int = 1_500,
                 censored_share: float = 0.45,
                 sensitive_share: float = 0.25) -> None:
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        self._population = population
        taxonomy = taxonomy or CategoryTaxonomy()
        rng = derive_rng(seed, "citizenlab")

        censored_pool: List[str] = []
        sensitive_pool: List[str] = []
        control_pool: List[str] = []
        risky = set(taxonomy.risky_names())
        for domain in population:
            if domain.censored_in:
                censored_pool.append(domain.name)
            elif domain.category in risky:
                sensitive_pool.append(domain.name)
            elif domain.category in _CONTROL_CATEGORIES:
                control_pool.append(domain.name)

        entries: Set[str] = set()
        n_censored = min(len(censored_pool), round(max_size * censored_share))
        n_sensitive = min(len(sensitive_pool), round(max_size * sensitive_share))
        entries.update(rng.sample(censored_pool, n_censored))
        entries.update(rng.sample(sensitive_pool, n_sensitive))
        # Benign controls fill the remainder, biased toward popularity:
        # real lists include globally relevant (high-rank) sites.
        n_controls = max(0, max_size - len(entries))
        weighted = sorted(control_pool,
                          key=lambda name: population.get(name).rank)
        head = weighted[: max(n_controls * 3, 10)]
        entries.update(rng.sample(head, min(n_controls, len(head))))
        self._entries = entries

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, domain: object) -> bool:
        return domain in self._entries

    def domains(self) -> List[str]:
        """All listed domains, sorted."""
        return sorted(self._entries)

    def filter_out(self, domains: Iterable[str]) -> List[str]:
        """Remove listed domains from a probe list (order preserved)."""
        return [d for d in domains if d not in self._entries]
