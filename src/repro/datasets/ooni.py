"""Simulated OONI measurement corpus and the §7.1 confounding analysis.

OONI volunteers test Citizen Lab-list URLs from their own devices and
submit reports containing the full local response but only the *status and
headers* of the control measurement — and the control is often made over
Tor, whose exits many sites block.  The paper mines this corpus for two
findings the module reproduces:

* explicit CDN geoblock pages appear in measurements for ~9% of the
  global test list (geoblocking confounds censorship measurement), and
* control-request blocking dwarfs local-only blocking for Akamai and
  Cloudflare sites (36,028 control-403 measurements vs 14,380
  local-blocked-control-ok), so the usual local-vs-control comparison
  mislabels server-side blocking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.classify import VERDICT_EXPLICIT, classify_body
from repro.core.fingerprints import FingerprintRegistry
from repro.httpsim.messages import Request
from repro.httpsim.url import parse_url
from repro.httpsim.useragent import browser_headers, crawler_headers
from repro.netsim.errors import FetchError
from repro.proxynet.transport import fetch_with_redirects
from repro.util.rng import derive_rng

#: Probability that a site blocks Tor exits outright (fate-sharing with
#: abuse, per Khattak et al. / Singh et al.).  CDN-fronted sites block Tor
#: far more aggressively — the reason §7.1's control-403 count (36,028)
#: dwarfs the local-blocked-control-ok count (14,380).
_TOR_BLOCK_BASE = 0.02
_TOR_BLOCK_CDN = 0.35
_TOR_BLOCK_PROTECTED = 0.70


#: Local bodies above this length are not retained in memory.  Every CDN
#: block page, captcha, and censor page is far below it, so the analyses
#: (which only fingerprint block pages) are unaffected.
BODY_KEEP_THRESHOLD = 6_000


@dataclass(frozen=True)
class OONIMeasurement:
    """One user-submitted report (the fields the analyses consume).

    ``local_body`` is retained only for non-200 or short responses —
    exactly the pages the §7.1 fingerprint scan can match.  ``local_status``
    0 means the local request got no response at all.
    """

    domain: str
    country: str
    local_status: int                 # 0 = no response
    local_body: Optional[str]         # retained when short or non-200
    control_status: int               # 0 = no response; body NOT saved
    control_over_tor: bool

    @property
    def local_blocked(self) -> bool:
        """OONI's anomaly condition on the local side."""
        return self.local_status in (0, 403, 451)

    @property
    def control_blocked(self) -> bool:
        """True when the control itself failed or was denied."""
        return self.control_status in (0, 403, 451)


class OONICorpus:
    """A generated corpus of OONI measurements over a test list."""

    def __init__(self, measurements: List[OONIMeasurement]) -> None:
        self._measurements = measurements

    def __len__(self) -> int:
        return len(self._measurements)

    def __iter__(self):
        return iter(self._measurements)

    @classmethod
    def generate(cls, world, test_list: Sequence[str],
                 countries: Optional[Sequence[str]] = None,
                 measurements_per_pair: int = 2,
                 seed: int = 0) -> "OONICorpus":
        """Simulate volunteers testing the list from many countries."""
        codes = list(countries) if countries is not None else (
            world.registry.luminati_codes())
        rng = derive_rng(seed, "ooni")
        measurements: List[OONIMeasurement] = []
        for domain in test_list:
            try:
                record = world.population.get(domain)
            except KeyError:
                continue
            if record.bot_protection:
                tor_block_p = _TOR_BLOCK_PROTECTED
            elif record.is_cdn_fronted:
                tor_block_p = _TOR_BLOCK_CDN
            else:
                tor_block_p = _TOR_BLOCK_BASE
            for country in codes:
                for _ in range(measurements_per_pair):
                    local_status, local_body = cls._probe(
                        world, domain, world.residential_address(country, rng))
                    # Control: often over Tor; Tor-blocking sites 403 it,
                    # and the saved report keeps no control body.
                    over_tor = rng.random() < 0.8
                    if over_tor and rng.random() < tor_block_p:
                        control_status = 403
                    else:
                        control_status, _ = cls._probe(
                            world, domain, world.vps_address("US"))
                    measurements.append(OONIMeasurement(
                        domain=domain,
                        country=country,
                        local_status=local_status,
                        local_body=local_body,
                        control_status=control_status,
                        control_over_tor=over_tor,
                    ))
        return cls(measurements)

    @staticmethod
    def _probe(world, domain: str, ip: str) -> Tuple[int, Optional[str]]:
        request = Request(url=parse_url(f"http://{domain}/"),
                          headers=browser_headers())
        try:
            result = fetch_with_redirects(world, request, ip)
        except FetchError:
            return 0, None
        status = result.response.status
        body = result.response.body
        if status == 200 and len(body) > BODY_KEEP_THRESHOLD:
            body = None
        return status, body


@dataclass
class OONIGeoblockFindings:
    """The §7.1 headline numbers."""

    total_measurements: int
    geoblock_measurements: int
    geoblock_domains: List[str]
    geoblock_countries: List[str]
    test_list_size: int

    @property
    def domain_fraction(self) -> float:
        """Fraction of the test list with >= 1 geoblock observation."""
        if not self.test_list_size:
            return 0.0
        return len(self.geoblock_domains) / self.test_list_size


def find_geoblock_confounding(corpus: OONICorpus, test_list_size: int,
                              registry: Optional[FingerprintRegistry] = None
                              ) -> OONIGeoblockFindings:
    """Scan the corpus for explicit CDN geoblock pages."""
    reg = registry or FingerprintRegistry.default()
    hits = 0
    domains: Set[str] = set()
    countries: Set[str] = set()
    for m in corpus:
        if m.local_body is None:
            continue
        verdict = classify_body(m.local_body, reg)
        if verdict.kind == VERDICT_EXPLICIT:
            hits += 1
            domains.add(m.domain)
            countries.add(m.country)
    return OONIGeoblockFindings(
        total_measurements=len(corpus),
        geoblock_measurements=hits,
        geoblock_domains=sorted(domains),
        geoblock_countries=sorted(countries),
        test_list_size=test_list_size,
    )


@dataclass
class ControlBlockingStats:
    """Control-vs-local blocking asymmetry for CDN-fronted domains."""

    control_403: int          # control returned 403 (Tor exit blocking etc.)
    local_blocked_control_ok: int
    blockpages_with_blocked_control: int


def control_blocking_stats(corpus: OONICorpus, cdn_domains: Set[str],
                           registry: Optional[FingerprintRegistry] = None
                           ) -> ControlBlockingStats:
    """The 36,028 / 14,380 / >30k comparison of §7.1 (shape)."""
    reg = registry or FingerprintRegistry.default()
    control_403 = 0
    local_only = 0
    blockpage_with_blocked_control = 0
    for m in corpus:
        if m.domain not in cdn_domains:
            continue
        if m.control_status == 403:
            control_403 += 1
        if m.local_blocked and not m.control_blocked:
            local_only += 1
        if m.local_body is not None and m.control_blocked:
            if classify_body(m.local_body, reg).is_blockpage:
                blockpage_with_blocked_control += 1
    return ControlBlockingStats(
        control_403=control_403,
        local_blocked_control_ok=local_only,
        blockpages_with_blocked_control=blockpage_with_blocked_control,
    )
