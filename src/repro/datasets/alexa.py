"""Alexa-style ranked domain lists over the synthetic population."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.util.rng import derive_rng
from repro.websim.domains import DomainPopulation


class AlexaList:
    """Ranked list views (Top 10K, Top 1M) of a domain population."""

    def __init__(self, population: DomainPopulation) -> None:
        self._population = population

    def top(self, n: int) -> List[str]:
        """The ``n`` highest-ranked domain names."""
        return [d.name for d in self._population.top(n)]

    def top10k(self) -> List[str]:
        """The Top-10K list (or the whole population when smaller)."""
        return self.top(min(10_000, len(self._population)))

    def full(self) -> List[str]:
        """Every ranked domain (the Top-1M stand-in)."""
        return [d.name for d in self._population]

    def sample(self, domains: Sequence[str], fraction: float,
               seed: int = 0) -> List[str]:
        """A deterministic random sample of a domain list (§5.1.2)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = derive_rng(seed, "alexa-sample")
        k = max(1, round(len(domains) * fraction))
        return sorted(rng.sample(list(domains), k=min(k, len(domains))))
