"""FortiGuard-style web categorization service (simulated).

The paper classifies probe lists with FortiGuard and removes dangerous or
sensitive categories (pornography, weapons, spam, malicious, …) plus
unrated domains before probing from residential vantage points (§3.3).
The simulated service returns the population's ground-truth category with
a small, deterministic error rate — real categorizers misfile sites, and
the safety filter has to live with that.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.util.rng import derive_rng
from repro.websim.categories import CategoryTaxonomy
from repro.websim.domains import DomainPopulation


class FortiGuardClient:
    """Category lookups and safety filtering over a domain population."""

    def __init__(self, population: DomainPopulation,
                 taxonomy: Optional[CategoryTaxonomy] = None,
                 error_rate: float = 0.01, seed: int = 0) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        self._population = population
        self._taxonomy = taxonomy or CategoryTaxonomy()
        self._error_rate = error_rate
        self._seed = seed

    def categorize(self, domain: str) -> str:
        """Return the category FortiGuard reports for a domain.

        Unknown domains come back "Unrated"; a small deterministic
        fraction of known domains are misfiled into a sibling category.
        """
        try:
            record = self._population.get(domain)
        except KeyError:
            return "Unrated"
        if self._error_rate > 0.0:
            rng = derive_rng(self._seed, "fortiguard", domain)
            if rng.random() < self._error_rate:
                names = self._taxonomy.safe_names()
                return names[rng.randrange(len(names))]
        return record.category

    def categorize_all(self, domains: Iterable[str]) -> Dict[str, str]:
        """Batch categorization."""
        return {d: self.categorize(d) for d in domains}

    def is_safe(self, domain: str) -> bool:
        """True when a domain's category is safe to probe residentially."""
        category = self.categorize(domain)
        if category == "Unrated":
            return False
        if category not in self._taxonomy:
            return False
        return not self._taxonomy.get(category).risky

    def filter_safe(self, domains: Iterable[str]) -> List[str]:
        """Keep only domains whose category is safe (order preserved)."""
        return [d for d in domains if self.is_safe(d)]
