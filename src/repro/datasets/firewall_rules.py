"""A full Firewall Access Rules engine (Cloudflare semantics, §6).

The Table 9 dataset (:mod:`repro.datasets.cloudflare_rules`) models the
*country-scoped* rules Cloudflare shared.  The real feature is richer
[15]: customers can whitelist, block, challenge, or JS-challenge visitors
by **IP address, country, or AS number**, with more specific scopes
winning — an IP rule overrides an ASN rule overrides a country rule, and
within a scope ``whitelist`` outranks ``block`` outranks ``challenge``
outranks ``js_challenge``.

This module implements that evaluation engine so per-zone policies can be
expressed and tested faithfully, including the whitelist-escape pattern
("block country X but whitelist our office IP").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

ACTION_PRIORITY = ("whitelist", "block", "challenge", "js_challenge")
SCOPE_PRIORITY = ("ip", "asn", "country")


@dataclass(frozen=True)
class FirewallRule:
    """One access rule for a zone."""

    action: str           # whitelist | block | challenge | js_challenge
    scope: str            # ip | asn | country
    target: str           # dotted quad, "AS64512", or ISO country code

    def __post_init__(self) -> None:
        if self.action not in ACTION_PRIORITY:
            raise ValueError(f"unknown action: {self.action!r}")
        if self.scope not in SCOPE_PRIORITY:
            raise ValueError(f"unknown scope: {self.scope!r}")

    def matches(self, ip: str, country: Optional[str],
                asn: Optional[int]) -> bool:
        """Does this rule apply to the visitor?"""
        if self.scope == "ip":
            return ip == self.target
        if self.scope == "asn":
            normalized = self.target.upper().lstrip("AS")
            return asn is not None and str(asn) == normalized
        return country is not None and country == self.target


@dataclass
class ZoneRuleSet:
    """All access rules of one zone, with Cloudflare's resolution order."""

    rules: List[FirewallRule] = field(default_factory=list)

    def add(self, action: str, scope: str, target: str) -> FirewallRule:
        """Create and attach a rule."""
        rule = FirewallRule(action=action, scope=scope, target=target)
        self.rules.append(rule)
        return rule

    def evaluate(self, ip: str, country: Optional[str] = None,
                 asn: Optional[int] = None) -> Optional[str]:
        """Resolve the action for a visitor (None = allow, no rule).

        The most specific matching scope wins outright; within one scope,
        the strongest action wins (whitelist > block > challenge >
        js_challenge).
        """
        for scope in SCOPE_PRIORITY:
            matching = [r for r in self.rules
                        if r.scope == scope and r.matches(ip, country, asn)]
            if not matching:
                continue
            for action in ACTION_PRIORITY:
                if any(r.action == action for r in matching):
                    return None if action == "whitelist" else action
        return None

    def blocked_countries(self) -> List[str]:
        """Countries with an (unescaped) country-scope block rule."""
        return sorted({r.target for r in self.rules
                       if r.scope == "country" and r.action == "block"})


def evaluate_visitor(ruleset: ZoneRuleSet, ip: str, geoip, asn_registry
                     ) -> Optional[str]:
    """Convenience: resolve a visitor using world lookup services."""
    entry = geoip.lookup(ip)
    country = entry.country if entry else None
    record = asn_registry.lookup(ip) if asn_registry is not None else None
    return ruleset.evaluate(ip, country=country,
                            asn=record.asn if record else None)


def rules_from_geopolicy(policy) -> ZoneRuleSet:
    """Express a :class:`~repro.websim.policies.GeoPolicy` as access rules.

    Bridges the simulation's ground-truth policies into the rule engine —
    block rules for blocked countries, challenge rules for challenged
    ones — so both representations can be checked against each other.
    """
    ruleset = ZoneRuleSet()
    for country in sorted(policy.blocked_countries):
        ruleset.add("block", "country", country)
    for country in sorted(policy.challenge_countries):
        page = policy.challenge_page or ""
        action = "js_challenge" if "js" in page else "challenge"
        ruleset.add(action, "country", country)
    return ruleset
