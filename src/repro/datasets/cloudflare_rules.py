"""Simulated Cloudflare Firewall Access Rules snapshot (§6).

Cloudflare provided the authors a July-2018 snapshot of every active
country-scoped access rule: (action, target country, zone tier, activation
date).  Country *blocking* is an Enterprise feature, but a regression
enabled it for Business/Pro/Free zones from April to August 2018 — the
snapshot falls inside that window, giving a glimpse of "unrestricted
geoblocking" (§7.2).

The generator reproduces the snapshot's published aggregates:

* per-tier baseline rates of having any country rule (Table 9 row 1),
* per-tier per-country rates for the 16 countries Table 9 lists, with a
  long tail for unlisted countries,
* activation-date processes: Enterprise rules accumulate from 2016 on;
  non-Enterprise *block* rules exist only inside the regression window
  (challenge rules were always allowed and span the full range),

and exposes the aggregation queries behind Table 9 and Figure 5.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.util.rng import derive_rng

ACTIONS = ("block", "challenge", "js_challenge", "whitelist")
TIERS = ("enterprise", "business", "pro", "free")

#: Zone-count mix per tier (free-tier zones dominate).
TIER_MIX = {"enterprise": 0.01, "business": 0.05, "pro": 0.12, "free": 0.82}

#: Table 9 as published: {country: (all, enterprise, business, pro, free)}
#: — the percentage of zones of that tier with a rule against the country.
TABLE9_TARGETS: Mapping[str, Tuple[float, float, float, float, float]] = {
    "RU": (0.22, 4.90, 1.14, 0.44, 0.19),
    "CN": (0.22, 3.11, 1.16, 0.46, 0.20),
    "KP": (0.20, 16.50, 0.38, 0.17, 0.10),
    "IR": (0.18, 15.57, 0.39, 0.13, 0.09),
    "UA": (0.18, 3.89, 0.71, 0.38, 0.15),
    "RO": (0.14, 3.63, 0.49, 0.24, 0.12),
    "IN": (0.14, 4.18, 0.48, 0.23, 0.11),
    "BR": (0.13, 3.87, 0.43, 0.16, 0.11),
    "VN": (0.13, 3.08, 0.33, 0.16, 0.11),
    "CZ": (0.11, 3.66, 0.40, 0.15, 0.09),
    "ID": (0.11, 2.24, 0.39, 0.12, 0.10),
    "IQ": (0.10, 3.99, 0.32, 0.09, 0.08),
    "HR": (0.10, 3.44, 0.24, 0.13, 0.08),
    "SY": (0.10, 13.74, 0.17, 0.06, 0.02),
    "EE": (0.10, 3.28, 0.32, 0.14, 0.08),
    "SD": (0.10, 13.57, 0.12, 0.04, 0.02),
}

#: Table 9 baseline row: fraction of zones with any country rule.
BASELINE_TARGETS = {
    "enterprise": 0.3707, "business": 0.0269, "pro": 0.0256, "free": 0.0172,
}

#: The sanctioned bundle whose Figure 5 curves move together.
SANCTIONS_BUNDLE = ("KP", "IR", "SY", "SD", "CU")

_SNAPSHOT_DATE = datetime.date(2018, 7, 15)
_REGRESSION_START = datetime.date(2018, 4, 1)
_ENTERPRISE_START = datetime.date(2016, 1, 1)

#: Tail countries available to rules beyond the Table 9 sixteen.
_TAIL_COUNTRIES = ("TR", "PK", "NG", "EG", "TH", "PH", "BD", "MX", "AR",
                   "SA", "AE", "PL", "HU", "BG", "RS", "BY", "KZ", "CU")


@dataclass(frozen=True)
class AccessRule:
    """One active country-scoped rule."""

    zone_id: int
    tier: str
    action: str
    country: str
    activated: datetime.date


class CloudflareRuleDataset:
    """A snapshot of active country-scoped access rules."""

    def __init__(self, rules: List[AccessRule], zones_per_tier: Dict[str, int],
                 snapshot_date: datetime.date = _SNAPSHOT_DATE) -> None:
        self._rules = rules
        self._zones_per_tier = dict(zones_per_tier)
        self.snapshot_date = snapshot_date

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(self._rules)

    def zones(self, tier: str) -> int:
        """Total zone count for a tier."""
        return self._zones_per_tier[tier]

    # ------------------------------------------------------------------ #

    @classmethod
    def generate(cls, n_zones: int = 120_000, seed: int = 0) -> "CloudflareRuleDataset":
        """Generate a snapshot whose aggregates track Table 9.

        Zones are assigned tiers by :data:`TIER_MIX`.  A zone adopts country
        rules with its tier's baseline probability; adopting zones receive
        each Table 9 country independently with the conditional probability
        ``target / baseline``, sanctioned countries arriving as a bundle
        with correlated activation dates (the Figure 5 pattern).
        """
        rng = derive_rng(seed, "cf-rules")
        zones_per_tier = {tier: 0 for tier in TIERS}
        rules: List[AccessRule] = []
        tiers = list(TIER_MIX)
        weights = [TIER_MIX[t] for t in tiers]
        for zone_id in range(n_zones):
            tier = rng.choices(tiers, weights=weights, k=1)[0]
            zones_per_tier[tier] += 1
            tier_index = TIERS.index(tier) + 1
            baseline = BASELINE_TARGETS[tier]
            if rng.random() >= baseline:
                continue
            countries = cls._draw_countries(rng, tier_index, baseline)
            if not countries:
                continue
            bundle_date = cls._draw_date(rng, tier)
            for country in countries:
                if country in SANCTIONS_BUNDLE:
                    # Bundle members activate within days of each other.
                    activated = bundle_date + datetime.timedelta(
                        days=rng.randint(0, 6))
                    if activated > _SNAPSHOT_DATE:
                        activated = _SNAPSHOT_DATE
                else:
                    activated = cls._draw_date(rng, tier)
                action = cls._draw_action(rng, tier, activated)
                rules.append(AccessRule(zone_id=zone_id, tier=tier,
                                        action=action, country=country,
                                        activated=activated))
        return cls(rules, zones_per_tier)

    @staticmethod
    def _draw_countries(rng, tier_index: int, baseline: float) -> List[str]:
        countries: List[str] = []
        conditionals: List[Tuple[str, float]] = []
        for country, row in TABLE9_TARGETS.items():
            conditional = min((row[tier_index] / 100.0) / baseline, 1.0)
            conditionals.append((country, conditional))
            if rng.random() < conditional:
                countries.append(country)
        # Cuba is absent from Table 9's sixteen but present in Figure 5's
        # bundle: zones that block the sanctioned set include it too.
        sanction_hits = sum(1 for c in countries if c in SANCTIONS_BUNDLE)
        if sanction_hits >= 2 and rng.random() < 0.6:
            countries.append("CU")
        # Long tail beyond the published sixteen.
        for country in _TAIL_COUNTRIES:
            if country not in countries and rng.random() < 0.02:
                countries.append(country)
        if not countries:
            # An adopting zone has at least one rule by definition; draw a
            # single country from the tier's conditional distribution so
            # the baseline rates stay on target.
            names = [c for c, _ in conditionals]
            weights = [max(w, 1e-6) for _, w in conditionals]
            countries.append(rng.choices(names, weights=weights, k=1)[0])
        return countries

    @staticmethod
    def _draw_date(rng, tier: str) -> datetime.date:
        if tier == "enterprise":
            start, end = _ENTERPRISE_START, _SNAPSHOT_DATE
        else:
            start, end = _REGRESSION_START, _SNAPSHOT_DATE
        span = (end - start).days
        # Adoption accelerates over time: quadratic bias toward the end.
        offset = int(span * (rng.random() ** 0.5))
        return start + datetime.timedelta(days=offset)

    @staticmethod
    def _draw_action(rng, tier: str, activated: datetime.date) -> str:
        if tier == "enterprise":
            return rng.choices(("block", "challenge", "js_challenge"),
                               weights=(0.8, 0.15, 0.05), k=1)[0]
        if activated >= _REGRESSION_START:
            return rng.choices(("block", "challenge", "js_challenge"),
                               weights=(0.6, 0.3, 0.1), k=1)[0]
        return rng.choices(("challenge", "js_challenge"),
                           weights=(0.75, 0.25), k=1)[0]

    # ------------------------------------------------------------------ #
    # Aggregations (what Cloudflare shared, in aggregate form)

    def baseline_rates(self) -> Dict[str, float]:
        """Fraction of zones per tier with >= 1 country rule (Table 9 row 1)."""
        zones_with_rules: Dict[str, set] = {tier: set() for tier in TIERS}
        for rule in self._rules:
            zones_with_rules[rule.tier].add(rule.zone_id)
        return {tier: (len(zones_with_rules[tier]) / self._zones_per_tier[tier]
                       if self._zones_per_tier[tier] else 0.0)
                for tier in TIERS}

    def country_rates(self, countries: Optional[Sequence[str]] = None
                      ) -> Dict[str, Dict[str, float]]:
        """Per country, per tier (plus 'all'): fraction of zones with a rule."""
        selected = list(countries) if countries is not None else list(TABLE9_TARGETS)
        zone_sets: Dict[Tuple[str, str], set] = {}
        for rule in self._rules:
            if rule.country in selected:
                zone_sets.setdefault((rule.country, rule.tier), set()).add(rule.zone_id)
        total_zones = sum(self._zones_per_tier.values())
        out: Dict[str, Dict[str, float]] = {}
        for country in selected:
            row: Dict[str, float] = {}
            all_zones = 0
            for tier in TIERS:
                zones = zone_sets.get((country, tier), set())
                all_zones += len(zones)
                denom = self._zones_per_tier[tier]
                row[tier] = len(zones) / denom if denom else 0.0
            row["all"] = all_zones / total_zones if total_zones else 0.0
            out[country] = row
        return out

    def activation_series(self, countries: Sequence[str],
                          tier: str = "enterprise",
                          action: str = "block") -> Dict[str, List[Tuple[datetime.date, int]]]:
        """Figure 5: cumulative rule activations over time per country."""
        series: Dict[str, List[Tuple[datetime.date, int]]] = {}
        for country in countries:
            dates = sorted(r.activated for r in self._rules
                           if r.country == country and r.tier == tier
                           and r.action == action)
            cumulative: List[Tuple[datetime.date, int]] = []
            for i, date in enumerate(dates, start=1):
                cumulative.append((date, i))
            series[country] = cumulative
        return series

    def rules_activated_after(self, date: datetime.date) -> int:
        """How many active rules were created on/after a date."""
        return sum(1 for r in self._rules if r.activated >= date)
