"""External datasets and services the study depends on (simulated)."""

from repro.datasets.alexa import AlexaList
from repro.datasets.citizenlab import CitizenLabList
from repro.datasets.firewall_rules import FirewallRule, ZoneRuleSet
from repro.datasets.fortiguard import FortiGuardClient

__all__ = ["AlexaList", "CitizenLabList", "FortiGuardClient",
           "FirewallRule", "ZoneRuleSet"]
