"""FortiGuard-style website category taxonomy.

The paper classifies domains with FortiGuard and (a) removes risky categories
before probing from residential vantage points, and (b) reports geoblocking
rates per category (Tables 3, 4, 8).  The taxonomy here reproduces the
categories that appear in those tables, with population weights proportional
to the paper's per-category tested counts, plus the excluded risky
categories at a realistic share of the raw Alexa population.

Each safe category also carries a ``block_affinity`` multiplier used by the
policy model; Shopping, Personal Vehicles, Auctions, Advertising and Job
Search sites geoblock far more often than, say, Education (Tables 4 and 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Category:
    """One website category."""

    name: str
    weight: float           # relative share of the domain population
    risky: bool = False     # excluded before residential probing
    block_affinity: float = 1.0  # relative geoblock adoption multiplier


# Safe-category weights follow the tested-count column of Table 4, with the
# Top-1M-only categories (Table 8) added at plausible shares.  Affinities are
# tuned so the per-category blocked fractions land near the paper's.
_SAFE_ROWS = [
    # (name, weight, affinity)
    ("Information Technology", 1239, 0.7),
    ("News and Media", 938, 0.9),
    ("Shopping", 787, 3.6),
    ("Business", 758, 1.6),
    ("Education", 583, 0.3),
    ("Finance and Banking", 454, 0.5),
    ("Entertainment", 442, 0.5),
    ("Games", 348, 0.6),
    ("Sports", 179, 1.6),
    ("Reference", 176, 1.1),
    ("Travel", 168, 3.4),
    ("Newsgroups and Message Boards", 143, 2.7),
    ("Advertising", 120, 6.4),
    ("Freeware and Software Downloads", 115, 0.9),
    ("Job Search", 97, 4.0),
    ("Health and Wellness", 92, 1.1),
    ("Personal Vehicles", 78, 1.3),
    ("Web Hosting", 41, 2.3),
    ("Child Education", 8, 12.0),
    ("Society and Lifestyle", 130, 1.2),
    ("Personal Websites and Blogs", 160, 0.6),
    ("Auctions", 30, 4.5),
    ("Government and Legal Organizations", 210, 0.4),
    ("Restaurant and Dining", 90, 0.8),
    ("Streaming Media", 180, 0.7),
    ("Search Engines and Portals", 140, 0.3),
    ("General Organizations", 197, 0.5),
]

# Risky/sensitive categories removed before residential probing (§3.3), at
# roughly the share needed for a Top-10K -> 8,003 safe-domain reduction once
# the Citizen Lab list is also removed.
_RISKY_ROWS = [
    ("Pornography", 420),
    ("Weapons", 45),
    ("Spam URLs", 70),
    ("Malicious Websites", 90),
    ("Drug Abuse", 40),
    ("Dating", 110),
    ("Proxy Avoidance", 60),
    ("Explicit Violence", 25),
    ("Gambling", 180),
    ("Unrated", 640),
]


class CategoryTaxonomy:
    """The full category set with sampling weights."""

    def __init__(self, safe_rows=None, risky_rows=None) -> None:
        safe = safe_rows if safe_rows is not None else _SAFE_ROWS
        risky = risky_rows if risky_rows is not None else _RISKY_ROWS
        self._categories: Dict[str, Category] = {}
        for name, weight, affinity in safe:
            self._categories[name] = Category(
                name=name, weight=float(weight), risky=False,
                block_affinity=float(affinity),
            )
        for name, weight in risky:
            self._categories[name] = Category(
                name=name, weight=float(weight), risky=True, block_affinity=0.0,
            )

    def __iter__(self) -> Iterator[Category]:
        return iter(self._categories.values())

    def __len__(self) -> int:
        return len(self._categories)

    def get(self, name: str) -> Category:
        """Category by name; raises KeyError for unknown names."""
        return self._categories[name]

    def __contains__(self, name: object) -> bool:
        return name in self._categories

    def safe_names(self) -> List[str]:
        """Names of all non-risky categories."""
        return [c.name for c in self if not c.risky]

    def risky_names(self) -> List[str]:
        """Names of all risky categories (excluded from probing)."""
        return [c.name for c in self if c.risky]

    def names(self) -> List[str]:
        """All category names in definition order."""
        return list(self._categories)

    def weights(self, names: Optional[List[str]] = None) -> List[float]:
        """Sampling weights aligned with ``names`` (default: all)."""
        selected = names if names is not None else self.names()
        return [self._categories[n].weight for n in selected]
