"""Top-level-domain distribution for the synthetic Alexa population.

Table 5 of the paper shows that geoblocking sites are dominated by ``.com``
(70 of 100), with ``.net``/``.org`` and a scattering of country TLDs — which
the authors attribute simply to the prevalence of ``.com`` in the Top 10K.
We therefore give the population a realistic TLD mix and let the table fall
out of the census.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

#: (tld, weight) — weights approximate the Alexa Top-1M TLD mix circa 2018.
TLD_WEIGHTS: Sequence[Tuple[str, float]] = (
    ("com", 0.52),
    ("net", 0.05),
    ("org", 0.05),
    ("ru", 0.04),
    ("de", 0.03),
    ("jp", 0.022),
    ("in", 0.02),
    ("br", 0.02),
    ("fr", 0.018),
    ("it", 0.016),
    ("uk", 0.016),
    ("pl", 0.012),
    ("ir", 0.012),
    ("cn", 0.012),
    ("au", 0.01),
    ("es", 0.01),
    ("nl", 0.009),
    ("ca", 0.009),
    ("io", 0.009),
    ("co", 0.008),
    ("info", 0.008),
    ("tv", 0.006),
    ("me", 0.006),
    ("us", 0.006),
    ("gr", 0.005),
    ("cz", 0.005),
    ("se", 0.005),
    ("ch", 0.005),
    ("tr", 0.005),
    ("kr", 0.005),
    ("tw", 0.004),
    ("mx", 0.004),
    ("ar", 0.004),
    ("id", 0.004),
    ("vn", 0.004),
    ("ua", 0.004),
    ("sg", 0.003),
    ("za", 0.003),
    ("edu", 0.003),
    ("gov", 0.002),
)


def pick_tld(rng: random.Random) -> str:
    """Draw a TLD from the weighted distribution."""
    tlds, weights = zip(*TLD_WEIGHTS)
    return rng.choices(tlds, weights=weights, k=1)[0]


def all_tlds() -> List[str]:
    """All TLDs in the distribution."""
    return [t for t, _ in TLD_WEIGHTS]
