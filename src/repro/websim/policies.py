"""Generative geoblocking-policy model, calibrated to the paper's marginals.

Every domain may carry a :class:`GeoPolicy` describing who blocks whom:

* **Sanctions mode** — block exactly the U.S.-sanctioned set (Iran, Syria,
  Sudan, Cuba, North Korea) plus the Crimea region.  Google AppEngine
  enforces this set platform-wide [25]; many Cloudflare/CloudFront
  customers replicate it.
* **Risk mode** — block high-abuse countries (China, Russia, Vietnam, …),
  the dominant motive among Cloudflare free-tier customers (Table 9).
* **Broad mode** — market-segmentation blocking of a wide country set,
  producing the long "Other" tail in Tables 5–7.

Adoption rates are rank-dependent and per-provider, tuned so the measured
tables reproduce the paper's shape:

=============  ===============  ==============
provider       Top-10K adoption  tail adoption
=============  ===============  ==============
AppEngine      40.7%             16.8%
Cloudflare     3.1%              2.6%
CloudFront     1.4%              3.1%
Akamai         ~1%               ~1%   (non-explicit page)
Incapsula      ~1.5%             ~1.5% (non-explicit page)
=============  ===============  ==============

The model also assigns challenge policies (captcha / JS challenge), origin
nginx/varnish GeoIP blocking, the Airbnb-like brand policy, nation-state
censorship sets (a confounder the study must cope with), and one
"transient" policy that disappears between the initial scan and the
confirmation scan — reproducing the makro.co.za episode of §4.2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.util.rng import derive_rng
from repro.websim import blockpages
from repro.websim.countries import CountryRegistry, CRIMEA, HIGH_ABUSE
from repro.websim.domains import (
    AKAMAI,
    APPENGINE,
    BAIDU,
    CLOUDFLARE,
    CLOUDFRONT,
    Domain,
    DomainPopulation,
    INCAPSULA,
    ORIGIN,
)

#: Block-page type served when each provider enforces a country rule.
PROVIDER_BLOCK_PAGE = {
    CLOUDFLARE: blockpages.CLOUDFLARE_BLOCK,
    CLOUDFRONT: blockpages.CLOUDFRONT_BLOCK,
    APPENGINE: blockpages.APPENGINE_BLOCK,
    AKAMAI: blockpages.AKAMAI_BLOCK,
    INCAPSULA: blockpages.INCAPSULA_BLOCK,
    BAIDU: blockpages.BAIDU_BLOCK,
}


#: How a policy denies access: serve a block page, or silently drop the
#: connection (the §7.3 "timeouts as geoblocking" variant).
ACTION_PAGE = "page"
ACTION_DROP = "drop"


@dataclass(frozen=True)
class GeoPolicy:
    """Ground-truth access policy for one domain."""

    enforcer: str                                  # provider id, "origin", "brand"
    block_page: str                                # blockpages page-type id
    blocked_countries: FrozenSet[str] = frozenset()
    blocked_regions: FrozenSet[str] = frozenset()  # e.g. {"crimea"}
    challenge_countries: FrozenSet[str] = frozenset()
    challenge_page: Optional[str] = None
    challenge_all: bool = False                    # "I'm under attack" mode
    expires_epoch: Optional[int] = None            # policy off after this epoch
    mode: str = "none"                             # sanctions | risk | broad | custom
    action: str = ACTION_PAGE                      # page | drop (timeout)

    def active(self, epoch: int) -> bool:
        """Whether the blocking rules are in force at ``epoch``."""
        return self.expires_epoch is None or epoch <= self.expires_epoch

    def blocks(self, country: str, region: Optional[str], epoch: int) -> bool:
        """True when a client in (country, region) is geoblocked."""
        if not self.active(epoch):
            return False
        if country in self.blocked_countries:
            return True
        return region is not None and region in self.blocked_regions

    def challenges(self, country: str) -> bool:
        """True when a client in ``country`` receives a challenge page."""
        return self.challenge_all or country in self.challenge_countries

    @property
    def is_geoblocking(self) -> bool:
        """True when the policy blocks at least one country or region."""
        return bool(self.blocked_countries or self.blocked_regions)


@dataclass(frozen=True)
class Degradation:
    """Application-layer discrimination for one domain (§7.3)."""

    remove_account_countries: FrozenSet[str] = frozenset()
    price_multipliers: Mapping[str, float] = field(default_factory=dict)

    def applies(self, country: str) -> bool:
        """True when this country sees a modified page."""
        return (country in self.remove_account_countries
                or country in self.price_multipliers)


@dataclass(frozen=True)
class PolicyConfig:
    """Calibration knobs for the generative policy model."""

    # Geoblock adoption by provider: (top-10K rate, tail rate).
    adoption: Dict[str, Tuple[float, float]] = field(default_factory=lambda: {
        APPENGINE: (0.407, 0.168),
        CLOUDFRONT: (0.014, 0.031),
        AKAMAI: (0.060, 0.055),
        INCAPSULA: (0.020, 0.016),
        BAIDU: (0.020, 0.010),
    })
    # Cloudflare adoption is tier-based: Table 9's "Baseline" row gives the
    # fraction of zones per account tier with any country rule enabled.
    cf_tier_adoption: Dict[str, float] = field(default_factory=lambda: {
        "enterprise": 0.3707,
        "business": 0.0269,
        "pro": 0.0256,
        "free": 0.0172,
    })
    # Blocking-mode mixture for customer-configured (non-AppEngine) policies.
    mode_weights: Tuple[float, float, float] = (0.48, 0.34, 0.18)  # sanctions/risk/broad
    risk_block_min: int = 2
    risk_block_max: int = 6
    broad_block_min: int = 12
    broad_block_max: int = 45
    # Challenge adoption (Cloudflare country-challenge, JS challenge).
    cf_challenge_rate: float = 0.08
    cf_js_all_rate: float = 0.03
    baidu_challenge_rate: float = 0.25
    # Origin-side GeoIP blocking with stock nginx/varnish pages.
    origin_geoblock_rate: float = 0.004
    # Fraction of origin geoblockers that silently drop connections from
    # blocked countries instead of serving a page (§7.3's timeout
    # phenomenon: "consistent timeouts for certain websites in only some
    # countries").
    origin_timeout_block_rate: float = 0.25
    # Nation-state censorship (confounder): per-censor fraction of domains.
    censorship_rates: Dict[str, float] = field(default_factory=lambda: {
        "IR": 0.012, "CN": 0.02, "SY": 0.006, "RU": 0.006, "TR": 0.008,
        "PK": 0.006, "SA": 0.005, "AE": 0.004, "VN": 0.004, "EG": 0.003,
        "ID": 0.003, "KP": 0.05,
    })
    # One domain whose block-everything policy vanishes after epoch 0
    # (the makro.co.za episode).
    transient_policy: bool = True
    # Application-layer discrimination (§7.3 future work): fraction of
    # domains hiding account features from risk countries, and fraction of
    # commerce domains charging region-dependent prices.
    feature_degradation_rate: float = 0.012
    price_discrimination_rate: float = 0.08


class PolicyModel:
    """Assigns ground-truth policies to a domain population."""

    def __init__(self, registry: CountryRegistry, config: Optional[PolicyConfig] = None,
                 seed: int = 0) -> None:
        self._registry = registry
        self._config = config or PolicyConfig()
        self._seed = seed
        self._sanctioned = frozenset(registry.sanctioned_codes())
        self._abuse_codes = [c for c in HIGH_ABUSE if c in registry]
        self._all_codes = registry.codes()

    @property
    def config(self) -> PolicyConfig:
        """The calibration configuration in use."""
        return self._config

    def assign(self, population: DomainPopulation) -> Dict[str, GeoPolicy]:
        """Compute the policy map {domain name -> GeoPolicy}.

        Domains without any blocking or challenge behaviour are omitted.
        """
        policies: Dict[str, GeoPolicy] = {}
        transient_assigned = False
        for domain in population:
            rng = derive_rng(self._seed, "policy", domain.name)
            policy = self._policy_for(domain, rng)
            if policy is None and self._config.transient_policy and not transient_assigned:
                # Give the first eligible un-policied origin domain past rank
                # 500 a broad block that expires after the initial scan.
                if domain.provider == ORIGIN and domain.rank > 500 and domain.brand is None:
                    k = min(33, max(1, len(self._all_codes) - 1))
                    policy = GeoPolicy(
                        enforcer="origin",
                        block_page=blockpages.NGINX_403,
                        blocked_countries=frozenset(
                            rng.sample(self._all_codes, k=k)),
                        expires_epoch=0,
                        mode="broad",
                    )
                    transient_assigned = True
            if policy is not None:
                policies[domain.name] = policy
        return policies

    def assign_degradations(self, population: DomainPopulation
                            ) -> Dict[str, "Degradation"]:
        """Application-layer discrimination map {domain -> Degradation}.

        Feature removal targets abuse-heavy countries (login/registration
        hidden); price discrimination charges wealthy markets more —
        neither is visible to blockpage-based measurement.
        """
        commerce = {"Shopping", "Travel", "Auctions", "Personal Vehicles"}
        rich = [c.code for c in self._registry if c.gdp_rank <= 25]
        degradations: Dict[str, Degradation] = {}
        for domain in population:
            rng = derive_rng(self._seed, "degrade", domain.name)
            remove: FrozenSet[str] = frozenset()
            multipliers: Dict[str, float] = {}
            if rng.random() < self._config.feature_degradation_rate:
                remove = frozenset(self._draw_risk_set(rng))
            if (domain.category in commerce
                    and rng.random() < self._config.price_discrimination_rate):
                factor = round(rng.uniform(1.1, 1.45), 2)
                k = min(rng.randint(4, 10), len(rich))
                for country in rng.sample(rich, k=k):
                    multipliers[country] = factor
            if remove or multipliers:
                degradations[domain.name] = Degradation(
                    remove_account_countries=remove,
                    price_multipliers=multipliers,
                )
        return degradations

    def assign_censorship(self, population: DomainPopulation) -> Dict[str, Tuple[str, ...]]:
        """Compute {domain name -> censoring countries} (nation-state)."""
        censored: Dict[str, Tuple[str, ...]] = {}
        for domain in population:
            rng = derive_rng(self._seed, "censor", domain.name)
            censors = [
                country for country, rate in sorted(self._config.censorship_rates.items())
                if country in self._registry and rng.random() < rate
            ]
            if censors:
                censored[domain.name] = tuple(censors)
        return censored

    # ------------------------------------------------------------------ #

    def _policy_for(self, domain: Domain, rng: random.Random) -> Optional[GeoPolicy]:
        if domain.brand is not None:
            # Airbnb-like brand: every national site blocks the same set.
            return GeoPolicy(
                enforcer="brand",
                block_page=blockpages.AIRBNB_BLOCK,
                blocked_countries=frozenset({"IR", "SY", "KP"}),
                blocked_regions=frozenset({CRIMEA}),
                mode="sanctions",
            )

        provider = domain.provider
        if provider == ORIGIN:
            return self._origin_policy(domain, rng)
        if provider == CLOUDFLARE:
            rate = self._config.cf_tier_adoption.get(domain.cf_tier or "free", 0.0)
        else:
            rates = self._config.adoption.get(provider)
            if rates is None:
                return None
            rate = rates[0] if domain.rank <= 10_000 else rates[1]
        if provider == APPENGINE:
            # Platform-level enforcement is category-blind.
            adopts = rng.random() < rate
        else:
            affinity = self._category_affinity(domain.category)
            adopts = rng.random() < min(rate * affinity, 0.95)

        challenge_countries: FrozenSet[str] = frozenset()
        challenge_page = None
        challenge_all = False
        if provider == CLOUDFLARE:
            if rng.random() < self._config.cf_challenge_rate:
                challenge_countries = frozenset(self._draw_risk_set(rng))
                challenge_page = blockpages.CLOUDFLARE_CAPTCHA
            if rng.random() < self._config.cf_js_all_rate:
                challenge_all = True
                challenge_page = blockpages.CLOUDFLARE_JS
        elif provider == BAIDU and rng.random() < self._config.baidu_challenge_rate:
            challenge_countries = frozenset({"CN"} | set(self._draw_risk_set(rng)))
            challenge_page = blockpages.BAIDU_CAPTCHA

        if not adopts:
            if challenge_countries or challenge_all:
                return GeoPolicy(
                    enforcer=provider,
                    block_page=PROVIDER_BLOCK_PAGE[provider],
                    challenge_countries=challenge_countries,
                    challenge_page=challenge_page,
                    challenge_all=challenge_all,
                )
            return None

        if provider == APPENGINE:
            # Platform-enforced sanctions blocking, including Crimea.
            return GeoPolicy(
                enforcer=APPENGINE,
                block_page=blockpages.APPENGINE_BLOCK,
                blocked_countries=self._sanctioned,
                blocked_regions=frozenset({CRIMEA}),
                mode="sanctions",
            )

        mode = rng.choices(("sanctions", "risk", "broad"),
                           weights=self._config.mode_weights, k=1)[0]
        if mode == "sanctions":
            blocked = set(self._sanctioned)
            regions = frozenset({CRIMEA}) if rng.random() < 0.5 else frozenset()
        elif mode == "risk":
            blocked = set(self._draw_risk_set(rng))
            regions = frozenset()
        else:
            count = rng.randint(self._config.broad_block_min,
                                self._config.broad_block_max)
            blocked = set(rng.sample(self._all_codes, k=min(count, len(self._all_codes))))
            # Broad blockers usually keep their home market open.
            blocked.discard("US")
            regions = frozenset()
        if provider == BAIDU:
            blocked.add("CN")
        return GeoPolicy(
            enforcer=provider,
            block_page=PROVIDER_BLOCK_PAGE[provider],
            blocked_countries=frozenset(blocked),
            blocked_regions=regions,
            challenge_countries=challenge_countries,
            challenge_page=challenge_page,
            challenge_all=challenge_all,
            mode=mode,
        )

    def _origin_policy(self, domain: Domain, rng: random.Random) -> Optional[GeoPolicy]:
        if rng.random() >= self._config.origin_geoblock_rate:
            return None
        if domain.origin_server == "varnish":
            page = blockpages.VARNISH_403
        elif rng.random() < 0.04:
            # The rare RFC 7725 adopter: the paper saw HTTP 451 only twice.
            page = blockpages.NGINX_451
        else:
            page = blockpages.NGINX_403
        mode = rng.choices(("sanctions", "risk", "broad"),
                           weights=self._config.mode_weights, k=1)[0]
        if mode == "sanctions":
            blocked = set(self._sanctioned)
        elif mode == "risk":
            blocked = set(self._draw_risk_set(rng))
        else:
            k = min(rng.randint(10, 30), len(self._all_codes))
            blocked = set(rng.sample(self._all_codes, k=k))
            blocked.discard("US")
        action = (ACTION_DROP
                  if rng.random() < self._config.origin_timeout_block_rate
                  else ACTION_PAGE)
        return GeoPolicy(
            enforcer="origin",
            block_page=page,
            blocked_countries=frozenset(blocked),
            mode=mode,
            action=action,
        )

    def _draw_risk_set(self, rng: random.Random) -> List[str]:
        """Draw abuse-weighted risk countries."""
        count = rng.randint(self._config.risk_block_min, self._config.risk_block_max)
        weights = [self._registry.get(c).abuse_reputation for c in self._abuse_codes]
        chosen: List[str] = []
        codes = list(self._abuse_codes)
        w = list(weights)
        for _ in range(min(count, len(codes))):
            pick = rng.choices(range(len(codes)), weights=w, k=1)[0]
            chosen.append(codes.pop(pick))
            w.pop(pick)
        return chosen

    def _category_affinity(self, category: str) -> float:
        # Local import keeps this module independent of taxonomy construction.
        from repro.websim.categories import CategoryTaxonomy
        taxonomy = getattr(self, "_taxonomy", None)
        if taxonomy is None:
            taxonomy = CategoryTaxonomy()
            self._taxonomy = taxonomy
        if category in taxonomy:
            return taxonomy.get(category).block_affinity
        return 1.0
