"""Alexa-style ranked domain population.

Generates a deterministic population of domains with:

* pseudo-random but pronounceable names (stable per seed),
* a TLD drawn from the 2018 Alexa-like mix,
* a FortiGuard category,
* a fronting provider (CDN / hosting / plain origin) with rank-dependent
  market shares calibrated to the paper's §3.1/§5.1.1 population counts,
* origin-server software (nginx/apache/varnish) for the non-CDN error pages,
* a bot-protection flag (drives the Akamai/Incapsula/Distil false-positive
  phenomenon of §3.1), and
* brand families: the Airbnb-like multi-ccTLD brand whose every national
  site serves the same custom geoblock page (§4.2.2).
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.util.rng import derive_rng
from repro.websim.categories import CategoryTaxonomy
from repro.websim.tlds import pick_tld

#: Provider identifiers used throughout the simulation.
CLOUDFLARE = "cloudflare"
AKAMAI = "akamai"
CLOUDFRONT = "cloudfront"
APPENGINE = "appengine"
INCAPSULA = "incapsula"
BAIDU = "baidu"
SOASTA = "soasta"
DISTIL = "distil"
ORIGIN = "origin"

CDN_PROVIDERS = (CLOUDFLARE, AKAMAI, CLOUDFRONT, APPENGINE, INCAPSULA, BAIDU, SOASTA)

#: Provider market share by rank bucket: (top-10K share, tail share).
_PROVIDER_SHARES: Sequence[Tuple[str, float, float]] = (
    (CLOUDFLARE, 0.139, 0.110),
    (AKAMAI, 0.060, 0.0105),
    (CLOUDFRONT, 0.036, 0.0107),
    (APPENGINE, 0.0108, 0.0165),
    (INCAPSULA, 0.010, 0.0056),
    (BAIDU, 0.004, 0.0030),
    (SOASTA, 0.0036, 0.0008),
    (DISTIL, 0.006, 0.0020),
)

#: Cloudflare account-tier mix (fraction of customer zones) by rank bucket.
#: Enterprise zones are over-represented among top-ranked sites.  Tier drives
#: geoblock-capability adoption (Table 9 baselines) and the Table 9 dataset.
_CF_TIER_SHARES: Sequence[Tuple[str, float, float]] = (
    ("enterprise", 0.050, 0.008),
    ("business", 0.150, 0.060),
    ("pro", 0.200, 0.130),
    ("free", 0.600, 0.802),
)

#: Fraction of each provider's customers running aggressive bot heuristics.
#: Calibrated to §3.1: ~30% of Akamai 403s seen by ZGrab were bot-detection
#: false positives, concentrated in a small, location-independent domain set.
_BOT_PROTECTION_RATES = {
    AKAMAI: 0.10,
    INCAPSULA: 0.12,
    CLOUDFLARE: 0.02,
    BAIDU: 0.20,
    DISTIL: 1.0,
}

_ORIGIN_SERVERS = (("nginx", 0.55), ("apache", 0.33), ("varnish", 0.12))

_SYLLABLES = (
    "ba be bi bo bu ca ce ci co cu da de di do du fa fe fi fo fu "
    "ga ge gi go gu ha he hi ho hu ja jo ka ke ki ko ku la le li lo lu "
    "ma me mi mo mu na ne ni no nu pa pe pi po pu ra re ri ro ru "
    "sa se si so su ta te ti to tu va ve vi vo vu wa we wi wo za zo zu"
).split()

_NAME_SUFFIXES = ("", "", "", "", "hub", "ly", "zone", "base", "mart", "press", "labs")


@dataclass
class Domain:
    """One website in the synthetic population."""

    name: str                      # registrable domain, e.g. "tomodo.com"
    rank: int                      # Alexa-style rank, 1 = most popular
    tld: str
    category: str
    provider: str                  # fronting provider (CDN id or "origin")
    secondary_provider: Optional[str] = None   # e.g. zales.com: Incapsula+Akamai
    origin_server: str = "nginx"   # software behind the CDN / at the origin
    bot_protection: bool = False   # aggressive bot heuristics at the edge
    www_redirect: bool = False     # apex 301-redirects to www.
    https_redirect: bool = True    # http 301-redirects to https
    brand: Optional[str] = None    # brand family id (Airbnb-like)
    censored_in: Tuple[str, ...] = ()  # countries whose censors block it
    cf_tier: Optional[str] = None  # Cloudflare account tier, if a CF customer
    dead: bool = False             # never responds (times out everywhere)
    redirect_loop: bool = False    # redirects endlessly (past any limit)

    @property
    def url(self) -> str:
        """The canonical probe URL (http scheme, as the paper's crawls)."""
        return f"http://{self.name}/"

    @property
    def is_cdn_fronted(self) -> bool:
        """True when a CDN/hosting provider fronts this domain."""
        return self.provider != ORIGIN

    def providers(self) -> Tuple[str, ...]:
        """All fronting providers (primary first)."""
        if self.secondary_provider:
            return (self.provider, self.secondary_provider)
        return (self.provider,)


def _make_name(rng: random.Random, used: set) -> str:
    """Generate a fresh pronounceable second-level label."""
    for _ in range(1000):
        n_syll = rng.choice((2, 2, 3, 3, 4))
        label = "".join(rng.choice(_SYLLABLES) for _ in range(n_syll))
        label += rng.choice(_NAME_SUFFIXES)
        if label not in used and len(label) >= 4:
            used.add(label)
            return label
    raise RuntimeError("name space exhausted")


class _WeightedPicker:
    """Fast repeated weighted choice over a fixed small distribution."""

    def __init__(self, items: Sequence[str], weights: Sequence[float]) -> None:
        self._items = list(items)
        self._cum = list(itertools.accumulate(weights))
        self._total = self._cum[-1]

    def pick(self, rng: random.Random) -> str:
        return self._items[bisect.bisect_left(self._cum, rng.random() * self._total)]


class DomainPopulation:
    """The generated domain universe, indexed by name and by rank."""

    def __init__(self, domains: List[Domain]) -> None:
        self._domains = domains
        self._by_name: Dict[str, Domain] = {d.name: d for d in domains}
        if len(self._by_name) != len(domains):
            raise ValueError("duplicate domain names in population")

    def __len__(self) -> int:
        return len(self._domains)

    def __iter__(self) -> Iterator[Domain]:
        return iter(self._domains)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def get(self, name: str) -> Domain:
        """Domain by registrable name; raises KeyError if absent."""
        return self._by_name[name]

    def top(self, n: int) -> List[Domain]:
        """The ``n`` highest-ranked domains."""
        return self._domains[:n]

    def by_provider(self, provider: str) -> List[Domain]:
        """All domains fronted (primarily or secondarily) by ``provider``."""
        return [d for d in self._domains if provider in d.providers()]

    def by_category(self, category: str) -> List[Domain]:
        """All domains in the given category."""
        return [d for d in self._domains if d.category == category]

    @classmethod
    def generate(
        cls,
        size: int,
        seed: int = 0,
        taxonomy: Optional[CategoryTaxonomy] = None,
        brand_family_size: int = 24,
    ) -> "DomainPopulation":
        """Generate a deterministic ranked population of ``size`` domains.

        ``brand_family_size`` controls how many national ccTLD variants the
        Airbnb-like brand gets (0 disables the family).
        """
        if size < 1:
            raise ValueError("size must be >= 1")
        taxonomy = taxonomy or CategoryTaxonomy()
        rng = derive_rng(seed, "domain-population")
        used_labels: set = set()
        domains: List[Domain] = []

        cat_names = taxonomy.names()
        cat_picker = _WeightedPicker(cat_names, taxonomy.weights(cat_names))
        origin_picker = _WeightedPicker(*zip(*_ORIGIN_SERVERS))

        brand_slots: set = set()
        if brand_family_size > 0 and size >= 200:
            # Scatter the brand's national sites through the ranks.
            brand_slots = {
                rng.randrange(50, size) for _ in range(brand_family_size * 2)
            }
            brand_slots = set(sorted(brand_slots)[:brand_family_size])
        brand_cctlds = ["fr", "it", "de", "jp", "in", "au", "br", "sg", "es", "nl",
                        "ca", "uk", "ru", "pl", "se", "ch", "tr", "kr", "mx", "ar",
                        "gr", "cz", "co", "us", "ie", "pt", "dk", "no", "fi", "at"]
        brand_label = _make_name(derive_rng(seed, "brand-name"), used_labels)
        brand_index = 0

        for rank in range(1, size + 1):
            if rank in brand_slots and brand_index < len(brand_cctlds):
                tld = brand_cctlds[brand_index]
                brand_index += 1
                domains.append(Domain(
                    name=f"{brand_label}.{tld}",
                    rank=rank,
                    tld=tld,
                    category="Travel",
                    provider=ORIGIN,
                    origin_server="nginx",
                    brand=brand_label,
                ))
                continue

            label = _make_name(rng, used_labels)
            tld = pick_tld(rng)
            category = cat_picker.pick(rng)
            provider = cls._pick_provider(rng, rank)
            secondary = None
            if provider in (INCAPSULA, AKAMAI) and rng.random() < 0.09:
                secondary = AKAMAI if provider == INCAPSULA else INCAPSULA
            bot_protection = rng.random() < _BOT_PROTECTION_RATES.get(provider, 0.0)
            cf_tier = None
            if provider == CLOUDFLARE:
                head = rank <= 10_000
                tiers = [t for t, _, _ in _CF_TIER_SHARES]
                weights = [h if head else t for _, h, t in _CF_TIER_SHARES]
                cf_tier = rng.choices(tiers, weights=weights, k=1)[0]
            domains.append(Domain(
                name=f"{label}.{tld}",
                rank=rank,
                tld=tld,
                category=category,
                provider=ORIGIN if provider == DISTIL else provider,
                secondary_provider=secondary,
                origin_server="distil" if provider == DISTIL else origin_picker.pick(rng),
                bot_protection=bot_protection,
                www_redirect=rng.random() < 0.25,
                https_redirect=rng.random() < 0.6,
                cf_tier=cf_tier,
                dead=rng.random() < 0.033,
                redirect_loop=rng.random() < 0.004,
            ))
        return cls(domains)

    @staticmethod
    def _pick_provider(rng: random.Random, rank: int) -> str:
        """Draw a provider with rank-dependent market shares."""
        roll = rng.random()
        cum = 0.0
        for provider, head_share, tail_share in _PROVIDER_SHARES:
            share = head_share if rank <= 10_000 else tail_share
            cum += share
            if roll < cum:
                return provider
        return ORIGIN
