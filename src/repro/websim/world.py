"""The assembled synthetic Internet.

:class:`World` wires together the domain population, ground-truth policies,
IP address plan, geolocation database, DNS, and per-provider edge behaviour,
and exposes a single entry point::

    response = world.fetch(request, client_ip)

``fetch`` reproduces the full decision chain a real request traverses:

1. national censorship at the client's network (a *confounder* the study
   must distinguish from geoblocking),
2. CDN-edge geoblocking (country rules applied to the geolocated client IP,
   including region-granular rules à la AppEngine/Crimea),
3. CDN challenge pages (captcha / JS challenge),
4. CDN bot detection (highly sensitive to the client's header profile —
   the §3.1 ZGrab false-positive effect),
5. origin-side GeoIP blocking with stock nginx/Varnish error pages, and
6. normal origin content with per-sample length jitter, behind optional
   http→https and apex→www redirects.

All randomness is derived from the world seed; a given fetch sequence is
bit-for-bit reproducible.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.httpsim.messages import BodyPolicy, Headers, Request, Response
from repro.httpsim.useragent import looks_like_browser
from repro.netsim.dns import DNSServer
from repro.netsim.errors import ConnectionReset, ConnectionTimeout, FetchError
from repro.netsim.geoip import GeoIPDatabase
from repro.netsim.ip import AddressAllocator
from repro.util.cache import LRUCache, MemoDict
from repro.util.counters import ShardedCounter
from repro.util.rng import derive_rng
from repro.websim import blockpages
from repro.websim.categories import CategoryTaxonomy
from repro.websim.content import (
    degrade_page,
    generate_page,
    jitter_length,
    jitter_pad,
    jitter_token,
    page_length,
    render_jitter,
    sample_jitter,
)
from repro.websim.countries import CRIMEA, CountryRegistry
from repro.websim.domains import (
    AKAMAI,
    APPENGINE,
    BAIDU,
    CLOUDFLARE,
    CLOUDFRONT,
    Domain,
    DomainPopulation,
    INCAPSULA,
    ORIGIN,
    SOASTA,
)
from repro.websim.policies import GeoPolicy, PolicyConfig, PolicyModel

#: Per-profile probability that a bot-protected domain flags the request.
_BOT_TRIGGER = {
    "browser": 0.012,   # full browser header set (Lumscan, real browsers)
    "zgrab": 0.85,      # browser UA but no Accept-* fields
    "curl": 0.95,       # no browser UA at all
}
#: Probability that curl trips heuristics even on unprotected CDN domains.
_CURL_BASELINE_TRIGGER = 0.03

#: Bot-detection page served per provider when a request is flagged.
_BOT_PAGE = {
    AKAMAI: blockpages.AKAMAI_BLOCK,
    INCAPSULA: blockpages.INCAPSULA_BLOCK,
    CLOUDFLARE: blockpages.CLOUDFLARE_CAPTCHA,
    BAIDU: blockpages.BAIDU_CAPTCHA,
    SOASTA: blockpages.SOASTA_BLOCK,
}

_IRAN_CENSOR_PAGE = (
    "<html><head><meta http-equiv=\"Content-Type\" content=\"text/html; "
    "charset=windows-1256\"><title>M1-4</title></head><body><iframe "
    "src=\"http://10.10.34.34?type=Invalid Site&policy=MainPolicy\" "
    "style=\"width: 100%; height: 100%\" scrolling=\"no\" marginwidth=\"0\" "
    "marginheight=\"0\" frameborder=\"0\" vspace=\"0\" hspace=\"0\"></iframe>"
    "</body></html>"
)


@dataclass(frozen=True)
class WorldConfig:
    """Construction parameters for a :class:`World`.

    ``size`` is the total ranked population.  Ranks 1..10,000 play the role
    of the Alexa Top 10K; the full population stands in for the Top 1M
    (scaled down — the tail CDN-customer *rates* match the paper, so every
    relative quantity is preserved; see DESIGN.md).
    """

    size: int = 60_000
    seed: int = 7
    geoip_error_rate: float = 0.004
    brand_family_size: int = 24
    country_codes: Optional[Tuple[str, ...]] = None
    policy: Optional[PolicyConfig] = None

    @classmethod
    def paper(cls, seed: int = 7) -> "WorldConfig":
        """Full-scale configuration used for EXPERIMENTS.md."""
        return cls(size=60_000, seed=seed)

    @classmethod
    def small(cls, seed: int = 7) -> "WorldConfig":
        """Mid-scale configuration for integration tests and benchmarks."""
        return cls(size=6_000, seed=seed)

    @classmethod
    def nano(cls, seed: int = 7) -> "WorldConfig":
        """Smallest useful configuration: 350 domains, 12 countries."""
        codes = ("US", "CN", "RU", "IR", "SY", "SD", "CU", "KP",
                 "DE", "BR", "NG", "IL")
        return cls(size=350, seed=seed, country_codes=codes,
                   brand_family_size=4)

    @classmethod
    def tiny(cls, seed: int = 7) -> "WorldConfig":
        """Fast configuration for unit tests: 1,200 domains, 28 countries."""
        codes = (
            "US", "CN", "RU", "IR", "SY", "SD", "CU", "KP", "DE", "GB",
            "FR", "BR", "NG", "IN", "UA", "TR", "JP", "AU", "CA", "IT",
            "EG", "KE", "NZ", "IL", "BY", "LV", "KH", "CH",
        )
        return cls(size=1_200, seed=seed, country_codes=codes,
                   brand_family_size=8)


class World:
    """A fully-assembled synthetic Internet."""

    def __init__(self, config: Optional[WorldConfig] = None) -> None:
        self.config = config or WorldConfig()
        base_registry = CountryRegistry()
        if self.config.country_codes is not None:
            base_registry = base_registry.subset(list(self.config.country_codes))
        self.registry = base_registry
        self.taxonomy = CategoryTaxonomy()
        self.population = DomainPopulation.generate(
            size=self.config.size,
            seed=self.config.seed,
            taxonomy=self.taxonomy,
            brand_family_size=self.config.brand_family_size,
        )
        self.policy_model = PolicyModel(
            self.registry, config=self.config.policy, seed=self.config.seed)
        self.policies: Dict[str, GeoPolicy] = self.policy_model.assign(self.population)
        self.degradations = self.policy_model.assign_degradations(self.population)
        censorship = self.policy_model.assign_censorship(self.population)
        for name, censors in censorship.items():
            self.population.get(name).censored_in = censors
        self.censorship = censorship

        self.allocator = AddressAllocator(seed=self.config.seed)
        self.geoip = GeoIPDatabase(
            seed=self.config.seed, error_rate=self.config.geoip_error_rate)
        self._dns: Optional[DNSServer] = DNSServer()
        self._dns_loader = None
        self._appengine_cidrs: List[str] = []
        self._build_address_plan()
        self._build_dns()
        self._init_runtime()

    @classmethod
    def from_parts(cls, config: WorldConfig, *, population: DomainPopulation,
                   policies: Dict[str, GeoPolicy], degradations: Dict,
                   censorship: Dict[str, Tuple[str, ...]],
                   allocator: AddressAllocator, geoip: GeoIPDatabase,
                   dns: DNSServer, appengine_cidrs: List[str],
                   frozen_lengths: Optional[Tuple] = None) -> "World":
        """Assemble a world from pre-built immutable parts (pack loading).

        The parts must be exactly what ``World(config)``'s build phase
        would have produced — :mod:`repro.websim.worldpack` freezes and
        restores them; this constructor only wires them up and runs the
        normal mutable-runtime initialization, so every RNG stream,
        cache, and counter starts in the same state as a fresh build.
        ``dns`` may be a :class:`DNSServer` or a zero-argument loader
        returning one — the loader runs on first :attr:`dns` access, so
        workers (which resolve through the population, never through
        DNS) skip rebuilding the zone table entirely.
        ``frozen_lengths`` optionally carries the pack's cached
        base-page lengths as a sorted ``(rank_index, length)`` array
        pair, consulted read-only by :meth:`_page_length`.
        """
        world = cls.__new__(cls)
        world.config = config
        base_registry = CountryRegistry()
        if config.country_codes is not None:
            base_registry = base_registry.subset(list(config.country_codes))
        world.registry = base_registry
        world.taxonomy = CategoryTaxonomy()
        world.population = population
        world.policy_model = PolicyModel(
            world.registry, config=config.policy, seed=config.seed)
        world.policies = policies
        world.degradations = degradations
        world.censorship = censorship
        world.allocator = allocator
        world.geoip = geoip
        if callable(dns):
            world._dns = None
            world._dns_loader = dns
        else:
            world._dns = dns
            world._dns_loader = None
        world._appengine_cidrs = list(appengine_cidrs)
        world._init_runtime(frozen_lengths=frozen_lengths)
        return world

    @property
    def dns(self) -> DNSServer:
        """The authoritative DNS (materialized lazily for pack worlds)."""
        if self._dns is None:
            self._dns = self._dns_loader()
            self._dns_loader = None
        return self._dns

    def _init_runtime(self, frozen_lengths: Optional[Tuple] = None) -> None:
        """Initialize the mutable, never-shared half of the world.

        Everything here is worker-private state: the shared RNG streams,
        page/length caches, clearance grants, and the fetch counter.  A
        pack-loaded world runs the identical initialization, which is
        what keeps its probe outcomes bit-identical to a fresh build.
        """
        #: How this world came to be: "build" (generated from config) or
        #: "pack" (thawed from a frozen worldpack).
        self.source = "build"
        self._noise_rng = derive_rng(self.config.seed, "fetch-noise")
        self._render_rng = derive_rng(self.config.seed, "render")
        # Sized to the population so a full scan never recomputes a page;
        # the floor keeps small test worlds from thrashing either.
        self._page_cache: LRUCache[str, str] = LRUCache(
            capacity=max(self.config.size, 20_000))
        # Lengths are 28-byte ints — an unbounded memo over the population
        # is cheaper than any eviction policy could ever be.  Clearance
        # grants are add-only and commutative, so both tables satisfy the
        # MemoDict idempotent-write contract on worker paths.
        self._page_length_cache: MemoDict[str, int] = MemoDict()
        self._clearances: MemoDict[str, set] = MemoDict()
        self._fetch_count = ShardedCounter()
        # Read-only views into a mapped worldpack: (sorted rank-1 index
        # array, length array).  None for built worlds.
        self._frozen_lengths = frozen_lengths

    # ------------------------------------------------------------------ #
    # Construction

    def _build_address_plan(self) -> None:
        for country in self.registry:
            if country.luminati:
                for block in self.allocator.allocate(f"res:{country.code}", 2):
                    self.geoip.register(block, country.code)
                for region in country.regions:
                    owner = f"res:{country.code}:{region}"
                    for block in self.allocator.allocate(owner, 1):
                        self.geoip.register(block, country.code, region=region)
        for country in self.registry.vps_countries():
            for block in self.allocator.allocate(f"vps:{country.code}", 1):
                self.geoip.register(block, country.code)
        # Provider serving space.  AppEngine gets 65 blocks to mirror the
        # paper's netblock-discovery result.
        for provider in (CLOUDFLARE, AKAMAI, CLOUDFRONT, INCAPSULA, BAIDU, SOASTA):
            self.allocator.allocate(f"edge:{provider}", 4)
        appengine_blocks = self.allocator.allocate(f"edge:{APPENGINE}", 65)
        self._appengine_cidrs = [b.cidr for b in appengine_blocks]
        self.allocator.allocate("hosting:origin", 8)

    def _build_dns(self) -> None:
        rng = derive_rng(self.config.seed, "dns")
        # AppEngine netblock discovery chain (_cloud-netblocks walk).
        root = "_cloud-netblocks.googleusercontent.com"
        group_count = 5
        includes = " ".join(
            f"include:_cloud-netblocks{i + 1}.googleusercontent.com"
            for i in range(group_count)
        )
        self.dns.add_record(root, "TXT", f"v=spf1 {includes} ?all")
        for i in range(group_count):
            chunk = self._appengine_cidrs[i::group_count]
            tokens = " ".join(f"ip4:{cidr}" for cidr in chunk)
            self.dns.add_record(
                f"_cloud-netblocks{i + 1}.googleusercontent.com",
                "TXT", f"v=spf1 {tokens} ?all")

        for domain in self.population:
            provider = domain.provider
            if provider == CLOUDFLARE and rng.random() < 0.95:
                label = rng.choice(("ada", "bob", "cruz", "dana", "elma", "finn"))
                self.dns.add_record(domain.name, "NS", f"{label}.ns.cloudflare.com")
                self.dns.add_record(domain.name, "NS", f"{label}2.ns.cloudflare.com")
            elif provider == AKAMAI and rng.random() < 0.40:
                n = rng.randint(1, 13)
                self.dns.add_record(domain.name, "NS", f"a{n}-64.akam.net")
                self.dns.add_record(domain.name, "NS", f"a{n}-65.akam.net")
            else:
                self.dns.add_record(domain.name, "NS", f"ns1.{domain.name}")
            owner = f"edge:{provider}" if provider != ORIGIN else "hosting:origin"
            self.dns.add_record(domain.name, "A", self.allocator.random_address(owner, rng))

    # ------------------------------------------------------------------ #
    # Client address helpers

    def residential_address(self, country_code: str, rng=None,
                            region: Optional[str] = None) -> str:
        """A random residential address in a country (or named region)."""
        owner = f"res:{country_code}" if region is None else f"res:{country_code}:{region}"
        return self.allocator.random_address(owner, rng)

    def vps_address(self, country_code: str) -> str:
        """The (stable) datacenter address of the VPS in a country."""
        blocks = self.allocator.blocks_of(f"vps:{country_code}")
        if not blocks:
            raise KeyError(f"no VPS provisioned in {country_code}")
        return blocks[0].address_at(10)

    # ------------------------------------------------------------------ #
    # Fetch

    def fetch(self, request: Request, client_ip: str, epoch: int = 0,
              rng: Optional[random.Random] = None,
              body_policy: Optional[BodyPolicy] = None) -> Response:
        """Serve one HTTP request from the synthetic web.

        Raises a :class:`~repro.netsim.errors.FetchError` subclass when the
        request cannot produce an HTTP response (censorship resets/timeouts).

        When ``rng`` is given, every random draw this request makes (bot
        heuristics, body jitter, rendered page noise) comes from it instead
        of the world's shared sequential streams.  A caller that derives
        ``rng`` from the request's identity therefore gets an outcome that
        does not depend on what other traffic the world has served — the
        property the parallel scan engine's determinism contract rests on.

        ``body_policy`` lets a caller that only keeps *lengths* of large
        200-bodies (the scan pipeline) ask for those bodies to be elided:
        the response then carries ``body_length`` and an empty ``body``.
        Elision requires a private ``rng`` — the shared noise stream must
        see every draw, while a task-private stream is discarded with the
        probe, so skipping its trailing token draws is unobservable.
        Block pages, errors, and short pages always materialize.
        """
        self._fetch_count.increment()
        domain = self._resolve(request.url.host)
        if domain is None:
            raise FetchError(f"could not resolve {request.url.host}")
        if domain.dead:
            raise ConnectionTimeout(f"timeout fetching {request.url}")
        if domain.redirect_loop:
            response = Response(status=302, url=request.url)
            response.headers.add(
                "Location", f"{request.url.scheme}://{request.url.host}/loop")
            return response

        true_country = self.geoip.true_country(client_ip)
        if true_country and true_country in domain.censored_in:
            return self._censor(true_country, request)

        geo = self.geoip.lookup(client_ip)
        seen_country = geo.country if geo else "ZZ"
        seen_region = geo.region if geo else None
        policy = self.policies.get(domain.name)

        edge_headers = self._edge_headers(domain, request, rng)
        if policy is not None and policy.blocks(seen_country, seen_region, epoch):
            if policy.action == "drop":
                # Timeout-style geoblocking (§7.3): the origin silently
                # drops connections from blocked countries.
                raise ConnectionTimeout(f"timeout fetching {request.url}")
            return self._render_page(policy.block_page, domain, seen_country,
                                     edge_headers, rng)
        if request.url.path.startswith("/cdn-cgi/l/chk_"):
            # Challenge-solution endpoint (captcha answer / JS result).
            return self._solve_challenge(domain, request, edge_headers, rng)
        if (policy is not None and policy.challenges(seen_country)
                and not self._has_clearance(domain, request)):
            page = policy.challenge_page or blockpages.CLOUDFLARE_CAPTCHA
            return self._render_page(page, domain, seen_country, edge_headers,
                                     rng)

        if self._bot_flagged(domain, request, rng):
            page = self._bot_page(domain)
            return self._render_page(page, domain, seen_country, edge_headers,
                                     rng)

        redirect = self._redirect_for(domain, request)
        if redirect is not None:
            response = Response(status=301, headers=edge_headers, url=request.url)
            response.headers.add("Location", redirect)
            response.body = (
                "<html><head><title>301 Moved Permanently</title></head>"
                "<body><h1>301 Moved Permanently</h1></body></html>"
            )
            return response

        degradation = self.degradations.get(domain.name)
        degraded = degradation is not None and degradation.applies(seen_country)
        headers = edge_headers
        headers.add("Content-Type", "text/html; charset=utf-8")

        elide = (body_policy is not None and body_policy.elides
                 and rng is not None)
        if elide and not degraded:
            # Fast lane: the undegraded base length comes from the cached
            # length-only synthesis — no page string is ever built unless
            # the jittered result lands under the keep threshold.
            base_length = self._page_length(domain)
            pad = jitter_pad(base_length, rng)
            body_length = jitter_length(base_length, pad)
            if body_length > body_policy.length_threshold:
                return Response(status=200, headers=headers, url=request.url,
                                body_length=body_length)
            body = render_jitter(self._page(domain), pad, jitter_token(rng))
            return Response(status=200, headers=headers, body=body,
                            url=request.url)

        base = self._page(domain)
        if degraded:
            base = degrade_page(
                base,
                remove_account=(seen_country
                                in degradation.remove_account_countries),
                price_multiplier=degradation.price_multipliers.get(
                    seen_country, 1.0),
            )
        if elide:
            # Degraded combinations are sparse; materializing the base is
            # unavoidable (price rescaling shifts digit counts), but the
            # jitter concat can still be skipped for large pages.
            pad = jitter_pad(len(base), rng)
            body_length = jitter_length(len(base), pad)
            if body_length > body_policy.length_threshold:
                return Response(status=200, headers=headers, url=request.url,
                                body_length=body_length)
            body = render_jitter(base, pad, jitter_token(rng))
            return Response(status=200, headers=headers, body=body,
                            url=request.url)
        body = sample_jitter(base, rng if rng is not None else self._noise_rng)
        return Response(status=200, headers=headers, body=body, url=request.url)

    @property
    def fetch_count(self) -> int:
        """Total requests served, including absorbed process-worker fetches."""
        return self._fetch_count.value

    def add_external_fetches(self, count: int) -> None:
        """Fold in fetches served by a worker process's world replica."""
        self._fetch_count.add(count)

    # ------------------------------------------------------------------ #
    # Internals

    def _page(self, domain: Domain) -> str:
        """The domain's canonical (undegraded) front page, cached.

        The page is a pure function of (seed, domain), so a concurrent
        double-compute under threads is benign: both threads produce and
        store the identical string.
        """
        base = self._page_cache.get(domain.name)
        if base is None:
            base = generate_page(domain.name, domain.category,
                                 seed=self.config.seed)
            self._page_cache.put(domain.name, base)
        return base

    def _page_length(self, domain: Domain) -> int:
        """``len(self._page(domain))`` without materializing the page."""
        length = self._page_length_cache.get(domain.name)
        if length is None:
            length = self._frozen_length(domain)
        if length is None:
            cached = self._page_cache.get(domain.name)
            if cached is not None:
                length = len(cached)
            else:
                length = page_length(domain.name, domain.category,
                                     seed=self.config.seed)
            self._page_length_cache[domain.name] = length
        return length

    def _frozen_length(self, domain: Domain) -> Optional[int]:
        """The domain's base-page length from a mapped worldpack, if any.

        The pack stores lengths as a sorted (rank-1 index, value) array
        pair; a hit is copied into the memo so repeat lookups skip the
        bisect.  Lengths are pure functions of (seed, domain), so a pack
        value and a computed value can never disagree.
        """
        if self._frozen_lengths is None:
            return None
        index, values = self._frozen_lengths
        target = domain.rank - 1
        pos = bisect_left(index, target)
        if pos >= len(index) or index[pos] != target:
            return None
        length = int(values[pos])
        self._page_length_cache[domain.name] = length
        return length

    def _resolve(self, host: str) -> Optional[Domain]:
        name = host.lower()
        if name.startswith("www."):
            name = name[4:]
        try:
            return self.population.get(name)
        except KeyError:
            return None

    def _censor(self, country: str, request: Request) -> Response:
        if country == "IR":
            headers = Headers([("Content-Type", "text/html"),
                               ("Server", "squid/3.3.8")])
            return Response(status=403, headers=headers, body=_IRAN_CENSOR_PAGE,
                            url=request.url)
        if country == "CN":
            raise ConnectionReset(f"connection reset fetching {request.url}")
        raise ConnectionTimeout(f"timeout fetching {request.url}")

    def _edge_headers(self, domain: Domain, request: Request,
                      rng: Optional[random.Random] = None) -> Headers:
        render = rng if rng is not None else self._render_rng
        headers = Headers([("Date", "Tue, 10 Jul 2018 00:00:00 GMT")])
        for provider in domain.providers():
            if provider == CLOUDFLARE:
                ray = f"{render.getrandbits(48):012x}"
                headers.add("CF-RAY", f"{ray}-SIM")
                headers.add("Server", "cloudflare")
            elif provider == CLOUDFRONT:
                headers.add("X-Amz-Cf-Id", f"{render.getrandbits(64):016x}")
                headers.add("Via", "1.1 sim.cloudfront.net (CloudFront)")
            elif provider == INCAPSULA:
                headers.add("X-Iinfo", f"1-{render.getrandbits(30)} NNNN CT")
            elif provider == AKAMAI:
                pragma = request.headers.get("Pragma", "")
                if "akamai-x-cache-on" in pragma:
                    headers.add("X-Cache",
                                "TCP_HIT from a23-1.deploy.akamaitechnologies.com")
                    headers.add("X-Cache-Key", f"/L/1/{domain.name}/")
                    headers.add("X-Check-Cacheable", "YES")
            elif provider == APPENGINE:
                headers.add("Server", "Google Frontend")
        return headers

    def _bot_flagged(self, domain: Domain, request: Request,
                     rng: Optional[random.Random] = None) -> bool:
        noise = rng if rng is not None else self._noise_rng
        profile = self._client_profile(request.headers)
        if domain.bot_protection:
            return noise.random() < _BOT_TRIGGER[profile]
        if profile == "curl" and domain.is_cdn_fronted:
            return noise.random() < _CURL_BASELINE_TRIGGER
        return False

    @staticmethod
    def _client_profile(headers: Headers) -> str:
        if looks_like_browser(headers):
            return "browser"
        ua = headers.get("User-Agent", "")
        if ua and "curl" not in ua.lower() and "zgrab" not in ua.lower():
            return "zgrab"
        return "curl"

    def _bot_page(self, domain: Domain) -> str:
        if domain.origin_server == "distil":
            return blockpages.DISTIL_CAPTCHA
        for provider in domain.providers():
            page = _BOT_PAGE.get(provider)
            if page is not None:
                return page
        return blockpages.NGINX_403

    def _solve_challenge(self, domain: Domain, request: Request,
                         edge_headers: Headers,
                         rng: Optional[random.Random] = None) -> Response:
        """Handle ``/cdn-cgi/l/chk_jschl`` / ``chk_captcha`` submissions.

        A well-formed submission (the hidden fields a JS-running browser or
        a human solver would echo back) earns a clearance cookie; the next
        request with that cookie bypasses the challenge.  Header-only
        crawlers never reach this endpoint, which is the entire point of
        challenge pages.
        """
        params = dict(
            pair.partition("=")[::2]
            for pair in request.url.query.split("&") if pair)
        well_formed = (
            ("jschl_vc" in params and "jschl_answer" in params)
            or "id" in params
        )
        if not well_formed:
            return self._render_page(blockpages.CLOUDFLARE_CAPTCHA, domain,
                                     "ZZ", edge_headers, rng)
        render = rng if rng is not None else self._render_rng
        token = f"{render.getrandbits(80):020x}"
        self._clearances.setdefault(domain.name, set()).add(token)
        response = Response(status=302, headers=edge_headers, url=request.url)
        response.headers.add("Location", f"{request.url.scheme}://{request.url.host}/")
        response.headers.add(
            "Set-Cookie",
            f"cf_clearance={token}; path=/; expires=...; HttpOnly")
        response.body = ""
        return response

    def _has_clearance(self, domain: Domain, request: Request) -> bool:
        cookie = request.headers.get("Cookie", "")
        tokens = self._clearances.get(domain.name)
        if not tokens or not cookie:
            return False
        for pair in cookie.split(";"):
            name, _, value = pair.strip().partition("=")
            if name == "cf_clearance" and value in tokens:
                return True
        return False

    def _redirect_for(self, domain: Domain, request: Request) -> Optional[str]:
        url = request.url
        if domain.https_redirect and url.scheme == "http":
            return f"https://{url.host}{url.path}"
        if domain.www_redirect and not url.host.startswith("www."):
            return f"{url.scheme}://www.{url.host}{url.path}"
        return None

    def _render_page(self, page_type: str, domain: Domain, country: str,
                     edge_headers: Headers,
                     rng: Optional[random.Random] = None) -> Response:
        render = rng if rng is not None else self._render_rng
        rendered = blockpages.render(page_type, render, domain.name, country)
        headers = edge_headers
        for name, value in rendered.extra_headers:
            headers.add(name, value)
        headers.add("Content-Type", "text/html; charset=utf-8")
        return Response(status=rendered.status, headers=headers, body=rendered.body)

    # ------------------------------------------------------------------ #
    # Ground-truth accessors (for evaluation only — the measurement
    # pipeline never reads these).

    def is_geoblocked(self, domain_name: str, country_code: str, epoch: int = 0) -> bool:
        """Ground truth: does the domain block the country at ``epoch``?"""
        policy = self.policies.get(domain_name)
        return policy is not None and policy.blocks(country_code, None, epoch)

    def geoblocking_domains(self, epoch: int = 0) -> List[str]:
        """Names of all domains with an active geoblocking policy."""
        return [name for name, policy in self.policies.items()
                if policy.is_geoblocking and policy.active(epoch)]
