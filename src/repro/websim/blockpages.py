"""Block-page, captcha, and challenge templates for each provider.

Section 4.1.3 of the paper clusters candidate pages and hand-labels 14 page
types: Akamai, Cloudflare (geoblock), AppEngine, Cloudflare Captcha,
Cloudflare JavaScript challenge, Amazon CloudFront, Baidu Captcha, Baidu,
Incapsula, SOASTA, Airbnb, Distil Captcha, nginx 403 and Varnish 403.

Five of those *explicitly* signal geoblocking (Cloudflare, CloudFront,
Baidu, AppEngine, Airbnb); the rest are either ambiguous (Akamai, Incapsula,
SOASTA, nginx, Varnish) or challenges (captchas, JS).

Each template renders HTML in the style of the real page, with per-instance
identifiers (Ray IDs, incident IDs, reference numbers) so that exact-match
classification would fail — the fingerprint layer must use robust markers,
exactly as the paper's signature extraction does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

# Canonical page-type identifiers (match Table 2 rows).
AKAMAI_BLOCK = "akamai"
CLOUDFLARE_BLOCK = "cloudflare"
APPENGINE_BLOCK = "appengine"
CLOUDFLARE_CAPTCHA = "cloudflare_captcha"
CLOUDFLARE_JS = "cloudflare_js"
CLOUDFRONT_BLOCK = "cloudfront"
BAIDU_CAPTCHA = "baidu_captcha"
BAIDU_BLOCK = "baidu"
INCAPSULA_BLOCK = "incapsula"
SOASTA_BLOCK = "soasta"
AIRBNB_BLOCK = "airbnb"
DISTIL_CAPTCHA = "distil_captcha"
NGINX_403 = "nginx"
VARNISH_403 = "varnish"

#: RFC 7725 legal-reasons page: served by a handful of origins, observed
#: only twice in the paper, and NOT among the 14 fingerprinted types —
#: the pipeline is expected to miss it, as the real one largely did.
NGINX_451 = "nginx_451"

ALL_PAGE_TYPES = (
    AKAMAI_BLOCK, CLOUDFLARE_BLOCK, APPENGINE_BLOCK, CLOUDFLARE_CAPTCHA,
    CLOUDFLARE_JS, CLOUDFRONT_BLOCK, BAIDU_CAPTCHA, BAIDU_BLOCK,
    INCAPSULA_BLOCK, SOASTA_BLOCK, AIRBNB_BLOCK, DISTIL_CAPTCHA,
    NGINX_403, VARNISH_403,
)

#: Page types that explicitly state the block is geographic (§4.1.3).
EXPLICIT_GEOBLOCK_TYPES = (
    CLOUDFLARE_BLOCK, CLOUDFRONT_BLOCK, BAIDU_BLOCK, APPENGINE_BLOCK, AIRBNB_BLOCK,
)

#: Challenge pages: not blocks, but friction that a human could pass.
CHALLENGE_TYPES = (CLOUDFLARE_CAPTCHA, CLOUDFLARE_JS, BAIDU_CAPTCHA, DISTIL_CAPTCHA)

#: Ambiguous block pages also served for bot detection / other errors.
AMBIGUOUS_TYPES = (AKAMAI_BLOCK, INCAPSULA_BLOCK, SOASTA_BLOCK, NGINX_403, VARNISH_403)


@dataclass(frozen=True)
class RenderedPage:
    """A rendered block/challenge page ready to ship in a Response."""

    page_type: str
    status: int
    body: str
    extra_headers: Tuple[Tuple[str, str], ...] = ()


def _hex(rng: random.Random, n: int) -> str:
    return "".join(rng.choice("0123456789abcdef") for _ in range(n))


def _digits(rng: random.Random, n: int) -> str:
    return "".join(rng.choice("0123456789") for _ in range(n))


_HTML_SHELL = (
    "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
    "<title>{title}</title>\n{head_extra}</head>\n<body>\n{body}\n</body>\n</html>\n"
)


def render_akamai(rng: random.Random, host: str, country: str) -> RenderedPage:
    """Akamai's generic 'Access Denied' page (also served for bot hits)."""
    reference = f"18.{_hex(rng, 8)}.{_digits(rng, 10)}.{_hex(rng, 7)}"
    body = _HTML_SHELL.format(
        title="Access Denied",
        head_extra="",
        body=(
            "<h1>Access Denied</h1>\n"
            f"<p>You don't have permission to access \"http://{host}/\" "
            "on this server.</p>\n"
            f"<p>Reference&#32;#{reference}</p>"
        ),
    )
    return RenderedPage(AKAMAI_BLOCK, 403, body,
                        (("Server", "AkamaiGHost"), ("Mime-Version", "1.0")))


def render_cloudflare_block(rng: random.Random, host: str, country: str) -> RenderedPage:
    """Cloudflare error 1009: the site owner banned this country."""
    ray = _hex(rng, 16)
    body = _HTML_SHELL.format(
        title=f"Access denied | {host} used Cloudflare to restrict access",
        head_extra="<meta name=\"robots\" content=\"noindex, nofollow\">\n",
        body=(
            "<div id=\"cf-wrapper\">\n"
            "<div class=\"cf-alert cf-alert-error\">\n"
            "<h1><span>Error</span> <span>1009</span></h1>\n"
            "<h2>Access denied</h2>\n"
            "<p>What happened?</p>\n"
            f"<p>The owner of this website ({host}) has banned the country or "
            "region your IP address is in "
            f"(<code>{country}</code>) from accessing this website.</p>\n"
            f"<p class=\"cf-footer-item\">Cloudflare Ray ID: <strong>{ray}</strong></p>\n"
            "<p class=\"cf-footer-item\">Performance &amp; security by "
            "<a href=\"https://www.cloudflare.com/\">Cloudflare</a></p>\n"
            "</div>\n</div>"
        ),
    )
    return RenderedPage(CLOUDFLARE_BLOCK, 403, body,
                        (("Server", "cloudflare"), ("CF-RAY", f"{ray[:12]}-SIM")))


def render_appengine(rng: random.Random, host: str, country: str) -> RenderedPage:
    """Google App Engine's sanctions block page."""
    body = _HTML_SHELL.format(
        title="Error 403 (Forbidden)!!1",
        head_extra="<style>body{font-family:arial,sans-serif}</style>\n",
        body=(
            "<p><b>403.</b> <ins>That's an error.</ins></p>\n"
            "<p>We're sorry, but this service is not available in your country.\n"
            "This application is hosted on Google App Engine, and United States "
            "export controls and sanctions programs restrict its availability "
            "in certain countries or regions. <ins>That's all we know.</ins></p>"
        ),
    )
    return RenderedPage(APPENGINE_BLOCK, 403, body, (("Server", "Google Frontend"),))


def render_cloudflare_captcha(rng: random.Random, host: str, country: str) -> RenderedPage:
    """Cloudflare's 'Attention Required!' captcha interstitial."""
    ray = _hex(rng, 16)
    body = _HTML_SHELL.format(
        title=f"Attention Required! | Cloudflare",
        head_extra="<meta name=\"captcha-bypass\" id=\"captcha-bypass\">\n",
        body=(
            "<h1>One more step</h1>\n"
            f"<h2>Please complete the security check to access {host}</h2>\n"
            "<div class=\"cf-captcha-container\">\n"
            "<form id=\"challenge-form\" action=\"/cdn-cgi/l/chk_captcha\" method=\"get\">\n"
            f"<input type=\"hidden\" name=\"id\" value=\"{_hex(rng, 32)}\">\n"
            "<div class=\"g-recaptcha\"></div>\n</form>\n</div>\n"
            "<p>Why do I have to complete a CAPTCHA?</p>\n"
            "<p>Completing the CAPTCHA proves you are a human and gives you "
            "temporary access to the web property.</p>\n"
            f"<p class=\"cf-footer-item\">Cloudflare Ray ID: <strong>{ray}</strong></p>"
        ),
    )
    return RenderedPage(CLOUDFLARE_CAPTCHA, 403, body,
                        (("Server", "cloudflare"), ("CF-RAY", f"{ray[:12]}-SIM"),
                         ("CF-Chl-Bypass", "1")))


def render_cloudflare_js(rng: random.Random, host: str, country: str) -> RenderedPage:
    """Cloudflare's 5-second JavaScript challenge page."""
    ray = _hex(rng, 16)
    jschl = _digits(rng, 10)
    body = _HTML_SHELL.format(
        title="Just a moment...",
        head_extra=(
            "<meta http-equiv=\"refresh\" content=\"8\">\n"
            "<script>var s,t,o,p,b,r,e,a,k,i,n,g;</script>\n"
        ),
        body=(
            "<table width=\"100%\" height=\"100%\" cellpadding=\"20\">\n"
            "<tr><td align=\"center\" valign=\"middle\">\n"
            "<div class=\"cf-browser-verification cf-im-under-attack\">\n"
            "<h1><span data-translate=\"checking_browser\">Checking your browser "
            f"before accessing</span> {host}.</h1>\n"
            "<p data-translate=\"process_is_automatic\">This process is automatic. "
            "Your browser will redirect to your requested content shortly.</p>\n"
            "<form id=\"challenge-form\" action=\"/cdn-cgi/l/chk_jschl\" method=\"get\">\n"
            f"<input type=\"hidden\" name=\"jschl_vc\" value=\"{_hex(rng, 32)}\"/>\n"
            f"<input type=\"hidden\" name=\"jschl_answer\" value=\"{jschl}\"/>\n"
            "</form>\n</div>\n"
            f"<p class=\"cf-footer-item\">Cloudflare Ray ID: <strong>{ray}</strong></p>\n"
            "</td></tr>\n</table>"
        ),
    )
    return RenderedPage(CLOUDFLARE_JS, 503, body,
                        (("Server", "cloudflare"), ("CF-RAY", f"{ray[:12]}-SIM"),
                         ("Refresh", "8")))


def render_cloudfront(rng: random.Random, host: str, country: str) -> RenderedPage:
    """Amazon CloudFront geo-restriction error page."""
    request_id = _hex(rng, 52)
    body = (
        "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.01 Transitional//EN\" "
        "\"http://www.w3.org/TR/html4/loose.dtd\">\n<html><head>"
        "<title>ERROR: The request could not be satisfied</title>\n</head><body>\n"
        "<h1>403 ERROR</h1>\n<h2>The request could not be satisfied.</h2>\n<hr>\n"
        "<p>The Amazon CloudFront distribution is configured to block access "
        "from your country. We can't connect to the server for this app or "
        "website at this time.</p>\n"
        "<hr>\n<h3>Generated by cloudfront (CloudFront)</h3>\n"
        f"<pre>Request ID: {request_id}</pre>\n</body></html>\n"
    )
    return RenderedPage(CLOUDFRONT_BLOCK, 403, body,
                        (("Server", "CloudFront"),
                         ("X-Amz-Cf-Id", request_id[:40]),
                         ("X-Cache", "Error from cloudfront"),
                         ("Via", "1.1 sim.cloudfront.net (CloudFront)")))


def render_baidu_captcha(rng: random.Random, host: str, country: str) -> RenderedPage:
    """Baidu Yunjiasu captcha interstitial."""
    body = _HTML_SHELL.format(
        title="百度云加速安全验证 - Security Check",
        head_extra="",
        body=(
            "<h1>Security verification</h1>\n"
            f"<h2>Please complete the verification to access {host}</h2>\n"
            "<div class=\"yjs-captcha\">\n"
            f"<input type=\"hidden\" name=\"yjs_id\" value=\"{_hex(rng, 24)}\"/>\n"
            "</div>\n<p>Yunjiasu security check by Baidu.</p>"
        ),
    )
    return RenderedPage(BAIDU_CAPTCHA, 403, body, (("Server", "yunjiasu-nginx"),))


def render_baidu_block(rng: random.Random, host: str, country: str) -> RenderedPage:
    """Baidu Yunjiasu geo-restriction block page (Cloudflare-like wording)."""
    incident = _digits(rng, 12)
    body = _HTML_SHELL.format(
        title=f"Access denied | {host} used Yunjiasu to restrict access",
        head_extra="",
        body=(
            "<h1><span>Error</span> <span>1009</span></h1>\n"
            "<h2>Access denied</h2>\n"
            f"<p>The owner of this website ({host}) has banned the country or "
            f"region your IP address is in (<code>{country}</code>) from "
            "accessing this website.</p>\n"
            f"<p>Yunjiasu incident: {incident} &mdash; protection by Baidu "
            "Yunjiasu</p>"
        ),
    )
    return RenderedPage(BAIDU_BLOCK, 403, body, (("Server", "yunjiasu-nginx"),))


def render_incapsula(rng: random.Random, host: str, country: str) -> RenderedPage:
    """Incapsula's iframe incident page (also served on bot detection)."""
    incident = f"{_digits(rng, 9)}-{_digits(rng, 18)}"
    body = (
        "<html>\n<head>\n<META NAME=\"robots\" CONTENT=\"noindex,nofollow\">\n"
        "<script src=\"/_Incapsula_Resource?SWJIYLWA=719d34d31c8e3a6e6fffd425f7e032f3\">"
        "</script>\n</head>\n<body style=\"margin:0px;height:100%\">\n"
        "<iframe src=\"/_Incapsula_Resource?SWUDNSAI=9&xinfo=\" frameborder=0 "
        "width=\"100%\" height=\"100%\" marginheight=\"0px\" marginwidth=\"0px\">"
        "Request unsuccessful. Incapsula incident ID: "
        f"{incident}</iframe>\n</body>\n</html>\n"
    )
    return RenderedPage(INCAPSULA_BLOCK, 403, body,
                        (("X-Iinfo", f"1-{_digits(rng, 8)}-{_digits(rng, 8)} NNNN CT"),
                         ("X-CDN", "Incapsula"),
                         ("Set-Cookie", f"visid_incap_{_digits(rng, 6)}={_hex(rng, 22)}")))


def render_soasta(rng: random.Random, host: str, country: str) -> RenderedPage:
    """SOASTA/mPulse-style ambiguous access-denied page."""
    body = _HTML_SHELL.format(
        title="Access Denied",
        head_extra="",
        body=(
            "<h1>Access Denied</h1>\n"
            f"<p>Your request to {host} was denied by the site's traffic "
            "management policy.</p>\n"
            f"<p>SOASTA traffic manager &mdash; event {_hex(rng, 12)}</p>"
        ),
    )
    return RenderedPage(SOASTA_BLOCK, 403, body, (("Server", "SOASTA"),))


def render_airbnb(rng: random.Random, host: str, country: str) -> RenderedPage:
    """The Airbnb-style custom brand geoblock page (§4.2.2).

    The real page states that the service is unavailable to users in Crimea,
    Iran, Syria, and North Korea; the brand's national ccTLD sites all serve
    the same page.
    """
    brand = host.split(".")[0].capitalize()
    body = _HTML_SHELL.format(
        title=f"{brand} — Service unavailable in your region",
        head_extra="",
        body=(
            f"<h1>{brand} is not available in your region</h1>\n"
            f"<p>Due to applicable trade sanctions and export-control laws, "
            f"{brand} does not offer its website or services to users in "
            "Crimea, Iran, Syria, and North Korea.</p>\n"
            "<p>If you believe you are seeing this page in error, contact "
            "customer support.</p>"
        ),
    )
    return RenderedPage(AIRBNB_BLOCK, 403, body, ())


def render_distil_captcha(rng: random.Random, host: str, country: str) -> RenderedPage:
    """Distil Networks' 'Pardon Our Interruption' bot-detection page."""
    body = _HTML_SHELL.format(
        title="Pardon Our Interruption",
        head_extra=f"<meta name=\"ROBOTS\" content=\"NOINDEX, NOFOLLOW\">\n",
        body=(
            "<h1>Pardon Our Interruption...</h1>\n"
            "<p>As you were browsing something about your browser made us "
            "think you were a bot. There are a few reasons this might happen:</p>\n"
            "<ul><li>You're a power user moving through this website with "
            "super-human speed.</li>\n<li>You've disabled JavaScript in your "
            "web browser.</li>\n<li>A third-party browser plugin is preventing "
            "JavaScript from running.</li></ul>\n"
            f"<p>Reference ID: #{_hex(rng, 8)}-{_hex(rng, 4)}-{_hex(rng, 12)}</p>"
        ),
    )
    return RenderedPage(DISTIL_CAPTCHA, 403, body, (("X-DB", "1"),))


def render_nginx_403(rng: random.Random, host: str, country: str) -> RenderedPage:
    """The stock nginx 403 page (origin-side GeoIP-module blocking)."""
    body = (
        "<html>\r\n<head><title>403 Forbidden</title></head>\r\n"
        "<body bgcolor=\"white\">\r\n<center><h1>403 Forbidden</h1></center>\r\n"
        "<hr><center>nginx</center>\r\n</body>\r\n</html>\r\n"
    )
    return RenderedPage(NGINX_403, 403, body, (("Server", "nginx"),))


def render_nginx_451(rng: random.Random, host: str, country: str) -> RenderedPage:
    """An RFC 7725 'Unavailable For Legal Reasons' origin page."""
    body = (
        "<html>\r\n<head><title>451 Unavailable For Legal Reasons</title>"
        "</head>\r\n<body bgcolor=\"white\">\r\n"
        "<center><h1>451 Unavailable For Legal Reasons</h1></center>\r\n"
        "<p>This resource is unavailable in your jurisdiction due to "
        "applicable trade sanctions and export-control regulations.</p>\r\n"
        "<hr><center>nginx</center>\r\n</body>\r\n</html>\r\n"
    )
    return RenderedPage(NGINX_451, 451, body, (("Server", "nginx"),))


def render_varnish_403(rng: random.Random, host: str, country: str) -> RenderedPage:
    """The stock Varnish error page with a Guru Meditation line."""
    xid = _digits(rng, 9)
    body = (
        "<?xml version=\"1.0\" encoding=\"utf-8\"?>\n"
        "<!DOCTYPE html>\n<html>\n<head>\n<title>403 Forbidden</title>\n</head>\n"
        "<body>\n<h1>Error 403 Forbidden</h1>\n<p>Forbidden</p>\n"
        f"<h3>Guru Meditation:</h3>\n<p>XID: {xid}</p>\n<hr>\n"
        "<p>Varnish cache server</p>\n</body>\n</html>\n"
    )
    return RenderedPage(VARNISH_403, 403, body, (("Server", "Varnish"), ("X-Varnish", xid)))


RENDERERS: Dict[str, Callable[[random.Random, str, str], RenderedPage]] = {
    AKAMAI_BLOCK: render_akamai,
    CLOUDFLARE_BLOCK: render_cloudflare_block,
    APPENGINE_BLOCK: render_appengine,
    CLOUDFLARE_CAPTCHA: render_cloudflare_captcha,
    CLOUDFLARE_JS: render_cloudflare_js,
    CLOUDFRONT_BLOCK: render_cloudfront,
    BAIDU_CAPTCHA: render_baidu_captcha,
    BAIDU_BLOCK: render_baidu_block,
    INCAPSULA_BLOCK: render_incapsula,
    SOASTA_BLOCK: render_soasta,
    AIRBNB_BLOCK: render_airbnb,
    DISTIL_CAPTCHA: render_distil_captcha,
    NGINX_403: render_nginx_403,
    VARNISH_403: render_varnish_403,
    NGINX_451: render_nginx_451,
}


def render(page_type: str, rng: random.Random, host: str, country: str) -> RenderedPage:
    """Render the named page type for a host as seen from a country."""
    try:
        renderer = RENDERERS[page_type]
    except KeyError:
        raise ValueError(f"unknown page type: {page_type!r}") from None
    return renderer(rng, host, country)
