"""Frozen worldpack: the immutable half of a :class:`World`, as one segment.

Every process-pool worker used to rebuild its own ``World`` from a
:class:`~repro.lumscan.scanner.ScannerSpec` — N workers paid N× the
domain-population/policy/DNS build and held N× the world's RSS.  The
worldpack freezes everything a built world will never mutate into a
single **LSHW** binary segment (the LSHD idiom of
:mod:`repro.lumscan.shards`: magic + canonical-JSON header + aligned
payload sections + a content fingerprint), built once in the parent and
mapped read-only by every worker:

* **Array sections** (per-domain attribute codes, flag bitfield, cached
  base-page lengths) come back as zero-copy ``numpy`` views over the
  shared block — no per-worker copy of the bulk data.
* **JSON sections** (domain names, policies, address plan, GeoIP
  entries, DNS zones) are decoded per worker into the exact objects the
  build phase produced; each preserves the orderings the simulation's
  determinism contract depends on (GeoIP first-match order, allocator
  insertion order, policy-map insertion order).

What is *not* in a pack — ``_page_cache``, ``_clearances``, counters,
the shared RNG streams — is per-worker mutable state and is freshly
initialized on load, so probe outcomes are bit-identical to a worker
that rebuilt its world from the spec (the equivalence suite in
``tests/test_worldpack.py`` holds both paths to the same bytes).

Transports mirror the shard exchange: ``shm`` (zero-copy across the
pool; the parent owns the unlink) and ``file`` (mmap-able, also the
persistent form behind ``repro-geoblock world freeze``).  A worker that
cannot map the pack falls back to the spec rebuild — the pack is an
optimization, never a correctness dependency.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
from dataclasses import dataclass, fields as dataclass_fields
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.lumscan.shards import (
    FINGERPRINT_BYTES,
    _combine_digests,
    _pad,
    _unregister_shm,
    shm_available,
)
from repro.netsim.dns import DNSServer
from repro.netsim.geoip import GeoIPDatabase
from repro.netsim.ip import AddressAllocator, Netblock
from repro.websim.domains import Domain, DomainPopulation
from repro.websim.policies import Degradation, GeoPolicy, PolicyConfig
from repro.websim.world import World, WorldConfig

MAGIC = b"LSHW"
FORMAT_VERSION = 1

#: Pack transport kinds (mirrors the shard exchange's surface).
KIND_SHM = "shm"
KIND_FILE = "file"

#: Valid ``freeze_world(mode=...)`` values.
FREEZE_MODES = ("auto", "shm", "file")

#: Resource-lifetime contract enforced by ``repro.lint``.  A pure
#: literal merged into the linter's contract registry; keep in sync with
#: the pack/reader surface below.
LINT_RESOURCE_CONTRACT = {
    "codec": "worldpack",
    "resources": [
        {"name": "worldpack",
         "acquire": ["freeze_world", "WorldPack"],
         "release_methods": ["release"],
         "release_funcs": ["release_worldpack"]},
        {"name": "worldpack-reader",
         "acquire": ["WorldPackReader"],
         "release_methods": ["close"]},
    ],
    "buffers": [
        {"name": "worldpack-reader",
         "acquire": ["WorldPackReader"],
         "close_methods": ["close"],
         "view_methods": ["array"]},
    ],
    "atomic": {
        "suffixes": [".lshw"],
        "writers": ["write_worldpack_file", "write_worldpack_shm"],
    },
}

#: Per-domain attribute columns: fixed little-endian dtypes, one code per
#: rank (``-1`` encodes None for the optional attributes).
ARRAY_DTYPES = {
    "tld_codes": "<i2",
    "category_codes": "<i2",
    "provider_codes": "<i2",
    "secondary_codes": "<i2",
    "origin_codes": "<i2",
    "cf_tier_codes": "<i2",
    "brand_codes": "<i4",
    "flags": "u1",
    "length_index": "<i4",
    "length_values": "<i8",
}

#: Bit positions in the per-domain ``flags`` bitfield.
_FLAG_BOT = 1
_FLAG_WWW = 2
_FLAG_HTTPS = 4
_FLAG_DEAD = 8
_FLAG_LOOP = 16

#: JSON payload sections, in canonical payload order.
JSON_SECTIONS = (
    "config", "names", "strings", "policies", "degradations", "censorship",
    "allocator", "geoip", "dns", "appengine",
)

#: Canonical payload section order: arrays first (alignment-friendly),
#: then the JSON blobs.
SECTION_ORDER = tuple(ARRAY_DTYPES) + JSON_SECTIONS


@dataclass(frozen=True)
class WorldPackHandle:
    """Picklable reference to a mapped-or-mappable worldpack.

    ``kind`` selects the transport: ``"shm"`` with ``ref`` naming a
    shared-memory block, or ``"file"`` with ``ref`` holding a path.
    ``fingerprint`` is the pack's content hash — workers verify it on
    open, so a stale or torn mapping falls back to the spec rebuild
    instead of silently diverging.
    """

    kind: str
    ref: str
    nbytes: int
    fingerprint: str


def _canonical_json(value) -> bytes:
    return json.dumps(value, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _policy_state(policy: GeoPolicy) -> dict:
    return {
        "enforcer": policy.enforcer,
        "block_page": policy.block_page,
        "blocked_countries": sorted(policy.blocked_countries),
        "blocked_regions": sorted(policy.blocked_regions),
        "challenge_countries": sorted(policy.challenge_countries),
        "challenge_page": policy.challenge_page,
        "challenge_all": policy.challenge_all,
        "expires_epoch": policy.expires_epoch,
        "mode": policy.mode,
        "action": policy.action,
    }


def _policy_from_state(state: dict) -> GeoPolicy:
    return GeoPolicy(
        enforcer=state["enforcer"],
        block_page=state["block_page"],
        blocked_countries=frozenset(state["blocked_countries"]),
        blocked_regions=frozenset(state["blocked_regions"]),
        challenge_countries=frozenset(state["challenge_countries"]),
        challenge_page=state["challenge_page"],
        challenge_all=state["challenge_all"],
        expires_epoch=state["expires_epoch"],
        mode=state["mode"],
        action=state["action"],
    )


def _config_state(config: WorldConfig) -> dict:
    policy = None
    if config.policy is not None:
        policy = {f.name: getattr(config.policy, f.name)
                  for f in dataclass_fields(PolicyConfig)}
        policy["mode_weights"] = list(policy["mode_weights"])
    return {
        "size": config.size,
        "seed": config.seed,
        "geoip_error_rate": config.geoip_error_rate,
        "brand_family_size": config.brand_family_size,
        "country_codes": (None if config.country_codes is None
                          else list(config.country_codes)),
        "policy": policy,
    }


def _config_from_state(state: dict) -> WorldConfig:
    policy = None
    if state["policy"] is not None:
        kwargs = dict(state["policy"])
        kwargs["mode_weights"] = tuple(kwargs["mode_weights"])
        kwargs["adoption"] = {k: tuple(v)
                              for k, v in kwargs["adoption"].items()}
        policy = PolicyConfig(**kwargs)
    return WorldConfig(
        size=state["size"],
        seed=state["seed"],
        geoip_error_rate=state["geoip_error_rate"],
        brand_family_size=state["brand_family_size"],
        country_codes=(None if state["country_codes"] is None
                       else tuple(state["country_codes"])),
        policy=policy,
    )


class _StringTable:
    """First-seen string interner: ``None`` encodes as ``-1``."""

    def __init__(self) -> None:
        self._codes: Dict[str, int] = {}
        self.values: List[str] = []

    def code(self, value: Optional[str]) -> int:
        if value is None:
            return -1
        code = self._codes.get(value)
        if code is None:
            code = len(self.values)
            self._codes[value] = code
            self.values.append(value)
        return code


def encode_worldpack(world: World) -> Tuple[bytes, List[Tuple[int, bytes]],
                                            int]:
    """Encode a built world's immutable state into LSHW wire form.

    Returns ``(header_bytes, payload, payload_nbytes)`` where ``payload``
    lists ``(relative_offset, blob)`` pairs in section order; offsets are
    relative to the 16-byte-aligned payload base (shared writer shape
    with :func:`repro.lumscan.shards.encode_shard`).
    """
    size = len(world.population)
    tables = {name: _StringTable() for name in
              ("tlds", "categories", "providers", "origins", "cf_tiers",
               "brands")}
    columns = {name: np.empty(size, dtype=ARRAY_DTYPES[name])
               for name in ("tld_codes", "category_codes", "provider_codes",
                            "secondary_codes", "origin_codes",
                            "cf_tier_codes", "brand_codes", "flags")}
    names: List[str] = []
    for idx, domain in enumerate(world.population):
        if domain.rank != idx + 1:
            raise ValueError(
                f"population ranks are not contiguous at index {idx} "
                f"(rank {domain.rank}); cannot freeze")
        names.append(domain.name)
        columns["tld_codes"][idx] = tables["tlds"].code(domain.tld)
        columns["category_codes"][idx] = \
            tables["categories"].code(domain.category)
        columns["provider_codes"][idx] = \
            tables["providers"].code(domain.provider)
        columns["secondary_codes"][idx] = \
            tables["providers"].code(domain.secondary_provider)
        columns["origin_codes"][idx] = \
            tables["origins"].code(domain.origin_server)
        columns["cf_tier_codes"][idx] = \
            tables["cf_tiers"].code(domain.cf_tier)
        columns["brand_codes"][idx] = tables["brands"].code(domain.brand)
        columns["flags"][idx] = (
            (_FLAG_BOT if domain.bot_protection else 0)
            | (_FLAG_WWW if domain.www_redirect else 0)
            | (_FLAG_HTTPS if domain.https_redirect else 0)
            | (_FLAG_DEAD if domain.dead else 0)
            | (_FLAG_LOOP if domain.redirect_loop else 0))

    length_items = sorted(
        (world.population.get(name).rank - 1, length)
        for name, length in world._page_length_cache.items())  # lint: ordered(sorted() by rank makes the cache's insertion order irrelevant)
    columns["length_index"] = np.array(
        [idx for idx, _ in length_items], dtype=ARRAY_DTYPES["length_index"])
    columns["length_values"] = np.array(
        [value for _, value in length_items],
        dtype=ARRAY_DTYPES["length_values"])

    json_values = {
        "config": _config_state(world.config),
        "names": names,
        "strings": {name: table.values for name, table in tables.items()},  # lint: ordered(fixed table-name key set; values are first-seen interner order the code columns index into)
        "policies": [[name, _policy_state(policy)]
                     for name, policy in world.policies.items()],  # lint: ordered(policy-map insertion order is rank order and feeds geoblocking_domains output order; load rebuilds it from item order)
        "degradations": [
            [name, {"remove_account": sorted(deg.remove_account_countries),
                    "price_multipliers": sorted(
                        deg.price_multipliers.items())}]
            for name, deg in world.degradations.items()],  # lint: ordered(degradation-map insertion order is rank order; load rebuilds it from item order)
        "censorship": [[name, list(censors)]
                       for name, censors in world.censorship.items()],  # lint: ordered(censorship-map insertion order is rank order; load rebuilds it from item order)
        "allocator": {
            "next": world.allocator._next,
            "owners": [[owner, [b.cidr for b in blocks]]
                       for owner, blocks
                       in world.allocator._blocks.items()],  # lint: ordered(allocation insertion order determines random_address block choice; load rebuilds it from item order)
        },
        "geoip": {
            "entries": [[block.cidr, block.owner, entry.country, entry.region]
                        for block, entry in world.geoip._entries],
            "countries": world.geoip.countries(),
        },
        "dns": [[zone.name, [[r.rtype, r.value] for r in zone.records]]
                for zone in world.dns._zones.values()],  # lint: ordered(zone insertion order and per-zone record order are the DNS contract; load replays add_record in this order)
        "appengine": list(world._appengine_cidrs),
    }

    offset = 0
    payload: List[Tuple[int, bytes]] = []
    sections: List[dict] = []
    digests: List[bytes] = []
    for name in SECTION_ORDER:
        if name in ARRAY_DTYPES:
            blob = np.ascontiguousarray(columns[name]).tobytes()
            section = {"name": name, "kind": "array",
                       "dtype": ARRAY_DTYPES[name],
                       "count": int(columns[name].shape[0])}
        else:
            blob = _canonical_json(json_values[name])
            section = {"name": name, "kind": "json"}
        offset = _pad(offset)
        section["offset"] = offset
        section["nbytes"] = len(blob)
        payload.append((offset, blob))
        sections.append(section)
        digests.append(hashlib.blake2b(
            blob, digest_size=FINGERPRINT_BYTES).digest())
        offset += len(blob)

    header = {
        "version": FORMAT_VERSION,
        "size": size,
        "seed": world.config.seed,
        "fingerprint": _combine_digests(digests),
        "sections": sections,
    }
    header_bytes = _canonical_json(header)
    return header_bytes, payload, offset


def payload_base(header_bytes: bytes) -> int:
    """Absolute offset where a pack's payload begins."""
    return _pad(len(MAGIC) + 4 + len(header_bytes))


def _write_pack(buffer, header_bytes: bytes,
                payload: List[Tuple[int, bytes]]) -> None:
    view = memoryview(buffer)
    view[:len(MAGIC)] = MAGIC
    view[len(MAGIC):len(MAGIC) + 4] = len(header_bytes).to_bytes(4, "little")
    view[len(MAGIC) + 4:len(MAGIC) + 4 + len(header_bytes)] = header_bytes
    base = payload_base(header_bytes)
    for offset, blob in payload:
        view[base + offset:base + offset + len(blob)] = blob


def write_worldpack_file(world: World, path: str) -> WorldPackHandle:
    """Freeze ``world`` into an LSHW file at ``path`` (atomic replace)."""
    header_bytes, payload, payload_nbytes = encode_worldpack(world)
    nbytes = payload_base(header_bytes) + payload_nbytes
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".lshw.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.truncate(nbytes)
            with mmap.mmap(handle.fileno(), nbytes) as buffer:
                _write_pack(buffer, header_bytes, payload)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except FileNotFoundError:
            pass
        raise
    fingerprint = json.loads(header_bytes)["fingerprint"]
    return WorldPackHandle(kind=KIND_FILE, ref=path, nbytes=nbytes,
                           fingerprint=fingerprint)


def write_worldpack_shm(world: World) -> WorldPackHandle:
    """Freeze ``world`` into a shared-memory block.

    Ownership passes to the caller: like the shard writer, the block is
    unregistered from this process's resource tracker and must be
    unlinked via :func:`release_worldpack` exactly once.
    """
    from multiprocessing import shared_memory

    header_bytes, payload, payload_nbytes = encode_worldpack(world)
    nbytes = payload_base(header_bytes) + payload_nbytes
    block = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        _write_pack(block.buf, header_bytes, payload)
    except BaseException:
        block.close()
        block.unlink()
        raise
    name = block.name
    block.close()
    _unregister_shm(name)
    fingerprint = json.loads(header_bytes)["fingerprint"]
    return WorldPackHandle(kind=KIND_SHM, ref=name, nbytes=nbytes,
                           fingerprint=fingerprint)


def release_worldpack(handle: WorldPackHandle) -> None:
    """Unlink a pack's backing storage (idempotent; owner-side only)."""
    if handle.kind == KIND_SHM:
        from multiprocessing import shared_memory

        try:
            block = shared_memory.SharedMemory(name=handle.ref)
        except FileNotFoundError:
            return
        block.close()
        try:
            block.unlink()
        except FileNotFoundError:  # pragma: no cover - unlink race
            pass
    else:
        try:
            os.unlink(handle.ref)
        except FileNotFoundError:
            pass


class WorldPackReader:
    """Read-only mapping of one worldpack (context manager).

    ``file`` packs map the segment with ``mmap``; ``shm`` packs attach
    the shared block (handing tracker registration back to the owner).
    Array sections are zero-copy ``numpy`` views into the mapping — the
    reader must outlive every view it handed out, so callers consume
    views before :meth:`close` (as :func:`load_world` does) or hold the
    reader open for as long as they hold views.
    """

    def __init__(self, handle: WorldPackHandle) -> None:
        self._handle = handle
        self._shm = None
        self._mmap = None
        self._file = None
        if handle.kind == KIND_SHM:
            from multiprocessing import shared_memory

            self._shm = shared_memory.SharedMemory(name=handle.ref)
            _unregister_shm(self._shm.name)
            self._buffer = self._shm.buf
        elif handle.kind == KIND_FILE:
            self._file = open(handle.ref, "rb")
            self._mmap = mmap.mmap(self._file.fileno(), 0,
                                   access=mmap.ACCESS_READ)
            self._buffer = self._mmap
        else:
            raise ValueError(f"unknown worldpack kind {handle.kind!r}")
        try:
            self.header = self._read_header()
        except BaseException:
            self.close()
            raise
        self._sections = {section["name"]: section
                          for section in self.header["sections"]}
        self._base = payload_base(self._header_bytes)

    def _read_header(self) -> dict:
        # The named memoryview must be released before this method can
        # raise: a failed init calls close(), and an exported view kept
        # alive by the traceback frame would turn that into BufferError.
        with memoryview(self._buffer) as view:
            if bytes(view[:len(MAGIC)]) != MAGIC:
                raise ValueError("not a worldpack (bad magic)")
            header_len = int.from_bytes(
                view[len(MAGIC):len(MAGIC) + 4], "little")
            self._header_bytes = bytes(
                view[len(MAGIC) + 4:len(MAGIC) + 4 + header_len])
        header = json.loads(self._header_bytes)
        if header["version"] != FORMAT_VERSION:
            raise ValueError(
                f"unsupported worldpack version {header['version']}")
        if header["fingerprint"] != self._handle.fingerprint:
            raise ValueError(
                f"worldpack fingerprint mismatch: handle says "
                f"{self._handle.fingerprint}, segment says "
                f"{header['fingerprint']}")
        return header

    def array(self, name: str) -> np.ndarray:
        """Zero-copy read-only view of one array section."""
        section = self._sections[name]
        start = self._base + section["offset"]
        view = np.frombuffer(self._buffer, dtype=section["dtype"],
                             count=section["count"], offset=start)
        view.flags.writeable = False
        return view

    def json_bytes(self, name: str) -> bytes:
        """Raw bytes of one JSON section (for deferred decoding)."""
        section = self._sections[name]
        start = self._base + section["offset"]
        with memoryview(self._buffer) as view:
            return bytes(view[start:start + section["nbytes"]])

    def json(self, name: str):
        """Decode one JSON section."""
        return json.loads(self.json_bytes(name))

    def close(self) -> None:
        """Drop the mapping (views handed out must be dead first)."""
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def __enter__(self) -> "WorldPackReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_worldpack_header(path: str) -> dict:
    """Header of an LSHW file (O(header), for ``world inspect``)."""
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise ValueError(f"{path} is not a worldpack (bad magic)")
        header_len = int.from_bytes(handle.read(4), "little")
        return json.loads(handle.read(header_len))


class WorldPack:
    """Parent-side owner of one frozen pack's backing storage.

    The handle is what travels to workers (inside the
    :class:`~repro.lumscan.scanner.ScannerSpec`); the owner is what the
    parent must ``release()`` when the pool is done — exactly once, on
    every path including worker crashes (the engine does this in its
    ``finally``).  Releasing twice is a no-op.
    """

    def __init__(self, handle: WorldPackHandle) -> None:
        self._handle: Optional[WorldPackHandle] = handle

    @property
    def handle(self) -> WorldPackHandle:
        if self._handle is None:
            raise ValueError("worldpack already released")
        return self._handle

    @property
    def released(self) -> bool:
        return self._handle is None

    def release(self) -> None:
        """Unlink the backing storage (idempotent)."""
        if self._handle is not None:
            release_worldpack(self._handle)
            self._handle = None

    def __enter__(self) -> "WorldPack":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


def freeze_world(world: World, mode: str = "auto",
                 directory: Optional[str] = None) -> WorldPack:
    """Freeze a built world for the process pool; returns the owner.

    ``mode="shm"`` forces shared memory, ``"file"`` a temp file under
    ``directory`` (or the system temp dir), ``"auto"`` prefers shm and
    falls back to a file when no shm is usable.
    """
    if mode not in FREEZE_MODES:
        raise ValueError(
            f"mode must be one of {FREEZE_MODES}, got {mode!r}")
    if mode == "shm" or (mode == "auto" and shm_available()):
        return WorldPack(write_worldpack_shm(world))
    fd, path = tempfile.mkstemp(suffix=".lshw", dir=directory,
                                prefix="worldpack-")
    os.close(fd)
    return WorldPack(write_worldpack_file(world, path))


def _thaw(reader: WorldPackReader) -> World:
    header = reader.header
    config = _config_from_state(reader.json("config"))
    names = reader.json("names")
    strings = reader.json("strings")
    size = header["size"]

    tlds = strings["tlds"]
    categories = strings["categories"]
    providers = strings["providers"]
    origins = strings["origins"]
    cf_tiers = strings["cf_tiers"]
    brands = strings["brands"]

    censorship = {name: tuple(censors)
                  for name, censors in reader.json("censorship")}
    # Bulk-convert the mapped columns once: per-element numpy scalar
    # indexing inside a 60k-iteration loop would dominate the thaw.
    tld_codes = reader.array("tld_codes").tolist()
    category_codes = reader.array("category_codes").tolist()
    provider_codes = reader.array("provider_codes").tolist()
    secondary_codes = reader.array("secondary_codes").tolist()
    origin_codes = reader.array("origin_codes").tolist()
    cf_tier_codes = reader.array("cf_tier_codes").tolist()
    brand_codes = reader.array("brand_codes").tolist()
    flags = reader.array("flags").tolist()

    domains: List[Domain] = []
    for idx in range(size):
        name = names[idx]
        flag = flags[idx]
        secondary = secondary_codes[idx]
        cf_tier = cf_tier_codes[idx]
        brand = brand_codes[idx]
        domains.append(Domain(
            name=name,
            rank=idx + 1,
            tld=tlds[tld_codes[idx]],
            category=categories[category_codes[idx]],
            provider=providers[provider_codes[idx]],
            secondary_provider=(None if secondary < 0
                                else providers[secondary]),
            origin_server=origins[origin_codes[idx]],
            bot_protection=bool(flag & _FLAG_BOT),
            www_redirect=bool(flag & _FLAG_WWW),
            https_redirect=bool(flag & _FLAG_HTTPS),
            brand=None if brand < 0 else brands[brand],
            censored_in=censorship.get(name, ()),
            cf_tier=None if cf_tier < 0 else cf_tiers[cf_tier],
            dead=bool(flag & _FLAG_DEAD),
            redirect_loop=bool(flag & _FLAG_LOOP),
        ))
    population = DomainPopulation(domains)

    policies = {name: _policy_from_state(state)
                for name, state in reader.json("policies")}
    degradations = {
        name: Degradation(
            remove_account_countries=frozenset(state["remove_account"]),
            price_multipliers=dict(state["price_multipliers"]))
        for name, state in reader.json("degradations")}

    allocator_state = reader.json("allocator")
    allocator = AddressAllocator(seed=config.seed)
    allocator._next = allocator_state["next"]
    for owner, cidrs in allocator_state["owners"]:
        allocator._blocks[owner] = [Netblock(cidr=cidr, owner=owner)
                                    for cidr in cidrs]

    geoip_state = reader.json("geoip")
    geoip = GeoIPDatabase(seed=config.seed,
                          error_rate=config.geoip_error_rate)
    for cidr, owner, country, region in geoip_state["entries"]:
        geoip.register(Netblock(cidr=cidr, owner=owner), country,
                       region=region)
    if geoip.countries() != geoip_state["countries"]:
        raise ValueError("worldpack GeoIP country order does not round-trip")

    # The closure captures the section bytes, not the reader: the mapping
    # is closed before load_world returns, and the replay can still run
    # after the parent has released the pack's backing storage.
    dns_blob = reader.json_bytes("dns")

    def load_dns() -> DNSServer:
        # Deferred until first access: probe-serving never touches DNS
        # (resolution goes through the population), so workers skip the
        # zone replay entirely; parent-side consumers (NS-record
        # discovery, SPF walks) trigger it transparently.
        dns = DNSServer()
        for zone_name, records in json.loads(dns_blob):
            for rtype, value in records:
                dns.add_record(zone_name, rtype, value)
        return dns

    # Cached page lengths are the one array pair the world consults for
    # its whole lifetime; they are copied out (they only hold the
    # parent's memoized lengths, not all pages) so nothing the thawed
    # world owns can dangle into the mapping after the reader closes.
    length_index = reader.array("length_index").copy()
    length_values = reader.array("length_values").copy()
    length_index.setflags(write=False)
    length_values.setflags(write=False)

    world = World.from_parts(
        config,
        population=population,
        policies=policies,
        degradations=degradations,
        censorship=censorship,
        allocator=allocator,
        geoip=geoip,
        dns=load_dns,
        appengine_cidrs=list(reader.json("appengine")),
        frozen_lengths=(length_index, length_values),
    )
    world.source = "pack"
    return world


def load_world(handle: WorldPackHandle) -> World:
    """Map a pack and thaw it into a fully usable :class:`World`.

    The mapping lives only for the duration of the thaw: sections are
    read straight out of the pack (array sections as zero-copy views),
    and everything the world keeps is owned by the world, so the reader
    is closed before returning and nothing can dangle into the buffer —
    the parent may release the pack while loaded worlds live on.
    Mutable runtime state is freshly initialized, so the result behaves
    bit-identically to ``World(config)``.
    """
    reader = WorldPackReader(handle)
    try:
        return _thaw(reader)
    finally:
        reader.close()
