"""Synthetic web: countries, categories, domains, CDNs, policies, the World.

This package is the stand-in for the live Internet the paper measured.  It
generates a deterministic population of Alexa-style ranked domains, assigns
them to CDNs/hosting providers with realistic market shares, equips a subset
with geoblocking and challenge policies calibrated to the paper's published
marginals, and serves HTTP responses — full origin pages, CDN block pages,
captchas, JS challenges, and origin-server error pages — to simulated
clients identified by IP address.
"""

from repro.websim.categories import Category, CategoryTaxonomy
from repro.websim.countries import Country, CountryRegistry, SANCTIONED
from repro.websim.domains import Domain, DomainPopulation
from repro.websim.policies import GeoPolicy, PolicyModel
from repro.websim.world import World, WorldConfig

__all__ = [
    "Category",
    "CategoryTaxonomy",
    "Country",
    "CountryRegistry",
    "SANCTIONED",
    "Domain",
    "DomainPopulation",
    "GeoPolicy",
    "PolicyModel",
    "World",
    "WorldConfig",
]
