"""Country registry: ISO codes, sanctions status, vantage availability.

The registry drives three aspects of the simulation:

* **Sanctions.** U.S.-sanctioned countries (Iran, Syria, Sudan, Cuba, North
  Korea — plus the Crimea region) are the primary targets of geoblocking in
  the paper (Tables 5–7); Google AppEngine blocks exactly this set [25].
* **Vantage availability.** Luminati had no exits in North Korea, and the
  paper could sample 177 of 195 attempted countries; we tag each country
  with whether residential exits exist and with a relative proxy-reliability
  score (Comoros, for instance, showed a 76.4% response rate versus 89–94%
  elsewhere).
* **Risk reputation.** Free-tier Cloudflare customers block China and Russia
  at the highest rates (Table 9), reflecting abuse-driven rather than
  sanctions-driven blocking; each country carries an ``abuse_reputation``
  weight used by the policy model's risk-based blocking mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: ISO codes of U.S.-sanctioned countries at the time of the study.
SANCTIONED = ("IR", "SY", "SD", "CU", "KP")

#: Region tag for Crimea; treated as sanctioned at sub-country granularity.
CRIMEA = "crimea"

#: Countries that free-tier customers disproportionately block (abuse-driven).
HIGH_ABUSE = ("CN", "RU", "UA", "VN", "IN", "ID", "BR", "NG", "RO", "IQ", "PK", "TR")

#: The 16 VPS countries from §2.2 of the paper.
VPS_COUNTRIES = (
    "IR", "IL", "TR", "RU", "KH", "CH", "AT", "BY",
    "LV", "US", "CA", "BR", "NG", "EG", "KE", "NZ",
)


@dataclass(frozen=True)
class Country:
    """One country in the simulated world."""

    code: str
    name: str
    sanctioned: bool = False
    luminati: bool = True            # residential exits available?
    reliability: float = 0.97        # per-request proxy success probability
    abuse_reputation: float = 0.0    # weight in risk-based blocking [0, 1]
    gdp_rank: int = 100              # 1 = richest; drives VPS selection
    regions: Tuple[str, ...] = ()    # subnational regions with own netblocks


# (code, name, sanctioned, luminati, reliability, abuse, gdp_rank, regions)
_COUNTRY_ROWS: List[Tuple] = [
    ("US", "United States", False, True, 0.985, 0.05, 1, ()),
    ("CN", "China", False, True, 0.94, 0.95, 2, ()),
    ("JP", "Japan", False, True, 0.98, 0.02, 3, ()),
    ("DE", "Germany", False, True, 0.985, 0.03, 4, ()),
    ("GB", "United Kingdom", False, True, 0.985, 0.03, 5, ()),
    ("FR", "France", False, True, 0.98, 0.04, 6, ()),
    ("IN", "India", False, True, 0.95, 0.45, 7, ()),
    ("IT", "Italy", False, True, 0.97, 0.05, 8, ()),
    ("BR", "Brazil", False, True, 0.96, 0.5, 9, ()),
    ("CA", "Canada", False, True, 0.98, 0.03, 10, ()),
    ("KR", "South Korea", False, True, 0.98, 0.06, 11, ()),
    ("RU", "Russia", False, True, 0.95, 0.9, 12, ()),
    ("AU", "Australia", False, True, 0.98, 0.02, 13, ()),
    ("ES", "Spain", False, True, 0.975, 0.04, 14, ()),
    ("MX", "Mexico", False, True, 0.96, 0.2, 15, ()),
    ("ID", "Indonesia", False, True, 0.94, 0.4, 16, ()),
    ("NL", "Netherlands", False, True, 0.985, 0.05, 17, ()),
    ("TR", "Turkey", False, True, 0.95, 0.35, 18, ()),
    ("SA", "Saudi Arabia", False, True, 0.96, 0.1, 19, ()),
    ("CH", "Switzerland", False, True, 0.985, 0.01, 20, ()),
    ("AR", "Argentina", False, True, 0.96, 0.15, 21, ()),
    ("SE", "Sweden", False, True, 0.985, 0.02, 22, ()),
    ("PL", "Poland", False, True, 0.975, 0.08, 23, ()),
    ("BE", "Belgium", False, True, 0.98, 0.02, 24, ()),
    ("TH", "Thailand", False, True, 0.95, 0.2, 25, ()),
    ("NG", "Nigeria", False, True, 0.93, 0.75, 26, ()),
    ("AT", "Austria", False, True, 0.985, 0.01, 27, ()),
    ("NO", "Norway", False, True, 0.985, 0.01, 28, ()),
    ("AE", "United Arab Emirates", False, True, 0.97, 0.08, 29, ()),
    ("EG", "Egypt", False, True, 0.94, 0.25, 30, ()),
    ("MY", "Malaysia", False, True, 0.96, 0.15, 31, ()),
    ("IL", "Israel", False, True, 0.975, 0.06, 32, ()),
    ("HK", "Hong Kong", False, True, 0.975, 0.1, 33, ()),
    ("SG", "Singapore", False, True, 0.98, 0.04, 34, ()),
    ("PH", "Philippines", False, True, 0.94, 0.25, 35, ()),
    ("IR", "Iran", True, True, 0.93, 0.3, 36, ()),
    ("DK", "Denmark", False, True, 0.985, 0.01, 37, ()),
    ("PK", "Pakistan", False, True, 0.93, 0.45, 38, ()),
    ("CO", "Colombia", False, True, 0.95, 0.15, 39, ()),
    ("CL", "Chile", False, True, 0.97, 0.06, 40, ()),
    ("FI", "Finland", False, True, 0.985, 0.01, 41, ()),
    ("BD", "Bangladesh", False, True, 0.92, 0.25, 42, ()),
    ("VN", "Vietnam", False, True, 0.94, 0.55, 43, ()),
    ("ZA", "South Africa", False, True, 0.95, 0.15, 44, ()),
    ("IE", "Ireland", False, True, 0.98, 0.02, 45, ()),
    ("RO", "Romania", False, True, 0.955, 0.5, 46, ()),
    ("CZ", "Czech Republic", False, True, 0.975, 0.25, 47, ()),
    ("PT", "Portugal", False, True, 0.975, 0.04, 48, ()),
    ("PE", "Peru", False, True, 0.95, 0.1, 49, ()),
    ("GR", "Greece", False, True, 0.97, 0.05, 50, ()),
    ("NZ", "New Zealand", False, True, 0.98, 0.01, 51, ()),
    ("IQ", "Iraq", False, True, 0.92, 0.4, 52, ()),
    ("DZ", "Algeria", False, True, 0.93, 0.15, 53, ()),
    ("QA", "Qatar", False, True, 0.97, 0.04, 54, ()),
    ("KZ", "Kazakhstan", False, True, 0.95, 0.2, 55, ()),
    ("HU", "Hungary", False, True, 0.975, 0.1, 56, ()),
    ("KW", "Kuwait", False, True, 0.965, 0.05, 57, ()),
    ("UA", "Ukraine", False, True, 0.95, 0.65, 58, (CRIMEA,)),
    ("MA", "Morocco", False, True, 0.94, 0.1, 59, ()),
    ("EC", "Ecuador", False, True, 0.95, 0.08, 60, ()),
    ("SK", "Slovakia", False, True, 0.975, 0.08, 61, ()),
    ("LK", "Sri Lanka", False, True, 0.94, 0.1, 62, ()),
    ("ET", "Ethiopia", False, True, 0.9, 0.1, 63, ()),
    ("KE", "Kenya", False, True, 0.93, 0.15, 64, ()),
    ("VE", "Venezuela", False, True, 0.92, 0.2, 65, ()),
    ("SD", "Sudan", True, True, 0.9, 0.2, 66, ()),
    ("MM", "Myanmar", False, True, 0.91, 0.1, 67, ()),
    ("DO", "Dominican Republic", False, True, 0.95, 0.08, 68, ()),
    ("UZ", "Uzbekistan", False, True, 0.93, 0.12, 69, ()),
    ("GT", "Guatemala", False, True, 0.94, 0.08, 70, ()),
    ("OM", "Oman", False, True, 0.96, 0.03, 71, ()),
    ("CR", "Costa Rica", False, True, 0.96, 0.04, 72, ()),
    ("UY", "Uruguay", False, True, 0.97, 0.03, 73, ()),
    ("PA", "Panama", False, True, 0.96, 0.05, 74, ()),
    ("LB", "Lebanon", False, True, 0.94, 0.1, 75, ()),
    ("BY", "Belarus", False, True, 0.95, 0.2, 76, ()),
    ("TZ", "Tanzania", False, True, 0.91, 0.08, 77, ()),
    ("HR", "Croatia", False, True, 0.97, 0.2, 78, ()),
    ("BG", "Bulgaria", False, True, 0.97, 0.2, 79, ()),
    ("SI", "Slovenia", False, True, 0.975, 0.03, 80, ()),
    ("LT", "Lithuania", False, True, 0.975, 0.08, 81, ()),
    ("TN", "Tunisia", False, True, 0.94, 0.08, 82, ()),
    ("JO", "Jordan", False, True, 0.95, 0.06, 83, ()),
    ("RS", "Serbia", False, True, 0.96, 0.15, 84, ()),
    ("AZ", "Azerbaijan", False, True, 0.94, 0.1, 85, ()),
    ("GH", "Ghana", False, True, 0.92, 0.2, 86, ()),
    ("CI", "Ivory Coast", False, True, 0.92, 0.08, 87, ()),
    ("CM", "Cameroon", False, True, 0.91, 0.1, 88, ()),
    ("BO", "Bolivia", False, True, 0.94, 0.05, 89, ()),
    ("PY", "Paraguay", False, True, 0.95, 0.05, 90, ()),
    ("LV", "Latvia", False, True, 0.975, 0.12, 91, ()),
    ("EE", "Estonia", False, True, 0.975, 0.1, 92, ()),
    ("NP", "Nepal", False, True, 0.92, 0.08, 93, ()),
    ("SV", "El Salvador", False, True, 0.94, 0.05, 94, ()),
    ("HN", "Honduras", False, True, 0.93, 0.06, 95, ()),
    ("KH", "Cambodia", False, True, 0.92, 0.08, 96, ()),
    ("CY", "Cyprus", False, True, 0.97, 0.04, 97, ()),
    ("SN", "Senegal", False, True, 0.92, 0.06, 98, ()),
    ("ZW", "Zimbabwe", False, True, 0.9, 0.08, 99, ()),
    ("UG", "Uganda", False, True, 0.91, 0.08, 100, ()),
    ("SY", "Syria", True, True, 0.9, 0.25, 101, ()),
    ("LU", "Luxembourg", False, True, 0.985, 0.01, 102, ()),
    ("MT", "Malta", False, True, 0.975, 0.03, 103, ()),
    ("IS", "Iceland", False, True, 0.985, 0.01, 104, ()),
    ("GE", "Georgia", False, True, 0.95, 0.08, 105, ()),
    ("AM", "Armenia", False, True, 0.95, 0.07, 106, ()),
    ("MD", "Moldova", False, True, 0.94, 0.15, 107, ()),
    ("AL", "Albania", False, True, 0.94, 0.08, 108, ()),
    ("MK", "North Macedonia", False, True, 0.95, 0.07, 109, ()),
    ("BA", "Bosnia and Herzegovina", False, True, 0.95, 0.08, 110, ()),
    ("ME", "Montenegro", False, True, 0.95, 0.05, 111, ()),
    ("MN", "Mongolia", False, True, 0.93, 0.04, 112, ()),
    ("KG", "Kyrgyzstan", False, True, 0.92, 0.06, 113, ()),
    ("TJ", "Tajikistan", False, True, 0.91, 0.05, 114, ()),
    ("TM", "Turkmenistan", False, True, 0.9, 0.04, 115, ()),
    ("AF", "Afghanistan", False, True, 0.89, 0.1, 116, ()),
    ("YE", "Yemen", False, True, 0.88, 0.08, 117, ()),
    ("LY", "Libya", False, True, 0.9, 0.1, 118, ()),
    ("BH", "Bahrain", False, True, 0.96, 0.03, 119, ()),
    ("PS", "Palestine", False, True, 0.92, 0.05, 120, ()),
    ("MZ", "Mozambique", False, True, 0.9, 0.05, 121, ()),
    ("AO", "Angola", False, True, 0.9, 0.06, 122, ()),
    ("ZM", "Zambia", False, True, 0.91, 0.05, 123, ()),
    ("BW", "Botswana", False, True, 0.93, 0.03, 124, ()),
    ("NA", "Namibia", False, True, 0.93, 0.03, 125, ()),
    ("MW", "Malawi", False, True, 0.89, 0.04, 126, ()),
    ("RW", "Rwanda", False, True, 0.92, 0.04, 127, ()),
    ("MG", "Madagascar", False, True, 0.89, 0.04, 128, ()),
    ("ML", "Mali", False, True, 0.89, 0.05, 129, ()),
    ("BF", "Burkina Faso", False, True, 0.89, 0.04, 130, ()),
    ("NE", "Niger", False, True, 0.88, 0.04, 131, ()),
    ("TD", "Chad", False, True, 0.87, 0.04, 132, ()),
    ("BJ", "Benin", False, True, 0.9, 0.04, 133, ()),
    ("TG", "Togo", False, True, 0.9, 0.04, 134, ()),
    ("GN", "Guinea", False, True, 0.88, 0.04, 135, ()),
    ("GA", "Gabon", False, True, 0.92, 0.03, 136, ()),
    ("CG", "Congo", False, True, 0.88, 0.04, 137, ()),
    ("CD", "DR Congo", False, True, 0.86, 0.05, 138, ()),
    ("MU", "Mauritius", False, True, 0.95, 0.02, 139, ()),
    ("SC", "Seychelles", False, True, 0.94, 0.02, 140, ()),
    ("CV", "Cape Verde", False, True, 0.92, 0.02, 141, ()),
    ("GM", "Gambia", False, True, 0.89, 0.03, 142, ()),
    ("SL", "Sierra Leone", False, True, 0.87, 0.03, 143, ()),
    ("LR", "Liberia", False, True, 0.87, 0.03, 144, ()),
    ("MR", "Mauritania", False, True, 0.88, 0.03, 145, ()),
    ("SO", "Somalia", False, True, 0.85, 0.05, 146, ()),
    ("DJ", "Djibouti", False, True, 0.88, 0.02, 147, ()),
    ("ER", "Eritrea", False, True, 0.84, 0.02, 148, ()),
    ("SS", "South Sudan", False, True, 0.84, 0.03, 149, ()),
    ("BI", "Burundi", False, True, 0.86, 0.03, 150, ()),
    ("LS", "Lesotho", False, True, 0.9, 0.02, 151, ()),
    ("SZ", "Eswatini", False, True, 0.9, 0.02, 152, ()),
    ("KM", "Comoros", False, True, 0.76, 0.02, 153, ()),
    ("CU", "Cuba", True, True, 0.9, 0.1, 154, ()),
    ("HT", "Haiti", False, True, 0.88, 0.04, 155, ()),
    ("JM", "Jamaica", False, True, 0.94, 0.05, 156, ()),
    ("TT", "Trinidad and Tobago", False, True, 0.95, 0.04, 157, ()),
    ("BS", "Bahamas", False, True, 0.95, 0.03, 158, ()),
    ("BB", "Barbados", False, True, 0.95, 0.02, 159, ()),
    ("GY", "Guyana", False, True, 0.92, 0.03, 160, ()),
    ("SR", "Suriname", False, True, 0.92, 0.03, 161, ()),
    ("BZ", "Belize", False, True, 0.93, 0.03, 162, ()),
    ("NI", "Nicaragua", False, True, 0.93, 0.05, 163, ()),
    ("FJ", "Fiji", False, True, 0.93, 0.02, 164, ()),
    ("PG", "Papua New Guinea", False, True, 0.89, 0.03, 165, ()),
    ("LA", "Laos", False, True, 0.91, 0.05, 166, ()),
    ("BN", "Brunei", False, True, 0.96, 0.02, 167, ()),
    ("MV", "Maldives", False, True, 0.94, 0.02, 168, ()),
    ("BT", "Bhutan", False, True, 0.92, 0.02, 169, ()),
    ("TL", "Timor-Leste", False, True, 0.88, 0.02, 170, ()),
    ("MO", "Macau", False, True, 0.97, 0.04, 171, ()),
    ("TW", "Taiwan", False, True, 0.975, 0.06, 172, ()),
    ("KP", "North Korea", True, False, 0.0, 0.3, 173, ()),
    ("VA", "Vatican City", False, False, 0.0, 0.0, 174, ()),
    ("FM", "Micronesia", False, True, 0.87, 0.01, 175, ()),
    ("WS", "Samoa", False, True, 0.89, 0.01, 176, ()),
    ("TO", "Tonga", False, True, 0.89, 0.01, 177, ()),
    ("VU", "Vanuatu", False, True, 0.89, 0.01, 178, ()),
    ("SB", "Solomon Islands", False, True, 0.87, 0.01, 179, ()),
    ("KI", "Kiribati", False, False, 0.0, 0.01, 180, ()),
    ("NR", "Nauru", False, False, 0.0, 0.01, 181, ()),
    ("TV", "Tuvalu", False, False, 0.0, 0.01, 182, ()),
    ("MH", "Marshall Islands", False, False, 0.0, 0.01, 183, ()),
    ("PW", "Palau", False, False, 0.0, 0.01, 184, ()),
    ("AD", "Andorra", False, True, 0.97, 0.01, 185, ()),
    ("MC", "Monaco", False, True, 0.97, 0.01, 186, ()),
    ("LI", "Liechtenstein", False, True, 0.98, 0.01, 187, ()),
    ("SM", "San Marino", False, True, 0.97, 0.01, 188, ()),
    ("GD", "Grenada", False, True, 0.93, 0.01, 189, ()),
    ("LC", "Saint Lucia", False, True, 0.93, 0.01, 190, ()),
    ("VC", "Saint Vincent", False, True, 0.92, 0.01, 191, ()),
    ("AG", "Antigua and Barbuda", False, True, 0.93, 0.01, 192, ()),
    ("KN", "Saint Kitts and Nevis", False, True, 0.93, 0.01, 193, ()),
    ("DM", "Dominica", False, True, 0.92, 0.01, 194, ()),
    ("ST", "Sao Tome and Principe", False, True, 0.88, 0.01, 195, ()),
]


class CountryRegistry:
    """Indexed access to the simulated world's countries."""

    def __init__(self, countries: Optional[List[Country]] = None) -> None:
        rows = countries if countries is not None else [
            Country(code=c, name=n, sanctioned=s, luminati=l, reliability=r,
                    abuse_reputation=a, gdp_rank=g, regions=tuple(regions))
            for c, n, s, l, r, a, g, regions in _COUNTRY_ROWS
        ]
        self._by_code: Dict[str, Country] = {c.code: c for c in rows}
        if len(self._by_code) != len(rows):
            raise ValueError("duplicate country codes in registry")

    def __len__(self) -> int:
        return len(self._by_code)

    def __iter__(self) -> Iterator[Country]:
        return iter(self._by_code.values())

    def __contains__(self, code: object) -> bool:
        return code in self._by_code

    def get(self, code: str) -> Country:
        """Country by ISO code; raises KeyError for unknown codes."""
        return self._by_code[code]

    def codes(self) -> List[str]:
        """All country codes, in registry order."""
        return list(self._by_code)

    def sanctioned_codes(self) -> List[str]:
        """Codes of sanctioned countries."""
        return [c.code for c in self if c.sanctioned]

    def luminati_codes(self) -> List[str]:
        """Countries where Luminati residential exits exist."""
        return [c.code for c in self if c.luminati]

    def vps_countries(self) -> List[Country]:
        """The §2.2 VPS countries present in this registry, paper order.

        A restricted registry (test configurations) yields the subset of the
        16 VPS locations it contains.
        """
        return [self.get(code) for code in VPS_COUNTRIES if code in self]

    def subset(self, codes: List[str]) -> "CountryRegistry":
        """A registry containing only the given codes (order preserved)."""
        return CountryRegistry([self.get(c) for c in codes])
