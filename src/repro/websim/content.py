"""Origin page generator: realistic, deterministic HTML per domain.

Page lengths follow a per-domain log-normal draw (real front pages range
from a few KB to hundreds of KB), and each *sample* of the same page varies
slightly in length (dynamic ads, CSRF tokens, timestamps), which is exactly
the noise the paper's 30%-length-difference heuristic has to tolerate
(§4.1.2, Figure 2).
"""

from __future__ import annotations

import random
from typing import List

from repro.util.rng import derive_rng

_LOREM_WORDS = (
    "market service global network product research report update team news "
    "travel deal price account secure login search result media stream video "
    "story event world local community forum health finance bank trade auto "
    "vehicle game sport score review guide learn course child school job "
    "career listing shop cart order shipping return support contact about "
    "policy privacy terms partner developer api cloud data mobile app free"
).split()

_NAV_ITEMS = ("Home", "About", "Products", "News", "Contact", "Careers",
              "Support", "Blog", "Pricing", "Sign in")


def _sentence(rng: random.Random) -> str:
    n = rng.randint(6, 16)
    words = [rng.choice(_LOREM_WORDS) for _ in range(n)]
    words[0] = words[0].capitalize()
    return " ".join(words) + "."


def _paragraph(rng: random.Random) -> str:
    return " ".join(_sentence(rng) for _ in range(rng.randint(2, 6)))


def generate_page(domain_name: str, category: str, seed: int = 0) -> str:
    """Generate the canonical front page for a domain.

    The page is fully determined by (domain_name, category, seed).
    """
    rng = derive_rng(seed, "page", domain_name)
    # Log-normal page size, clipped: median ~30 KB, long right tail.
    target = int(min(max(rng.lognormvariate(10.2, 0.8), 4_000), 400_000))
    title = domain_name.split(".")[0].capitalize()

    parts: List[str] = [
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n",
        f"<title>{title} — {category}</title>\n",
        f"<meta name=\"description\" content=\"{_sentence(rng)}\">\n",
        "<link rel=\"stylesheet\" href=\"/static/main.css\">\n",
        "<script src=\"/static/app.js\" defer></script>\n",
        "</head>\n<body>\n<header>\n<nav>\n",
    ]
    for item in rng.sample(_NAV_ITEMS, k=6):
        parts.append(f"<a href=\"/{item.lower().replace(' ', '-')}\">{item}</a>\n")
    parts.append("</nav>\n")
    # Account features: present on every page; removed for countries a
    # site degrades (application-layer discrimination, §7.3).
    parts.append(
        "<div id=\"account\">\n"
        "<a class=\"login\" href=\"/login\">Sign in</a>\n"
        "<a class=\"register\" href=\"/register\">Create account</a>\n"
        "</div>\n"
    )
    parts.append(f"</header>\n<main>\n<h1>{title}</h1>\n")
    if category in ("Shopping", "Travel", "Auctions", "Personal Vehicles"):
        # Price blocks enable price-discrimination modelling: the world
        # rewrites data-amount per country for discriminating sites.
        for product in range(3):
            amount = round(rng.uniform(8, 400), 2)
            parts.append(
                f"<div class=\"product\" id=\"p{product}\">"
                f"<span class=\"price\" data-amount=\"{amount:.2f}\">"
                f"${amount:.2f}</span></div>\n"
            )
    while sum(len(p) for p in parts) < target:
        parts.append(f"<section>\n<h2>{_sentence(rng)}</h2>\n")
        for _ in range(rng.randint(1, 4)):
            parts.append(f"<p>{_paragraph(rng)}</p>\n")
        parts.append("</section>\n")
    parts.append(
        f"</main>\n<footer>\n<p>&copy; 2018 {title}. All rights reserved.</p>\n"
        "</footer>\n</body>\n</html>\n"
    )
    return "".join(parts)


_ACCOUNT_RE = None


def degrade_page(page: str, remove_account: bool = False,
                 price_multiplier: float = 1.0) -> str:
    """Apply application-layer discrimination to a page.

    ``remove_account`` drops the login/register block (feature removal);
    ``price_multiplier`` rescales every price (price discrimination).
    Both leave the page length within normal sample-to-sample variation,
    which is why blockpage-oriented pipelines cannot see this (§7.3).
    """
    import re
    global _ACCOUNT_RE
    result = page
    if remove_account:
        if _ACCOUNT_RE is None:
            _ACCOUNT_RE = re.compile(
                r'<div id="account">.*?</div>\n', re.DOTALL)
        result = _ACCOUNT_RE.sub("<div id=\"account\"></div>\n", result)
    if price_multiplier != 1.0:
        def rescale(match: "re.Match") -> str:
            amount = float(match.group(1)) * price_multiplier
            return (f'<span class="price" data-amount="{amount:.2f}">'
                    f'${amount:.2f}</span>')
        result = re.sub(
            r'<span class="price" data-amount="([0-9.]+)">\$[0-9.]+</span>',
            rescale, result)
    return result


def sample_jitter(base_page: str, rng: random.Random, max_fraction: float = 0.04) -> str:
    """Return a per-sample variant of a page.

    Real pages differ slightly between loads; we append a dynamic-content
    comment whose size is uniform in [0, max_fraction × len(page)].
    """
    pad = rng.randint(0, max(1, int(len(base_page) * max_fraction)))
    token = "".join(rng.choice("abcdefghij0123456789") for _ in range(16))
    filler = "x" * pad
    return base_page + f"<!-- dyn:{token}:{filler} -->\n"
