"""Origin page generator: realistic, deterministic HTML per domain.

Page lengths follow a per-domain log-normal draw (real front pages range
from a few KB to hundreds of KB), and each *sample* of the same page varies
slightly in length (dynamic ads, CSRF tokens, timestamps), which is exactly
the noise the paper's 30%-length-difference heuristic has to tolerate
(§4.1.2, Figure 2).
"""

from __future__ import annotations

import random
from typing import List

from repro.util.rng import derive_rng

_LOREM_WORDS = (
    "market service global network product research report update team news "
    "travel deal price account secure login search result media stream video "
    "story event world local community forum health finance bank trade auto "
    "vehicle game sport score review guide learn course child school job "
    "career listing shop cart order shipping return support contact about "
    "policy privacy terms partner developer api cloud data mobile app free"
).split()

_NAV_ITEMS = ("Home", "About", "Products", "News", "Contact", "Careers",
              "Support", "Blog", "Pricing", "Sign in")

_ACCOUNT_BLOCK = (
    "<div id=\"account\">\n"
    "<a class=\"login\" href=\"/login\">Sign in</a>\n"
    "<a class=\"register\" href=\"/register\">Create account</a>\n"
    "</div>\n"
)

# Length-only synthesis (page_length) replays generate_page's draw
# sequence but only needs each chosen word's *length*; rng._randbelow is
# exactly the draw random.Random.choice makes, so indexing this table
# consumes identical RNG state at a fraction of the cost.  The
# equivalence suite pins page_length == len(generate_page) across whole
# world populations, guarding the replication against drift.
_WORD_LENGTHS = tuple(len(w) for w in _LOREM_WORDS)
_N_WORDS = len(_LOREM_WORDS)
# CPython's _randbelow(n) draws getrandbits(n.bit_length()) and rejects
# values >= n.  page_length inlines that loop for the hot word draw (with
# the C-level getrandbits bound locally), so the constants below must
# track the vocabulary size.
_WORD_BITS = _N_WORDS.bit_length()


def _sentence(rng: random.Random) -> str:
    n = rng.randint(6, 16)
    words = [rng.choice(_LOREM_WORDS) for _ in range(n)]
    words[0] = words[0].capitalize()
    return " ".join(words) + "."


def _sentence_length(randbelow, getrandbits) -> int:
    # Same draws as _sentence — randint(a, b) is a + _randbelow(b - a + 1),
    # and choice(words) is words[_randbelow(len(words))], whose rejection
    # loop is inlined here — but skipping the randrange/choice wrappers
    # and string work.  capitalize() keeps length, join adds n-1 spaces,
    # the period adds 1: sum(words) + n.
    n = 6 + randbelow(11)
    lengths = _WORD_LENGTHS
    total = 0
    drawn = 0
    while drawn < n:
        r = getrandbits(_WORD_BITS)
        if r < _N_WORDS:
            total += lengths[r]
            drawn += 1
    return total + n


def _paragraph(rng: random.Random) -> str:
    return " ".join(_sentence(rng) for _ in range(rng.randint(2, 6)))


def _paragraph_length(randbelow, getrandbits) -> int:
    # range(randint) is evaluated before any sentence draw, matching the
    # generator expression in _paragraph.
    k = 2 + randbelow(5)
    total = 0
    for _ in range(k):
        total += _sentence_length(randbelow, getrandbits)
    return total + (k - 1)


def generate_page(domain_name: str, category: str, seed: int = 0) -> str:
    """Generate the canonical front page for a domain.

    The page is fully determined by (domain_name, category, seed).
    """
    rng = derive_rng(seed, "page", domain_name)
    # Log-normal page size, clipped: median ~30 KB, long right tail.
    target = int(min(max(rng.lognormvariate(10.2, 0.8), 4_000), 400_000))
    title = domain_name.split(".")[0].capitalize()

    parts: List[str] = [
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n",
        f"<title>{title} — {category}</title>\n",
        f"<meta name=\"description\" content=\"{_sentence(rng)}\">\n",
        "<link rel=\"stylesheet\" href=\"/static/main.css\">\n",
        "<script src=\"/static/app.js\" defer></script>\n",
        "</head>\n<body>\n<header>\n<nav>\n",
    ]
    for item in rng.sample(_NAV_ITEMS, k=6):
        parts.append(f"<a href=\"/{item.lower().replace(' ', '-')}\">{item}</a>\n")
    parts.append("</nav>\n")
    # Account features: present on every page; removed for countries a
    # site degrades (application-layer discrimination, §7.3).
    parts.append(_ACCOUNT_BLOCK)
    parts.append(f"</header>\n<main>\n<h1>{title}</h1>\n")
    if category in ("Shopping", "Travel", "Auctions", "Personal Vehicles"):
        # Price blocks enable price-discrimination modelling: the world
        # rewrites data-amount per country for discriminating sites.
        for product in range(3):
            amount = round(rng.uniform(8, 400), 2)
            parts.append(
                f"<div class=\"product\" id=\"p{product}\">"
                f"<span class=\"price\" data-amount=\"{amount:.2f}\">"
                f"${amount:.2f}</span></div>\n"
            )
    while sum(len(p) for p in parts) < target:
        parts.append(f"<section>\n<h2>{_sentence(rng)}</h2>\n")
        for _ in range(rng.randint(1, 4)):
            parts.append(f"<p>{_paragraph(rng)}</p>\n")
        parts.append("</section>\n")
    parts.append(
        f"</main>\n<footer>\n<p>&copy; 2018 {title}. All rights reserved.</p>\n"
        "</footer>\n</body>\n</html>\n"
    )
    return "".join(parts)


# Fixed-overhead lengths for page_length, measured from the literals they
# mirror so the two paths cannot drift independently.
_HEAD_LEN = len(
    "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
_TITLE_OVERHEAD = len("<title>") + len(" — ") + len("</title>\n")
_DESC_OVERHEAD = len("<meta name=\"description\" content=\"") + len("\">\n")
_STATIC_LINKS_LEN = len(
    "<link rel=\"stylesheet\" href=\"/static/main.css\">\n"
    "<script src=\"/static/app.js\" defer></script>\n"
    "</head>\n<body>\n<header>\n<nav>\n")
_NAV_OVERHEAD = len("<a href=\"/") + len("\">") + len("</a>\n")
_NAV_CLOSE_LEN = len("</nav>\n")
_H1_OVERHEAD = len("</header>\n<main>\n<h1>") + len("</h1>\n")
_SECTION_OPEN_OVERHEAD = len("<section>\n<h2>") + len("</h2>\n")
_P_OVERHEAD = len("<p>") + len("</p>\n")
_SECTION_CLOSE_LEN = len("</section>\n")
_FOOTER_OVERHEAD = len(
    "</main>\n<footer>\n<p>&copy; 2018 "
    ". All rights reserved.</p>\n</footer>\n</body>\n</html>\n")


def page_length(domain_name: str, category: str, seed: int = 0) -> int:
    """Exact ``len(generate_page(...))`` without building the page.

    Replays generate_page's RNG draw sequence (so downstream draws from a
    shared stream would be unperturbed) while accumulating lengths instead
    of concatenating strings — roughly an order of magnitude cheaper for
    large pages.  The handful of variable-width fragments (price blocks)
    are still rendered and measured.
    """
    rng = derive_rng(seed, "page", domain_name)
    target = int(min(max(rng.lognormvariate(10.2, 0.8), 4_000), 400_000))
    title_len = len(domain_name.split(".")[0])
    randbelow = rng._randbelow
    getrandbits = rng.getrandbits

    total = _HEAD_LEN
    total += _TITLE_OVERHEAD + title_len + len(category)
    total += _DESC_OVERHEAD + _sentence_length(randbelow, getrandbits)
    total += _STATIC_LINKS_LEN
    for item in rng.sample(_NAV_ITEMS, k=6):
        # lower()/replace(' ', '-') keep the item's length, and the item
        # appears twice: once in the href, once as the link text.
        total += _NAV_OVERHEAD + 2 * len(item)
    total += _NAV_CLOSE_LEN
    total += len(_ACCOUNT_BLOCK)
    total += _H1_OVERHEAD + title_len
    if category in ("Shopping", "Travel", "Auctions", "Personal Vehicles"):
        for product in range(3):
            amount = round(rng.uniform(8, 400), 2)
            total += len(
                f"<div class=\"product\" id=\"p{product}\">"
                f"<span class=\"price\" data-amount=\"{amount:.2f}\">"
                f"${amount:.2f}</span></div>\n"
            )
    while total < target:
        total += _SECTION_OPEN_OVERHEAD + _sentence_length(randbelow, getrandbits)
        for _ in range(1 + randbelow(4)):
            total += _P_OVERHEAD + _paragraph_length(randbelow, getrandbits)
        total += _SECTION_CLOSE_LEN
    total += _FOOTER_OVERHEAD + title_len
    return total


_ACCOUNT_RE = None


def degrade_page(page: str, remove_account: bool = False,
                 price_multiplier: float = 1.0) -> str:
    """Apply application-layer discrimination to a page.

    ``remove_account`` drops the login/register block (feature removal);
    ``price_multiplier`` rescales every price (price discrimination).
    Both leave the page length within normal sample-to-sample variation,
    which is why blockpage-oriented pipelines cannot see this (§7.3).
    """
    import re
    global _ACCOUNT_RE
    result = page
    if remove_account:
        if _ACCOUNT_RE is None:
            _ACCOUNT_RE = re.compile(
                r'<div id="account">.*?</div>\n', re.DOTALL)
        result = _ACCOUNT_RE.sub("<div id=\"account\"></div>\n", result)
    if price_multiplier != 1.0:
        def rescale(match: "re.Match") -> str:
            amount = float(match.group(1)) * price_multiplier
            return (f'<span class="price" data-amount="{amount:.2f}">'
                    f'${amount:.2f}</span>')
        result = re.sub(
            r'<span class="price" data-amount="([0-9.]+)">\$[0-9.]+</span>',
            rescale, result)
    return result


_JITTER_PREFIX = "<!-- dyn:"
_JITTER_SUFFIX = " -->\n"
_TOKEN_ALPHABET = "abcdefghij0123456789"
_TOKEN_LEN = 16
#: Bytes the dynamic-content comment adds beyond the pad itself
#: (prefix + token + ":" separator + suffix).
JITTER_OVERHEAD = len(_JITTER_PREFIX) + _TOKEN_LEN + 1 + len(_JITTER_SUFFIX)


def jitter_pad(base_length: int, rng: random.Random,
               max_fraction: float = 0.04) -> int:
    """Draw the pad size — the first (and length-determining) jitter draw."""
    return rng.randint(0, max(1, int(base_length * max_fraction)))


def jitter_token(rng: random.Random) -> str:
    """Draw the 16-character dynamic token (the remaining jitter draws)."""
    return "".join(rng.choice(_TOKEN_ALPHABET) for _ in range(_TOKEN_LEN))


def jitter_length(base_length: int, pad: int) -> int:
    """The length sample_jitter would produce for this base and pad."""
    return base_length + pad + JITTER_OVERHEAD


def render_jitter(base_page: str, pad: int, token: str) -> str:
    """Assemble the jittered page from its already-drawn components."""
    return base_page + f"{_JITTER_PREFIX}{token}:{'x' * pad}{_JITTER_SUFFIX}"


def sample_jitter(base_page: str, rng: random.Random, max_fraction: float = 0.04) -> str:
    """Return a per-sample variant of a page.

    Real pages differ slightly between loads; we append a dynamic-content
    comment whose size is uniform in [0, max_fraction × len(page)].
    """
    pad = jitter_pad(len(base_page), rng, max_fraction)
    token = jitter_token(rng)
    return render_jitter(base_page, pad, token)
