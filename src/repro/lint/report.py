"""Findings, baseline matching, and human/JSON rendering.

Output is deterministic by construction: findings sort by
(path, line, column, rule), and the JSON form contains no timestamps or
absolute paths.  The baseline keys a finding by
``(path, rule, blake2 of the stripped source line)`` so grandfathered
findings survive unrelated line drift but die with any edit to the
offending line itself.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.lint.rules import SEVERITY_ERROR, SEVERITY_WARN

#: Exit codes of the CLI (suitable for CI gating).
EXIT_CLEAN = 0        # no errors (warnings and baselined findings allowed)
EXIT_FINDINGS = 1     # at least one non-baselined error finding
EXIT_USAGE = 2        # bad invocation / unreadable input

BASELINE_VERSION = 1


@dataclass
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    column: int
    rule_id: str
    severity: str           # effective severity after tier demotion
    message: str
    line_text: str = ""
    suppressed: bool = False      # matched a # lint: allow(...) directive
    suppress_reason: str = ""
    baselined: bool = False       # grandfathered by the baseline file
    #: Path trace of the flow-sensitive rules: ordered
    #: ``{"line": int, "note": str}`` steps from the acquire site to
    #: the leak/escape site.  Empty for the per-node rules.
    trace: List[Dict[str, object]] = field(default_factory=list)

    def key(self) -> str:
        """The baseline identity of this finding."""
        return baseline_key(self.path, self.rule_id, self.line_text)

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe form."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "text": self.line_text,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "trace": list(self.trace),
        }


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Deterministic presentation order."""
    return sorted(findings,
                  key=lambda f: (f.path, f.line, f.column, f.rule_id))


def active_errors(findings: Sequence[Finding]) -> List[Finding]:
    """Error findings that actually gate (not suppressed, not baselined)."""
    return [f for f in findings
            if f.severity == SEVERITY_ERROR
            and not f.suppressed and not f.baselined]


def exit_code(findings: Sequence[Finding]) -> int:
    """CI exit semantics: fail only on active error findings."""
    return EXIT_FINDINGS if active_errors(findings) else EXIT_CLEAN


# --------------------------------------------------------------------- #
# Baseline

def baseline_key(path: str, rule_id: str, line_text: str) -> str:
    """Stable identity of one finding for baseline matching."""
    normalized = path.replace(os.sep, "/")
    digest = hashlib.blake2b(line_text.strip().encode("utf-8"),
                             digest_size=8).hexdigest()
    return f"{normalized}:{rule_id}:{digest}"


@dataclass
class Baseline:
    """Grandfathered findings, keyed with per-key multiplicity."""

    counts: Counter = field(default_factory=Counter)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file (missing file -> empty baseline)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return cls()
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version "
                f"{payload.get('version')!r}")
        counts: Counter = Counter()
        for entry in payload.get("entries", []):
            counts[entry["key"]] += int(entry.get("count", 1))
        return cls(counts=counts)

    def apply(self, findings: Sequence[Finding]) -> None:
        """Mark findings covered by the baseline (consuming credits)."""
        remaining = Counter(self.counts)
        for finding in sort_findings(findings):
            if finding.suppressed:
                continue
            key = finding.key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                finding.baselined = True

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """A baseline grandfathering every active finding."""
        counts: Counter = Counter(
            f.key() for f in findings if not f.suppressed)
        return cls(counts=counts)

    def dump(self, path: str) -> None:
        """Write the baseline file (sorted, stable)."""
        entries = [{"key": key, "count": count}
                   for key, count in sorted(self.counts.items())]
        payload = {"version": BASELINE_VERSION, "entries": entries}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")


# --------------------------------------------------------------------- #
# Rendering

def _summary_counts(findings: Sequence[Finding]) -> Dict[str, int]:
    errors = warns = suppressed = baselined = 0
    for finding in findings:
        if finding.suppressed:
            suppressed += 1
        elif finding.baselined:
            baselined += 1
        elif finding.severity == SEVERITY_ERROR:
            errors += 1
        elif finding.severity == SEVERITY_WARN:
            warns += 1
    return {
        "errors": errors,
        "warnings": warns,
        "suppressed": suppressed,
        "baselined": baselined,
        "total": len(findings),
    }


def render_text(findings: Sequence[Finding], verbose: bool = False) -> str:
    """Human-readable report (one line per active finding)."""
    lines: List[str] = []
    for finding in sort_findings(findings):
        if finding.suppressed and not verbose:
            continue
        if finding.baselined and not verbose:
            continue
        marker = finding.severity
        if finding.suppressed:
            marker = "allowed"
        elif finding.baselined:
            marker = "baselined"
        lines.append(f"{finding.path}:{finding.line}:{finding.column}: "
                     f"{marker} [{finding.rule_id}] {finding.message}")
        if finding.line_text:
            lines.append(f"    {finding.line_text}")
        for step in finding.trace:
            lines.append(f"    trace: line {step['line']}: {step['note']}")
    counts = _summary_counts(findings)
    lines.append(
        f"lint: {counts['errors']} error(s), {counts['warnings']} "
        f"warning(s), {counts['suppressed']} suppressed, "
        f"{counts['baselined']} baselined")
    return "\n".join(lines)


#: lint-report.json schema version.  v2 adds per-finding ``trace``
#: arrays (acquire-site -> leak-site paths) and the ``internal_error``
#: payload written when the analyzer itself crashes.
REPORT_VERSION = 2


def render_json(findings: Sequence[Finding],
                rule_ids: Optional[Sequence[str]] = None) -> str:
    """Machine-readable report (stable key order, no timestamps)."""
    payload = {
        "version": REPORT_VERSION,
        "summary": _summary_counts(findings),
        "rules": sorted(rule_ids) if rule_ids is not None else None,
        "findings": [f.as_dict() for f in sort_findings(findings)],
    }
    if payload["rules"] is None:
        del payload["rules"]
    return json.dumps(payload, indent=1, sort_keys=True)


def render_error_json(kind: str, message: str, traceback_text: str) -> str:
    """Report body for an analyzer crash (exit code 2).

    CI uploads lint-report.json unconditionally, so an internal error
    must land in the artifact, not just on stderr.
    """
    payload = {
        "version": REPORT_VERSION,
        "summary": None,
        "findings": [],
        "internal_error": {
            "type": kind,
            "message": message,
            "traceback": traceback_text,
        },
    }
    return json.dumps(payload, indent=1, sort_keys=True)
