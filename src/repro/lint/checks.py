"""Per-module AST checks for the determinism rules.

Each check takes a :class:`~repro.lint.visitor.ModuleInfo` and yields raw
:class:`~repro.lint.report.Finding`\\ s at the rule's default severity;
tier demotion, suppression matching, and baseline application happen in
:mod:`repro.lint.engine`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.lint.report import Finding
from repro.lint.rules import (
    FS_ENUM_CALLS,
    FS_ENUM_METHODS,
    GLOBAL_RANDOM_ALLOWED,
    GLOBAL_RANDOM_PREFIXES,
    ORDER_FREE_CONSUMERS,
    PICKLABLE_CONTAINERS,
    PICKLABLE_LEAVES,
    RAW_ENTROPY_CALLS,
    RAW_ENTROPY_PREFIXES,
    RULES_BY_ID,
    SANCTIONED_CLOCK_FILES,
    SERIALIZATION_FUNCTIONS,
    SERIALIZATION_SINKS,
    UNPICKLABLE_LEAVES,
    WALL_CLOCK_CALLS,
)
from repro.lint.visitor import ModuleInfo, _annotation_head, parent_of


def _finding(module: ModuleInfo, node: ast.AST, rule_id: str,
             message: str) -> Finding:
    line = getattr(node, "lineno", 1)
    return Finding(
        path=module.path,
        line=line,
        column=getattr(node, "col_offset", 0) + 1,
        rule_id=rule_id,
        severity=RULES_BY_ID[rule_id].severity,
        message=message,
        line_text=module.line_text(line),
    )


def _normalized(path: str) -> str:
    return path.replace("\\", "/")


def _is_order_free_consumer(node: ast.AST) -> bool:
    """True when the node is an argument of an order-insensitive call."""
    parent = parent_of(node)
    if isinstance(parent, ast.Call) and node in parent.args:
        func = parent.func
        name = func.id if isinstance(func, ast.Name) else None
        return name in ORDER_FREE_CONSUMERS
    return False


# --------------------------------------------------------------------- #
# wall-clock / raw-entropy / global-random

def check_clock_and_entropy(module: ModuleInfo) -> List[Finding]:
    """wall-clock, raw-entropy, and global-random in one AST walk."""
    findings: List[Finding] = []
    sanctioned_clock = _normalized(module.path).endswith(SANCTIONED_CLOCK_FILES)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = module.dotted_name(node.func)
        if dotted is None:
            continue
        if dotted in WALL_CLOCK_CALLS and not sanctioned_clock:
            findings.append(_finding(
                module, node, "wall-clock",
                f"{dotted}() reads the process clock; route timing "
                f"through repro.util.clock.Clock"))
        elif (dotted in RAW_ENTROPY_CALLS
                or dotted.startswith(RAW_ENTROPY_PREFIXES)):
            findings.append(_finding(
                module, node, "raw-entropy",
                f"{dotted}() draws OS entropy; derive randomness with "
                f"repro.util.rng.derive_rng instead"))
        elif (dotted.startswith(GLOBAL_RANDOM_PREFIXES)
                and dotted not in GLOBAL_RANDOM_ALLOWED):
            findings.append(_finding(
                module, node, "global-random",
                f"{dotted}() draws from the shared global stream; use a "
                f"generator from repro.util.rng.derive_rng"))
    return findings


# --------------------------------------------------------------------- #
# fs-order

def check_fs_order(module: ModuleInfo) -> List[Finding]:
    """Unsorted filesystem enumeration."""
    findings: List[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = module.dotted_name(node.func)
        enum_name: Optional[str] = None
        if dotted in FS_ENUM_CALLS:
            enum_name = dotted
        elif isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in FS_ENUM_METHODS:
                enum_name = f"<path>.{attr}"
            elif attr == "glob" and (dotted is None
                                     or not dotted.startswith("glob.")):
                enum_name = "<path>.glob"
        if enum_name is None:
            continue
        parent = parent_of(node)
        if (isinstance(parent, ast.Call) and node in parent.args
                and isinstance(parent.func, ast.Name)
                and parent.func.id in ORDER_FREE_CONSUMERS):
            continue
        findings.append(_finding(
            module, node, "fs-order",
            f"{enum_name}() enumerates in filesystem order; wrap the "
            f"call in sorted(...)"))
    return findings


# --------------------------------------------------------------------- #
# iter-order

_DICT_VIEWS = ("items", "keys", "values")
_SET_HEADS = ("set", "frozenset")
_SET_ANNOTATIONS = ("Set", "FrozenSet", "set", "frozenset", "MutableSet")
_SET_METHODS = ("union", "intersection", "difference",
                "symmetric_difference")
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _function_nodes(tree: ast.Module) -> Iterable[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node


def _calls_serialization_sink(module: ModuleInfo,
                              func: ast.FunctionDef) -> bool:
    if func.name in SERIALIZATION_FUNCTIONS:
        return True
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        dotted = module.dotted_name(node.func)
        if dotted is None:
            continue
        if dotted in SERIALIZATION_SINKS:
            return True
        if dotted.rsplit(".", 1)[-1] in SERIALIZATION_SINKS:
            return True
    return False


def _set_names(func: ast.FunctionDef) -> Set[str]:
    """Local names statically known to hold sets."""
    names: Set[str] = set()
    for node in ast.walk(func):
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and _is_set_expr(node.value, names):
                names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            head = _annotation_head(node.annotation)
            if head in _SET_ANNOTATIONS:
                names.add(node.target.id)
    return names


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _SET_HEADS:
            return True
        if (isinstance(func, ast.Attribute) and func.attr in _SET_METHODS
                and _is_set_expr(func.value, set_names)):
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return (_is_set_expr(node.left, set_names)
                or _is_set_expr(node.right, set_names))
    return False


def _iterated_position(node: ast.AST) -> bool:
    """True when the expression's order is observed by its consumer."""
    parent = parent_of(node)
    if isinstance(parent, ast.For) and parent.iter is node:
        return True
    if isinstance(parent, ast.comprehension) and parent.iter is node:
        return True
    if (isinstance(parent, ast.Call) and node in parent.args
            and isinstance(parent.func, ast.Name)
            and parent.func.id in ("list", "tuple", "iter",
                                   "enumerate", "reversed")):
        return True
    return False


def check_iter_order(module: ModuleInfo) -> List[Finding]:
    """Unordered iteration inside serialization contexts."""
    findings: List[Finding] = []
    for func in _function_nodes(module.tree):
        if not _calls_serialization_sink(module, func):
            continue
        set_names = _set_names(func)
        for node in ast.walk(func):
            hazard: Optional[str] = None
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _DICT_VIEWS
                    and not node.args):
                hazard = (f".{node.func.attr}() iteration order is the "
                          f"mapping's insertion order")
            elif _is_set_expr(node, set_names):
                hazard = "set iteration order depends on PYTHONHASHSEED"
            if hazard is None or not _iterated_position(node):
                continue
            if _is_order_free_consumer(node):
                continue
            ordered = module.ordered_on(node.lineno)
            if ordered is not None:
                ordered.used = True
                continue
            findings.append(_finding(
                module, node, "iter-order",
                f"{hazard}, and this function serializes; wrap in "
                f"sorted(...) or document the guarantee with "
                f"# lint: ordered(<reason>)"))
    return findings


# --------------------------------------------------------------------- #
# spec-pickle

def _annotation_problem(node: ast.AST,
                        project_classes: Set[str]) -> Optional[str]:
    """Why an annotation is not statically picklable (None when fine)."""
    if isinstance(node, ast.Constant):
        if node.value is None or node.value is Ellipsis:
            return None
        if isinstance(node.value, str):
            head = node.value.split("[", 1)[0].strip().rsplit(".", 1)[-1]
            return _head_problem(head, project_classes)
        return None
    if isinstance(node, ast.Subscript):
        head = _annotation_head(node.value) or _annotation_head(node)
        problem = _head_problem(head, project_classes)
        if problem:
            return problem
        elements = node.slice
        children = (elements.elts if isinstance(elements, ast.Tuple)
                    else [elements])
        for child in children:
            problem = _annotation_problem(child, project_classes)
            if problem:
                return problem
        return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        return _head_problem(_annotation_head(node), project_classes)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # PEP 604 unions: X | Y
        return (_annotation_problem(node.left, project_classes)
                or _annotation_problem(node.right, project_classes))
    return None


def _head_problem(head: Optional[str],
                  project_classes: Set[str]) -> Optional[str]:
    if head is None:
        return "annotation cannot be resolved statically"
    if head in UNPICKLABLE_LEAVES:
        return f"{head} cannot be guaranteed picklable"
    if head in PICKLABLE_LEAVES or head in PICKLABLE_CONTAINERS:
        return None
    if head in project_classes:
        return None
    return f"unknown type {head!r} cannot be verified picklable"


def check_spec_pickle(module: ModuleInfo,
                      project_classes: Set[str]) -> List[Finding]:
    """*Spec dataclasses must have statically picklable fields."""
    findings: List[Finding] = []
    for info in module.classes.values():
        if not (info.is_dataclass and info.name.endswith("Spec")):
            continue
        for item in info.node.body:
            if not isinstance(item, ast.AnnAssign):
                continue
            if not isinstance(item.target, ast.Name):
                continue
            problem = _annotation_problem(item.annotation, project_classes)
            if problem is None:
                continue
            findings.append(_finding(
                module, item, "spec-pickle",
                f"{info.name}.{item.target.id}: {problem} (specs are "
                f"pickled into process workers)"))
    return findings
