"""Lint run configuration: targets, tiers, baseline, rule selection.

Severity works in two layers: each rule has a default severity
(:mod:`repro.lint.rules`), and each analyzed tree has a *tier*.  The
``error`` tier keeps rule defaults; the ``warn`` tier demotes every
finding to a warning — that is how ``benchmarks/`` and ``scripts/`` are
lint-visible (drift is reported) without being CI-blocking.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.lint.contracts import DEFAULT_CONTRACTS
from repro.lint.rules import RULES, SEVERITY_ERROR, SEVERITY_WARN, WORKER_ROOTS

#: Default analysis targets relative to the repo root, with their tiers.
DEFAULT_TARGETS: Tuple[Tuple[str, str], ...] = (
    (os.path.join("src", "repro"), SEVERITY_ERROR),
    ("benchmarks", SEVERITY_WARN),
    ("scripts", SEVERITY_WARN),
)

#: Path fragments that select the warn tier when paths are given
#: explicitly on the command line.
WARN_TIER_FRAGMENTS = ("benchmarks", "scripts")

BASELINE_FILENAME = "lint-baseline.json"


def find_repo_root(start: str) -> Optional[str]:
    """Walk upward from ``start`` to the directory with pyproject.toml."""
    current = os.path.abspath(start)
    if os.path.isfile(current):
        current = os.path.dirname(current)
    while True:
        if os.path.exists(os.path.join(current, "pyproject.toml")):
            return current
        parent = os.path.dirname(current)
        if parent == current:
            return None
        current = parent


def tier_for_path(path: str) -> str:
    """The tier of an explicitly given path (warn for perf harnesses)."""
    normalized = os.path.normpath(path).replace(os.sep, "/")
    parts = normalized.split("/")
    return (SEVERITY_WARN
            if any(fragment in parts for fragment in WARN_TIER_FRAGMENTS)
            else SEVERITY_ERROR)


@dataclass
class LintConfig:
    """One lint invocation's resolved configuration."""

    #: (path, tier) pairs to analyze.
    targets: Tuple[Tuple[str, str], ...] = ()
    #: Baseline file (None disables baseline matching).
    baseline_path: Optional[str] = None
    #: Rule ids to run (default: all registered rules).
    selected_rules: Tuple[str, ...] = tuple(r.rule_id for r in RULES)
    #: Reachability roots of the shared-mutation rule.
    worker_roots: Tuple[str, ...] = WORKER_ROOTS
    #: Resource-lifetime contracts seeding the flow-sensitive rules.
    #: Each codec additionally registers itself via a module-level
    #: ``LINT_RESOURCE_CONTRACT`` literal, merged at analysis time.
    contracts: Tuple[object, ...] = DEFAULT_CONTRACTS
    #: Extra per-rule disables keyed by path fragment (reserved).
    overrides: Dict[str, str] = field(default_factory=dict)

    def rule_enabled(self, rule_id: str) -> bool:
        """True when the rule participates in this run."""
        return rule_id in self.selected_rules

    @classmethod
    def for_paths(cls, paths: Sequence[str],
                  baseline_path: Optional[str] = None,
                  use_baseline: bool = True,
                  selected_rules: Optional[Sequence[str]] = None,
                  worker_roots: Optional[Sequence[str]] = None,
                  ) -> "LintConfig":
        """Resolve a config for explicit or defaulted targets.

        Without ``paths`` the repo root is located from the working
        directory and the default targets (src/repro at error tier,
        benchmarks+scripts at warn tier) are used.  The baseline defaults
        to ``<repo-root>/lint-baseline.json`` when present.
        """
        targets: Tuple[Tuple[str, str], ...]
        if paths:
            targets = tuple((path, tier_for_path(path)) for path in paths)
            root = find_repo_root(paths[0]) or find_repo_root(os.getcwd())
        else:
            root = find_repo_root(os.getcwd())
            if root is None:
                raise FileNotFoundError(
                    "cannot locate the repo root (pyproject.toml) from "
                    f"{os.getcwd()}; pass explicit paths")
            targets = tuple((os.path.join(root, rel), tier)
                            for rel, tier in DEFAULT_TARGETS
                            if os.path.exists(os.path.join(root, rel)))
        if use_baseline and baseline_path is None and root is not None:
            candidate = os.path.join(root, BASELINE_FILENAME)
            if os.path.exists(candidate):
                baseline_path = candidate
        if not use_baseline:
            baseline_path = None
        config = cls(targets=targets, baseline_path=baseline_path)
        if selected_rules is not None:
            config.selected_rules = tuple(selected_rules)
        if worker_roots is not None:
            config.worker_roots = tuple(worker_roots)
        return config
