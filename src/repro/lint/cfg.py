"""Per-function control-flow graphs for the flow-sensitive rules.

One :class:`CFG` is built per function body.  Nodes are individual
statements (compound statements contribute a header node plus the nodes
of their bodies); edges are *normal* successors plus *exceptional*
successors for statements that can raise.  Two synthetic sinks exist:
``exit`` (the function returns or falls off the end) and ``raise_exit``
(an exception escapes the function).

``try``/``finally`` is modeled by duplication, the standard lowering:
the ``finally`` body is rebuilt as a fresh subgraph for each way control
can enter it (normal completion, exception propagation, and each abrupt
``return``/``break``/``continue`` that unwinds through it), so a release
that lives in a ``finally`` block is present on *every* path out of the
``try`` — exactly the property the resource rules check.  ``with``
blocks participate in the same unwinding: a synthetic ``with-exit`` node
is placed on every path out of the block, which is where the dataflow
interpreter releases context-managed resources.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

#: Node kinds.  "stmt" carries one simple statement; the compound
#: headers keep their AST node so the interpreter can read tests,
#: iterators, and with-items without re-walking the tree.
KIND_ENTRY = "entry"
KIND_EXIT = "exit"
KIND_RAISE_EXIT = "raise-exit"
KIND_STMT = "stmt"
KIND_BRANCH = "branch"        # If / Match header
KIND_LOOP = "loop"            # While / For header
KIND_WITH = "with"            # With header (context exprs evaluated)
KIND_WITH_EXIT = "with-exit"  # __exit__ runs here (on every path out)
KIND_JOIN = "join"            # synthetic merge point
KIND_EXCEPT = "except"        # exception dispatch for a try's handlers


@dataclass
class CFGNode:
    """One node: a statement or a synthetic control point."""

    index: int
    kind: str
    stmt: Optional[ast.AST] = None
    succ: List[int] = field(default_factory=list)
    exc: List[int] = field(default_factory=list)
    #: For If/While headers: which successor the true/false outcome of
    #: the test takes (None when indistinguishable).  Lets the dataflow
    #: interpreter prune facts on ``x is None`` style guards.
    true_succ: Optional[int] = None
    false_succ: Optional[int] = None

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0) if self.stmt is not None else 0


@dataclass
class CFG:
    """The graph: node table plus the three distinguished nodes."""

    nodes: List[CFGNode]
    entry: int
    exit: int
    raise_exit: int

    def node(self, index: int) -> CFGNode:
        return self.nodes[index]

    def predecessors(self, index: int) -> List[Tuple[int, bool]]:
        """(pred index, via-exception?) pairs for one node."""
        preds: List[Tuple[int, bool]] = []
        for node in self.nodes:
            if index in node.succ:
                preds.append((node.index, False))
            if index in node.exc:
                preds.append((node.index, True))
        return preds


def can_raise(node: Optional[ast.AST]) -> bool:
    """Conservatively, can evaluating this expression/statement raise?

    Restricted to calls (and awaits) so straight-line attribute access
    does not flood the graph with exceptional edges; ``raise`` and
    ``assert`` are handled structurally by the builder.
    """
    if node is None:
        return False
    return any(isinstance(sub, (ast.Call, ast.Await))
               for sub in ast.walk(node))


def _catches_everything(handlers: Sequence[ast.excepthandler]) -> bool:
    """True when one handler is ``except:`` or catches BaseException."""
    for handler in handlers:
        if handler.type is None:
            return True
        head = handler.type
        if isinstance(head, ast.Attribute):
            name = head.attr
        elif isinstance(head, ast.Name):
            name = head.id
        else:
            continue
        if name == "BaseException":
            return True
    return False


@dataclass
class _Frame:
    """One entry of the enclosing-construct stack (innermost last)."""

    kind: str                          # "loop" | "finally" | "with"
    # loop frames:
    head: int = -1
    after: int = -1
    # finally frames:
    finalbody: Tuple[ast.stmt, ...] = ()
    outer_exc: int = -1
    # with frames:
    stmt: Optional[ast.AST] = None


class _Builder:
    def __init__(self, body: Sequence[ast.stmt]) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self._new(KIND_ENTRY)
        self.exit = self._new(KIND_EXIT)
        self.raise_exit = self._new(KIND_RAISE_EXIT)
        self.exc_target = self.raise_exit
        self.frames: List[_Frame] = []
        cursor = self._body(body, self.entry)
        if cursor is not None:
            self._edge(cursor, self.exit)

    def build(self) -> CFG:
        return CFG(nodes=self.nodes, entry=self.entry, exit=self.exit,
                   raise_exit=self.raise_exit)

    # -------------------------------------------------------------- #
    # Graph primitives

    def _new(self, kind: str, stmt: Optional[ast.AST] = None) -> int:
        node = CFGNode(index=len(self.nodes), kind=kind, stmt=stmt)
        self.nodes.append(node)
        return node.index

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succ:
            self.nodes[src].succ.append(dst)

    def _exc_edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].exc:
            self.nodes[src].exc.append(dst)

    # -------------------------------------------------------------- #
    # Statement lowering.  Each method threads a *cursor*: the node
    # whose normal successor is the next statement (None after a jump).

    def _body(self, stmts: Sequence[ast.stmt],
              cursor: Optional[int]) -> Optional[int]:
        for stmt in stmts:
            cursor = self._stmt(stmt, cursor)
        return cursor

    def _simple(self, stmt: ast.stmt, cursor: Optional[int],
                raises: Optional[bool] = None) -> int:
        node = self._new(KIND_STMT, stmt)
        if cursor is not None:
            self._edge(cursor, node)
        if raises if raises is not None else can_raise(stmt):
            self._exc_edge(node, self.exc_target)
        return node

    def _stmt(self, stmt: ast.stmt,
              cursor: Optional[int]) -> Optional[int]:
        if isinstance(stmt, ast.Return):
            node = self._simple(stmt, cursor, raises=can_raise(stmt.value))
            tail = self._unwind(node, upto=0)
            self._edge(tail, self.exit)
            return None
        if isinstance(stmt, ast.Raise):
            node = self._new(KIND_STMT, stmt)
            if cursor is not None:
                self._edge(cursor, node)
            self._exc_edge(node, self.exc_target)
            return None
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return self._break_continue(stmt, cursor)
        if isinstance(stmt, ast.If):
            return self._if(stmt, cursor)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, cursor)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, cursor)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, cursor)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, cursor)
        if isinstance(stmt, ast.Assert):
            return self._simple(stmt, cursor, raises=True)
        return self._simple(stmt, cursor)

    # -------------------------------------------------------------- #
    # Abrupt jumps: route through every finally/with between the jump
    # and its target, innermost first (the runtime unwinding order).

    def _unwind(self, cursor: int, upto: int) -> int:
        for frame in reversed(self.frames[upto:]):
            if frame.kind == "finally":
                cursor = self._inline_finally(frame, cursor)
            elif frame.kind == "with":
                node = self._new(KIND_WITH_EXIT, frame.stmt)
                self._edge(cursor, node)
                cursor = node
        return cursor

    def _inline_finally(self, frame: _Frame, cursor: int) -> int:
        saved_exc, saved_frames = self.exc_target, self.frames
        self.exc_target = frame.outer_exc
        self.frames = saved_frames[:saved_frames.index(frame)]
        try:
            join = self._new(KIND_JOIN)
            self._edge(cursor, join)
            tail = self._body(list(frame.finalbody), join)
            if tail is None:       # finally itself jumps/raises
                tail = self._new(KIND_JOIN)
        finally:
            self.exc_target, self.frames = saved_exc, saved_frames
        return tail

    def _break_continue(self, stmt: ast.stmt,
                        cursor: Optional[int]) -> Optional[int]:
        node = self._new(KIND_STMT, stmt)
        if cursor is not None:
            self._edge(cursor, node)
        for depth in range(len(self.frames) - 1, -1, -1):
            frame = self.frames[depth]
            if frame.kind == "loop":
                tail = self._unwind(node, upto=depth + 1)
                target = (frame.after if isinstance(stmt, ast.Break)
                          else frame.head)
                self._edge(tail, target)
                return None
        return None  # break/continue outside a loop: malformed, drop

    # -------------------------------------------------------------- #
    # Compound statements

    def _if(self, stmt: ast.If, cursor: Optional[int]) -> Optional[int]:
        head = self._new(KIND_BRANCH, stmt)
        if cursor is not None:
            self._edge(cursor, head)
        if can_raise(stmt.test):
            self._exc_edge(head, self.exc_target)
        join = self._new(KIND_JOIN)
        then_tail = self._body(stmt.body, head)
        head_node = self.nodes[head]
        true_entry = head_node.succ[0] if head_node.succ else None
        if stmt.orelse:
            else_tail = self._body(stmt.orelse, head)
            if else_tail is not None:
                self._edge(else_tail, join)
        else:
            self._edge(head, join)
        if then_tail is not None:
            self._edge(then_tail, join)
        false_entry = next((succ for succ in head_node.succ
                            if succ != true_entry), None)
        if true_entry is not None and false_entry is not None:
            head_node.true_succ = true_entry
            head_node.false_succ = false_entry
        return join

    def _loop(self, stmt: Union[ast.While, ast.For, ast.AsyncFor],
              cursor: Optional[int]) -> Optional[int]:
        head = self._new(KIND_LOOP, stmt)
        if cursor is not None:
            self._edge(cursor, head)
        condition = stmt.test if isinstance(stmt, ast.While) else stmt.iter
        if can_raise(condition):
            self._exc_edge(head, self.exc_target)
        after = self._new(KIND_JOIN)
        self.frames.append(_Frame(kind="loop", head=head, after=after))
        try:
            body_tail = self._body(stmt.body, head)
        finally:
            self.frames.pop()
        head_node = self.nodes[head]
        true_entry = head_node.succ[0] if head_node.succ else None
        if body_tail is not None:
            self._edge(body_tail, head)
        if stmt.orelse:
            else_tail = self._body(stmt.orelse, head)
            if else_tail is not None:
                self._edge(else_tail, after)
        else:
            self._edge(head, after)
        false_entry = next((succ for succ in head_node.succ
                            if succ != true_entry), None)
        if isinstance(stmt, ast.While) and true_entry is not None \
                and false_entry is not None:
            head_node.true_succ = true_entry
            head_node.false_succ = false_entry
        return after

    def _try(self, stmt: ast.Try, cursor: Optional[int]) -> Optional[int]:
        outer_exc = self.exc_target
        frame: Optional[_Frame] = None
        if stmt.finalbody:
            # Exception-propagation copy of finally: runs with the
            # exception pending, then propagation resumes outward.
            exc_entry = self._new(KIND_JOIN)
            tail = self._with_context(outer_exc, len(self.frames),
                                      stmt.finalbody, exc_entry)
            if tail is not None:
                self._edge(tail, outer_exc)
            frame = _Frame(kind="finally",
                           finalbody=tuple(stmt.finalbody),
                           outer_exc=outer_exc)
            self.frames.append(frame)
            propagate = exc_entry
        else:
            propagate = outer_exc

        dispatch: Optional[int] = None
        if stmt.handlers:
            dispatch = self._new(KIND_EXCEPT, stmt)
        body_exc = dispatch if dispatch is not None else propagate

        saved = self.exc_target
        self.exc_target = body_exc
        try:
            body_tail = self._body(stmt.body, cursor)
            if stmt.orelse:
                # else runs only on clean body completion; its
                # exceptions skip this try's handlers.
                self.exc_target = propagate
                body_tail = self._body(stmt.orelse, body_tail)
        finally:
            self.exc_target = saved

        handler_tails: List[Optional[int]] = []
        if dispatch is not None:
            saved = self.exc_target
            self.exc_target = propagate
            try:
                for handler in stmt.handlers:
                    handler_tails.append(self._body(handler.body, dispatch))
            finally:
                self.exc_target = saved
            if not _catches_everything(stmt.handlers):
                self._edge(dispatch, propagate)

        if frame is not None:
            self.frames.pop()

        # Normal-completion paths feed one shared finally copy (or a
        # plain join when there is no finally).
        tails = [body_tail] + handler_tails
        live = [tail for tail in tails if tail is not None]
        if not live:
            return None
        join = self._new(KIND_JOIN)
        for tail in live:
            self._edge(tail, join)
        if stmt.finalbody:
            return self._with_context(outer_exc, len(self.frames),
                                      stmt.finalbody, join)
        return join

    def _with_context(self, exc_target: int, depth: int,
                      body: Sequence[ast.stmt],
                      cursor: Optional[int]) -> Optional[int]:
        """Build a body copy under a temporary (exc target, frame) scope."""
        saved_exc, saved_frames = self.exc_target, self.frames
        self.exc_target = exc_target
        self.frames = saved_frames[:depth]
        try:
            return self._body(list(body), cursor)
        finally:
            self.exc_target, self.frames = saved_exc, saved_frames

    def _with(self, stmt: Union[ast.With, ast.AsyncWith],
              cursor: Optional[int]) -> Optional[int]:
        head = self._new(KIND_WITH, stmt)
        if cursor is not None:
            self._edge(cursor, head)
        if any(can_raise(item.context_expr) for item in stmt.items):
            self._exc_edge(head, self.exc_target)
        frame = _Frame(kind="with", stmt=stmt)
        self.frames.append(frame)
        try:
            body_tail = self._body(stmt.body, head)
        finally:
            self.frames.pop()
        if body_tail is None:
            return None
        node = self._new(KIND_WITH_EXIT, stmt)
        self._edge(body_tail, node)
        return node

    def _match(self, stmt: ast.Match,
               cursor: Optional[int]) -> Optional[int]:
        head = self._new(KIND_BRANCH, stmt)
        if cursor is not None:
            self._edge(cursor, head)
        if can_raise(stmt.subject):
            self._exc_edge(head, self.exc_target)
        join = self._new(KIND_JOIN)
        self._edge(head, join)  # no case may match
        for case in stmt.cases:
            tail = self._body(case.body, head)
            if tail is not None:
                self._edge(tail, join)
        return join


def build_cfg(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> CFG:
    """The control-flow graph of one function body."""
    return _Builder(func.body).build()
