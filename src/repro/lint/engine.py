"""Analysis orchestration: file collection, call graph, finding pipeline.

The engine parses every target file into a
:class:`~repro.lint.visitor.ModuleInfo`, runs the per-module checks, then
runs the one cross-module rule — **shared-mutation** — by building a
conservative call graph from the configured worker roots:

* bare-name calls resolve to same-module or from-imported functions,
* ``self.method()`` resolves within the owning class,
* ``self.attr.method()`` and ``param.method()`` resolve through the
  attribute/parameter type inferred from ``__init__`` assignments and
  annotations,
* as a last resort, a method name defined by exactly one project class
  resolves to that class (unique-method fallback).

Constructors are not followed (object construction happens before the
worker fan-out), and module-global rebinding is out of scope by design:
process-pool workers own their module globals per process.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.checks import (
    check_clock_and_entropy,
    check_fs_order,
    check_iter_order,
    check_spec_pickle,
)
from repro.lint.config import LintConfig
from repro.lint.contracts import build_registry
from repro.lint.dataflow import check_atomic_writes, check_resource_lifetimes
from repro.lint.report import Baseline, Finding, sort_findings
from repro.lint.rules import (
    LOCK_TYPES,
    MUTATOR_METHODS,
    RULES_BY_ID,
    SANCTIONED_IMPL_FILES,
    SANCTIONED_MUTABLE_TYPES,
    SEVERITY_WARN,
    THREAD_LOCAL_TYPES,
)
from repro.lint.visitor import (
    ClassInfo,
    ModuleInfo,
    _annotation_head,
    build_module,
)

#: (module, class-or-None, function) — identity of one function body.
FuncKey = Tuple[str, Optional[str], str]


def module_name_for(path: str) -> str:
    """Dotted module name of a file path (src-rooted when possible)."""
    normalized = os.path.normpath(path).replace(os.sep, "/")
    if normalized.endswith(".py"):
        normalized = normalized[:-3]
    parts = [part for part in normalized.split("/") if part not in ("", ".")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<module>"


def collect_files(targets: Iterable[Tuple[str, str]]) -> List[Tuple[str, str]]:
    """Expand (path, tier) targets into a sorted list of .py files."""
    files: List[Tuple[str, str]] = []
    seen: Set[str] = set()
    for target, tier in targets:
        if os.path.isfile(target):
            candidates = [target]
        elif os.path.isdir(target):
            candidates = []
            for root, dirs, names in sorted(os.walk(target)):
                dirs.sort()
                for name in sorted(names):
                    if name.endswith(".py"):
                        candidates.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(f"lint target does not exist: {target}")
        for path in candidates:
            normalized = os.path.normpath(path)
            if normalized not in seen:
                seen.add(normalized)
                files.append((normalized, tier))
    return files


# --------------------------------------------------------------------- #
# Call graph / shared-mutation

class _CallGraph:
    """Conservative project call graph rooted at the worker surface."""

    def __init__(self, modules: Dict[str, ModuleInfo]) -> None:
        self._modules = modules
        #: class name -> (modname, ClassInfo); ambiguous names dropped.
        self._classes: Dict[str, Tuple[str, ClassInfo]] = {}
        ambiguous: Set[str] = set()
        #: method name -> defining classes (for the unique-method fallback)
        self._method_owners: Dict[str, List[Tuple[str, str]]] = {}
        for modname, module in modules.items():
            for cls in module.classes.values():
                if cls.name in self._classes or cls.name in ambiguous:
                    ambiguous.add(cls.name)
                    self._classes.pop(cls.name, None)
                    continue
                self._classes[cls.name] = (modname, cls)
        for modname, module in modules.items():
            for cls in module.classes.values():
                for method in cls.methods:
                    self._method_owners.setdefault(method, []).append(
                        (modname, cls.name))

    def resolve_roots(self, roots: Sequence[str]) -> List[FuncKey]:
        keys: List[FuncKey] = []
        for root in roots:
            for modname, module in self._modules.items():
                if not root.startswith(modname + "."):
                    continue
                rest = root[len(modname) + 1:].split(".")
                if len(rest) == 1 and rest[0] in module.functions:
                    keys.append((modname, None, rest[0]))
                elif (len(rest) == 2 and rest[0] in module.classes
                        and rest[1] in module.classes[rest[0]].methods):
                    keys.append((modname, rest[0], rest[1]))
        return keys

    def function_node(self, key: FuncKey) -> Optional[ast.FunctionDef]:
        modname, clsname, name = key
        module = self._modules.get(modname)
        if module is None:
            return None
        if clsname is None:
            return module.functions.get(name)
        cls = module.classes.get(clsname)
        return cls.methods.get(name) if cls else None

    def owner(self, key: FuncKey) -> Tuple[Optional[ModuleInfo],
                                           Optional[ClassInfo]]:
        module = self._modules.get(key[0])
        cls = module.classes.get(key[1]) if (module and key[1]) else None
        return module, cls

    # -------------------------------------------------------------- #

    def _param_types(self, func: ast.FunctionDef) -> Dict[str, str]:
        types: Dict[str, str] = {}
        args = func.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            if arg.annotation is not None:
                head = _annotation_head(arg.annotation)
                if head:
                    types[arg.arg] = head
        return types

    def _class_method_key(self, type_name: Optional[str],
                          method: str) -> Optional[FuncKey]:
        if type_name is None:
            return None
        entry = self._classes.get(type_name)
        if entry is None:
            return None
        modname, cls = entry
        if method in cls.methods:
            return (modname, cls.name, method)
        return None

    def edges_from(self, key: FuncKey) -> List[FuncKey]:
        func = self.function_node(key)
        if func is None:
            return []
        module, cls = self.owner(key)
        assert module is not None
        param_types = self._param_types(func)
        edges: List[FuncKey] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            if isinstance(target, ast.Name):
                name = target.id
                if name in module.functions:
                    edges.append((module.modname, None, name))
                elif name in module.from_imports:
                    source_mod, attr = module.from_imports[name]
                    other = self._modules.get(source_mod)
                    if other is not None and attr in other.functions:
                        edges.append((source_mod, None, attr))
                continue
            if not isinstance(target, ast.Attribute):
                continue
            method = target.attr
            receiver = target.value
            if isinstance(receiver, ast.Name) and receiver.id == "self" and cls:
                if method in cls.methods:
                    edges.append((module.modname, cls.name, method))
                continue
            # Receiver type via parameter annotation or self-attr type.
            type_name: Optional[str] = None
            if isinstance(receiver, ast.Name):
                type_name = param_types.get(receiver.id)
                if type_name is None:
                    if receiver.id in module.import_aliases:
                        # module.function() style call.  A module receiver
                        # is never a project method call, so resolve it as
                        # a function or not at all — without the continue,
                        # the unique-method fallback below would alias
                        # stdlib calls (os.remove) onto same-named project
                        # methods (Headers.remove).
                        dotted = module.dotted_name(target)
                        if dotted is not None and "." in dotted:
                            source_mod, attr = dotted.rsplit(".", 1)
                            other = self._modules.get(source_mod)
                            if other is not None and attr in other.functions:
                                edges.append((source_mod, None, attr))
                        continue
            elif (isinstance(receiver, ast.Attribute)
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id == "self" and cls):
                type_name = cls.attr_types.get(receiver.attr)
            resolved = self._class_method_key(type_name, method)
            if resolved is not None:
                edges.append(resolved)
                continue
            if type_name is None and not method.startswith("__"):
                owners = self._method_owners.get(method, [])
                if len(owners) == 1:
                    edges.append((owners[0][0], owners[0][1], method))
        return edges

    def reachable(self, roots: Sequence[str]) -> Set[FuncKey]:
        frontier = self.resolve_roots(roots)
        seen: Set[FuncKey] = set(frontier)
        while frontier:
            key = frontier.pop()
            for edge in self.edges_from(key):
                if edge not in seen:
                    seen.add(edge)
                    frontier.append(edge)
        return seen


def _self_attr(node: ast.AST) -> Optional[str]:
    """The X of a ``self.X`` expression, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


class _MutationScanner:
    """Flags unsanctioned self-state mutation in one reachable method."""

    def __init__(self, module: ModuleInfo, cls: ClassInfo) -> None:
        self._module = module
        self._cls = cls
        self._sanctioned = (set(cls.sanctioned_attrs())
                            | {attr for attr, type_name
                               in cls.attr_types.items()
                               if type_name in THREAD_LOCAL_TYPES})
        self._locks = set(cls.lock_attrs())
        self.findings: List[Finding] = []

    def scan(self, func: ast.FunctionDef) -> List[Finding]:
        for statement in func.body:
            self._visit(statement, locked=False)
        return self.findings

    # -------------------------------------------------------------- #

    def _visit(self, node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With):
            guards = any(
                _self_attr(item.context_expr) in self._locks
                for item in node.items)
            for item in node.items:
                self._visit(item.context_expr, locked)
            for child in node.body:
                self._visit(child, locked or guards)
            return
        self._check(node, locked)
        for child in ast.iter_child_nodes(node):
            self._visit(child, locked)

    def _check(self, node: ast.AST, locked: bool) -> None:
        if locked:
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._check_target(node, target)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._check_target(node, node.target)
        elif isinstance(node, ast.AugAssign):
            self._check_target(node, node.target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._check_target(node, target)
        elif isinstance(node, ast.Call):
            self._check_mutator_call(node)

    def _check_target(self, statement: ast.AST, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(statement, element)
            return
        attr = _self_attr(target)
        if attr is not None:
            self._flag(statement, attr,
                       f"rebinding self.{attr} on the worker path")
            return
        if isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
            if attr is not None and attr not in self._sanctioned:
                self._flag(statement, attr,
                           f"writing self.{attr}[...] on the worker path")

    def _check_mutator_call(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in MUTATOR_METHODS:
            return
        attr = _self_attr(func.value)
        if attr is None or attr in self._sanctioned:
            return
        self._flag(node, attr,
                   f"calling self.{attr}.{func.attr}(...) on the worker "
                   f"path")

    def _flag(self, node: ast.AST, attr: str, what: str) -> None:
        line = getattr(node, "lineno", 1)
        self.findings.append(Finding(
            path=self._module.path,
            line=line,
            column=getattr(node, "col_offset", 0) + 1,
            rule_id="shared-mutation",
            severity=RULES_BY_ID["shared-mutation"].severity,
            message=(f"{what}: {self._cls.name} state is shared across "
                     f"scan workers; use ShardedCounter/LRUCache/MemoDict, "
                     f"guard with a lock attribute, or declare the class "
                     f"# lint: confined(<reason>)"),
            line_text=self._module.line_text(line),
        ))


def check_shared_mutation(modules: Dict[str, ModuleInfo],
                          roots: Sequence[str]) -> List[Finding]:
    """The cross-module concurrency-purity rule."""
    graph = _CallGraph(modules)
    findings: List[Finding] = []
    for key in sorted(graph.reachable(roots),
                      key=lambda k: (k[0], k[1] or "", k[2])):
        module, cls = graph.owner(key)
        if module is None or cls is None or cls.confined:
            continue
        normalized = module.path.replace("\\", "/")
        if normalized.endswith(SANCTIONED_IMPL_FILES):
            continue
        func = graph.function_node(key)
        if func is None or func.name == "__init__":
            continue
        findings.extend(_MutationScanner(module, cls).scan(func))
    return findings


# --------------------------------------------------------------------- #
# Pipeline

def analyze_sources(items: Sequence[Tuple[str, str, str]],
                    config: Optional[LintConfig] = None) -> List[Finding]:
    """Analyze (path, tier, source) triples; the core of the linter."""
    config = config or LintConfig()
    parsed: List[ModuleInfo] = []
    #: first-wins modname index for cross-module (call graph) resolution;
    #: src/repro is listed first in the default targets, so it wins.
    modules: Dict[str, ModuleInfo] = {}
    tiers: Dict[str, str] = {}
    findings: List[Finding] = []
    for path, tier, source in items:
        tiers[path] = tier
        try:
            module = build_module(path, module_name_for(path), source)
        except SyntaxError as exc:
            findings.append(Finding(
                path=path, line=exc.lineno or 1, column=(exc.offset or 0) + 1,
                rule_id="parse-error", severity="error",
                message=f"cannot parse: {exc.msg}"))
            continue
        parsed.append(module)
        modules.setdefault(module.modname, module)

    project_classes: Set[str] = set()
    for module in parsed:
        project_classes.update(module.classes)

    module_by_path = {module.path: module for module in parsed}
    for module in parsed:
        if config.rule_enabled("wall-clock") \
                or config.rule_enabled("raw-entropy") \
                or config.rule_enabled("global-random"):
            for finding in check_clock_and_entropy(module):
                if config.rule_enabled(finding.rule_id):
                    findings.append(finding)
        if config.rule_enabled("fs-order"):
            findings.extend(check_fs_order(module))
        if config.rule_enabled("iter-order"):
            findings.extend(check_iter_order(module))
        if config.rule_enabled("spec-pickle"):
            findings.extend(check_spec_pickle(module, project_classes))
    if config.rule_enabled("shared-mutation"):
        findings.extend(check_shared_mutation(modules, config.worker_roots))

    # Flow-sensitive resource-lifetime families: merge the configured
    # contracts with the ones each codec module declares, then run the
    # CFG/dataflow pass per module.
    lifetime_rules = ("resource-leak", "release-guard", "buffer-escape")
    if any(config.rule_enabled(rule) for rule in lifetime_rules) \
            or config.rule_enabled("atomic-write"):
        registry = build_registry(config.contracts,
                                  (module.tree for module in parsed))
        for module in parsed:
            if any(config.rule_enabled(rule) for rule in lifetime_rules):
                findings.extend(
                    finding
                    for finding in check_resource_lifetimes(module, registry)
                    if config.rule_enabled(finding.rule_id))
            if config.rule_enabled("atomic-write"):
                findings.extend(check_atomic_writes(module, registry))

    for finding in findings:
        module = module_by_path.get(finding.path)
        if module is not None:
            directive = module.allow_for(finding.line, finding.rule_id)
            if directive is not None:
                directive.used = True
                finding.suppressed = True
                finding.suppress_reason = directive.reason
        if tiers.get(finding.path) == SEVERITY_WARN:
            finding.severity = SEVERITY_WARN

    if config.baseline_path is not None:
        Baseline.load(config.baseline_path).apply(findings)
    return sort_findings(findings)


def analyze_paths(config: LintConfig) -> List[Finding]:
    """Collect files from the config's targets and analyze them."""
    items: List[Tuple[str, str, str]] = []
    for path, tier in collect_files(config.targets):
        with open(path, "r", encoding="utf-8") as handle:
            items.append((path, tier, handle.read()))
    return analyze_sources(items, config)
