"""Per-module AST indexing: imports, classes, comments, name resolution.

One :class:`ModuleInfo` is built per analyzed file.  It carries everything
the checks need without re-walking the tree: parent links on every node,
canonical dotted-name resolution through import aliases, the class index
(methods, attribute types inferred from ``__init__``, lock attributes),
and the comment directives (``allow`` suppressions, ``ordered`` order
guarantees, ``confined`` class declarations) read via ``tokenize`` so
string literals can never masquerade as directives.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lint.rules import LOCK_TYPES, SANCTIONED_MUTABLE_TYPES, THREAD_LOCAL_TYPES

#: ``# lint: allow(rule-id: reason)`` / ``# lint: ordered(reason)`` /
#: ``# lint: confined(reason)`` / ``# lint: handoff(reason)``
#:
#: ``handoff`` is a *semantic annotation*, not a suppression: it tells
#: the resource-lifetime dataflow that the call on this line transfers
#: ownership of the handle to the callee (which then owes the release).
_DIRECTIVE = re.compile(
    r"#\s*lint:\s*(?P<kind>allow|ordered|confined|handoff)\s*"
    r"\(\s*(?P<body>[^)]*)\s*\)")


@dataclass
class Directive:
    """One parsed lint comment directive."""

    kind: str                     # "allow" | "ordered" | "confined" | "handoff"
    line: int
    rule_id: Optional[str] = None  # allow() only
    reason: str = ""
    used: bool = False


@dataclass
class ClassInfo:
    """Summary of one class definition."""

    name: str
    node: ast.ClassDef
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: self attribute -> inferred type name (constructor or annotation).
    attr_types: Dict[str, str] = field(default_factory=dict)
    is_dataclass: bool = False
    confined: bool = False        # declared thread-confined via directive

    def lock_attrs(self) -> Tuple[str, ...]:
        """Self attributes holding lock-ish objects."""
        return tuple(attr for attr, type_name in self.attr_types.items()
                     if type_name in LOCK_TYPES)

    def sanctioned_attrs(self) -> Tuple[str, ...]:
        """Self attributes holding sanctioned concurrency primitives."""
        sanctioned = SANCTIONED_MUTABLE_TYPES | THREAD_LOCAL_TYPES
        return tuple(attr for attr, type_name in self.attr_types.items()
                     if type_name in sanctioned)


@dataclass
class ModuleInfo:
    """Everything the checks need to know about one parsed module."""

    path: str                     # display path (as given / relative)
    modname: str                  # dotted module name ("repro.cli")
    tree: ast.Module
    source_lines: List[str]
    #: local alias -> imported module ("np" -> "numpy")
    import_aliases: Dict[str, str] = field(default_factory=dict)
    #: local alias -> (module, attribute) for from-imports
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    directives: List[Directive] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Directives

    def directives_on(self, line: int, kind: str) -> List[Directive]:
        """Directives of one kind attached to a physical line."""
        return [d for d in self.directives
                if d.kind == kind and d.line == line]

    def allow_for(self, line: int, rule_id: str) -> Optional[Directive]:
        """The ``allow`` directive suppressing ``rule_id`` on ``line``."""
        for directive in self.directives_on(line, "allow"):
            if directive.rule_id == rule_id:
                return directive
        return None

    def ordered_on(self, line: int) -> Optional[Directive]:
        """The ``ordered`` guarantee documented on ``line``, if any."""
        found = self.directives_on(line, "ordered")
        return found[0] if found else None

    # ------------------------------------------------------------------ #
    # Name resolution

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or None.

        Import aliases are resolved: with ``import numpy as np`` the
        expression ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng``; with ``from time import time as t``
        the name ``t`` resolves to ``time.time``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self.from_imports:
            module, attr = self.from_imports[root]
            base = f"{module}.{attr}"
        elif root in self.import_aliases:
            base = self.import_aliases[root]
        else:
            base = root
        parts.append(base)
        return ".".join(reversed(parts))

    def line_text(self, line: int) -> str:
        """The stripped source text of a 1-based physical line."""
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""


def set_parents(tree: ast.Module) -> None:
    """Attach a ``.lint_parent`` pointer to every node."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.lint_parent = node  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    """The parent attached by :func:`set_parents` (None at the root)."""
    return getattr(node, "lint_parent", None)


def _parse_directives(source: str) -> List[Directive]:
    directives: List[Directive] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(token.start[0], token.string) for token in tokens
                    if token.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return directives
    for line, text in comments:
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        kind = match.group("kind")
        body = match.group("body").strip()
        if kind == "allow":
            rule_id, _, reason = body.partition(":")
            directives.append(Directive(kind=kind, line=line,
                                        rule_id=rule_id.strip(),
                                        reason=reason.strip()))
        else:
            directives.append(Directive(kind=kind, line=line, reason=body))
    return directives


def _annotation_head(annotation: ast.AST) -> Optional[str]:
    """The rightmost head name of an annotation node ("LRUCache",
    "Optional", ...)."""
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String (forward-reference) annotation: take the head token.
        head = annotation.value.split("[", 1)[0].strip()
        return head.rsplit(".", 1)[-1] or None
    return None


def _infer_attr_type(value: ast.AST,
                     param_types: Dict[str, str]) -> Optional[str]:
    """Infer a type name for ``self.x = <value>`` from the value expr."""
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
    if isinstance(value, ast.Name):
        return param_types.get(value.id)
    return None


def _collect_class(node: ast.ClassDef,
                   directives: List[Directive]) -> ClassInfo:
    info = ClassInfo(name=node.name, node=node)
    info.is_dataclass = any(
        (isinstance(dec, ast.Name) and dec.id == "dataclass")
        or (isinstance(dec, ast.Call) and isinstance(dec.func, ast.Name)
            and dec.func.id == "dataclass")
        or (isinstance(dec, ast.Attribute) and dec.attr == "dataclass")
        for dec in node.decorator_list)
    last_line = max((getattr(sub, "end_lineno", node.lineno) or node.lineno
                     for sub in ast.walk(node)), default=node.lineno)
    info.confined = any(d.kind == "confined"
                        and node.lineno <= d.line <= last_line
                        for d in directives)
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[item.name] = item  # type: ignore[assignment]
    for method in info.methods.values():
        param_types: Dict[str, str] = {}
        args = method.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.annotation is not None:
                head = _annotation_head(arg.annotation)
                if head:
                    param_types[arg.arg] = head
        for sub in ast.walk(method):
            target = None
            value = None
            annotation = None
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target, value = sub.targets[0], sub.value
            elif isinstance(sub, ast.AnnAssign):
                target, value, annotation = sub.target, sub.value, sub.annotation
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            type_name = None
            if annotation is not None:
                type_name = _annotation_head(annotation)
            if type_name is None and value is not None:
                type_name = _infer_attr_type(value, param_types)
            if type_name and target.attr not in info.attr_types:
                info.attr_types[target.attr] = type_name
    return info


def build_module(path: str, modname: str, source: str) -> ModuleInfo:
    """Parse one module into a :class:`ModuleInfo` (raises SyntaxError)."""
    tree = ast.parse(source, filename=path)
    set_parents(tree)
    info = ModuleInfo(path=path, modname=modname, tree=tree,
                      source_lines=source.splitlines(),
                      directives=_parse_directives(source))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                info.import_aliases[alias.asname or alias.name.split(".", 1)[0]] = (
                    alias.name if alias.asname else alias.name.split(".", 1)[0])
                if alias.asname:
                    info.import_aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports are not used in this repo
            for alias in node.names:
                info.from_imports[alias.asname or alias.name] = (
                    node.module, alias.name)
    for item in tree.body:
        if isinstance(item, ast.ClassDef):
            info.classes[item.name] = _collect_class(item, info.directives)
        elif isinstance(item, ast.FunctionDef):
            info.functions[item.name] = item
    return info
