"""repro.lint: static determinism & concurrency-purity analysis.

Every headline property of this repo — workers-invariant sharding,
checkpoint/resume byte identity, RNG-replay fast lanes, process-vs-serial
equivalence — rests on one contract: **a study is a pure function of
(seed, config)**.  The dynamic suites (hypothesis equivalence, resume
diffing) catch violations after the fact; this package rejects them at
review time by walking the AST of every module and flagging

* determinism hazards (wall-clock reads, raw entropy, the global
  ``random`` stream, unsorted filesystem enumeration, unordered iteration
  flowing into serialization sinks), and
* concurrency-purity hazards (shared ``self`` mutation reachable from the
  scan-engine worker surface outside the sanctioned primitives, and
  ``*Spec`` dataclass fields that cannot be shipped to a process worker).

The analyzer is stdlib-only (``ast`` + ``tokenize``).  See
:mod:`repro.lint.rules` for the rule registry, ``docs/METHODOLOGY.md`` for
the written contract, and ``python -m repro.lint --list-rules`` for a
summary.  Findings can be suppressed line-by-line with::

    # lint: allow(<rule-id>: <reason>)

and intentionally ordered iterations documented with::

    # lint: ordered(<reason>)
"""

from repro.lint.config import LintConfig
from repro.lint.engine import analyze_paths, analyze_sources
from repro.lint.report import Finding, render_json, render_text
from repro.lint.rules import RULES, Rule

__all__ = [
    "LintConfig",
    "analyze_paths",
    "analyze_sources",
    "Finding",
    "render_json",
    "render_text",
    "RULES",
    "Rule",
]
