"""repro.lint: static determinism, purity, and resource-lifetime analysis.

Every headline property of this repo — workers-invariant sharding,
checkpoint/resume byte identity, RNG-replay fast lanes, process-vs-serial
equivalence — rests on one contract: **a study is a pure function of
(seed, config)**.  The dynamic suites (hypothesis equivalence, resume
diffing) catch violations after the fact; this package rejects them at
review time by walking the AST of every module and flagging

* determinism hazards (wall-clock reads, raw entropy, the global
  ``random`` stream, unsorted filesystem enumeration, unordered iteration
  flowing into serialization sinks),
* concurrency-purity hazards (shared ``self`` mutation reachable from the
  scan-engine worker surface outside the sanctioned primitives, and
  ``*Spec`` dataclass fields that cannot be shipped to a process worker),
* resource-lifetime hazards, checked flow-sensitively over a per-function
  control-flow graph (:mod:`repro.lint.cfg`) by an abstract interpreter
  (:mod:`repro.lint.dataflow`) against declarative acquire/release
  contracts (:mod:`repro.lint.contracts`): handles leaked on a branch
  (``resource-leak``), releases that are not exception-safe
  (``release-guard``), mapped-buffer views escaping ``close()``
  (``buffer-escape``), and checkpoint writes bypassing the atomic
  temp-then-rename writers (``atomic-write``).

The analyzer is stdlib-only (``ast`` + ``tokenize``).  See
:mod:`repro.lint.rules` for the rule registry, ``docs/METHODOLOGY.md`` for
the written contract, ``python -m repro.lint --list-rules`` for a summary,
and ``python -m repro.lint --explain <RULE>`` for one rule's rationale,
an example finding, and the sanctioned fix.  Findings can be suppressed
line-by-line with::

    # lint: allow(<rule-id>: <reason>)

intentionally ordered iterations documented with::

    # lint: ordered(<reason>)

and genuine ownership transfers (the callee owes the release) annotated —
semantically, not as a suppression — with::

    # lint: handoff(<reason>)
"""

from repro.lint.cfg import CFG, build_cfg
from repro.lint.config import LintConfig
from repro.lint.contracts import (
    AtomicContract,
    BufferContract,
    ContractRegistry,
    DEFAULT_CONTRACTS,
    ResourceContract,
    build_registry,
)
from repro.lint.dataflow import check_atomic_writes, check_resource_lifetimes
from repro.lint.engine import analyze_paths, analyze_sources
from repro.lint.report import Finding, render_json, render_text
from repro.lint.rules import RULES, Rule

__all__ = [
    "AtomicContract",
    "BufferContract",
    "CFG",
    "ContractRegistry",
    "DEFAULT_CONTRACTS",
    "LintConfig",
    "ResourceContract",
    "analyze_paths",
    "analyze_sources",
    "build_cfg",
    "build_registry",
    "check_atomic_writes",
    "check_resource_lifetimes",
    "Finding",
    "render_json",
    "render_text",
    "RULES",
    "Rule",
]
