"""Command-line front end: ``python -m repro.lint`` / ``repro-geoblock lint``.

Exit codes (CI semantics)::

    0   no active error findings (warnings and baselined findings allowed)
    1   at least one active error finding
    2   usage error (bad paths, unreadable baseline)

Examples::

    python -m repro.lint                      # lint the default targets
    python -m repro.lint src/repro            # one tree, error tier
    python -m repro.lint --format json --out lint-report.json
    python -m repro.lint --write-baseline     # grandfather current findings
    python -m repro.lint --list-rules
"""

from __future__ import annotations

import argparse
import os
import sys
import traceback
from typing import List, Optional

from repro.lint.config import BASELINE_FILENAME, LintConfig, find_repo_root
from repro.lint.engine import analyze_paths
from repro.lint.report import (
    EXIT_CLEAN,
    EXIT_USAGE,
    Baseline,
    exit_code,
    render_error_json,
    render_json,
    render_text,
)
from repro.lint.rules import RULES, RULES_BY_ID


def build_parser() -> argparse.ArgumentParser:
    """The lint CLI parser (also mounted under ``repro-geoblock lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Static determinism & concurrency-purity analysis "
                    "for the repro pipeline.",
    )
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: "
                             "src/repro at the blocking error tier plus "
                             "benchmarks/ and scripts/ at the warn tier)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--out", default=None,
                        help="write the report to a file instead of stdout")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: <repo-root>/"
                             f"{BASELINE_FILENAME} when present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the baseline grandfathering every "
                             "current finding, then exit 0")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--verbose", action="store_true",
                        help="also show suppressed and baselined findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    parser.add_argument("--explain", metavar="RULE", default=None,
                        help="print one rule's rationale, an example "
                             "finding, and the sanctioned fix pattern "
                             "(including the # lint: directive "
                             "vocabulary), then exit")
    return parser


def _list_rules() -> str:
    lines = []
    for rule in RULES:
        lines.append(f"{rule.rule_id:18s} [{rule.severity}] {rule.summary}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def _indent(text: str, prefix: str = "    ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())


def _explain(rule_id: str) -> Optional[str]:
    rule = RULES_BY_ID.get(rule_id)
    if rule is None:
        return None
    sections = [
        f"{rule.rule_id} [{rule.severity}] — {rule.summary}",
        "",
        "Why:",
        _indent(rule.rationale),
    ]
    if rule.example:
        sections += ["", "Example finding:", _indent(rule.example)]
    if rule.fix:
        sections += ["", "Sanctioned fix:", _indent(rule.fix)]
    sections += [
        "",
        "Directives:",
        _indent("# lint: allow(<rule>: <reason>)   suppress one line "
                "(counted, discouraged)\n"
                "# lint: ordered(<reason>)         document a "
                "deterministic iteration order\n"
                "# lint: confined(<reason>)        declare a class "
                "thread-confined\n"
                "# lint: handoff(<reason>)         document an "
                "ownership transfer (semantic,\n"
                "                                  not a suppression: "
                "the callee owes the release)"),
    ]
    return "\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN
    if args.explain is not None:
        text = _explain(args.explain)
        if text is None:
            known = ", ".join(rule.rule_id for rule in RULES)
            print(f"repro.lint: unknown rule {args.explain!r} "
                  f"(known: {known})", file=sys.stderr)
            return EXIT_USAGE
        print(text)
        return EXIT_CLEAN

    selected = None
    if args.select:
        selected = tuple(part.strip() for part in args.select.split(",")
                         if part.strip())
    try:
        config = LintConfig.for_paths(
            args.paths,
            baseline_path=args.baseline,
            use_baseline=not (args.no_baseline or args.write_baseline),
            selected_rules=selected,
        )
        findings = analyze_paths(config)
    except FileNotFoundError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ValueError as exc:
        print(f"repro.lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except Exception as exc:  # analyzer crash: keep CI artifacts useful
        trace = traceback.format_exc()
        print(f"repro.lint: internal error: {exc}", file=sys.stderr)
        print(trace, file=sys.stderr)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(render_error_json(
                    type(exc).__name__, str(exc), trace) + "\n")
        return EXIT_USAGE

    if args.write_baseline:
        target = args.baseline
        if target is None:
            root = find_repo_root(args.paths[0] if args.paths
                                  else os.getcwd())
            if root is None:
                print("repro.lint: cannot locate repo root for the "
                      "baseline; pass --baseline", file=sys.stderr)
                return EXIT_USAGE
            target = os.path.join(root, BASELINE_FILENAME)
        Baseline.from_findings(findings).dump(target)
        print(f"baseline written to {target} "
              f"({len([f for f in findings if not f.suppressed])} "
              f"finding(s) grandfathered)")
        return EXIT_CLEAN

    if args.format == "json":
        text = render_json(findings, rule_ids=config.selected_rules)
    else:
        text = render_text(findings, verbose=args.verbose)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return exit_code(findings)


if __name__ == "__main__":
    sys.exit(main())
