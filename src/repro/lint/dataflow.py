"""Abstract interpretation of resource lifetimes over the function CFG.

The interpreter tracks, per local variable, the set of abstract facts
that may hold at each program point: a *resource fact* (handle acquired
at line L under contract C, currently acquired / released / handed off /
context-managed) or a *view fact* (value derived from a mapped buffer
acquired at line L).  States are joined by union at merge points and the
worklist iterates to a fixpoint, so branches, loops, and the duplicated
``finally`` bodies from :mod:`repro.lint.cfg` are all walked path-
sensitively.

Four rule families are evaluated on the fixpoint:

* ``resource-leak`` — some path reaches the function exit (or rebinds
  the variable) with the handle still acquired.
* ``release-guard`` — every fall-through path releases, but an
  exceptional path escapes the function with the handle acquired: the
  release is not ``finally``-guarded.
* ``buffer-escape`` — a view derived from a mapped buffer is stored to
  ``self``/globals/a closure or returned without a copy, and the buffer
  is closed within the function, leaving the escapee dangling.
* ``atomic-write`` — a write-mode open of a checkpoint/manifest path
  that bypasses the temp-then-rename writers, or a temp file that is
  never renamed into place.

Ownership handoffs are recognized structurally (``return handle``,
``self.attr = handle``, contract-listed handoff functions) or documented
with a ``# lint: handoff(reason)`` directive — a semantic annotation,
not a suppression.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from dataclasses import dataclass, replace
from typing import (
    Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union,
)

from repro.lint.cfg import (
    CFG,
    KIND_BRANCH,
    KIND_LOOP,
    KIND_STMT,
    KIND_WITH,
    KIND_WITH_EXIT,
    build_cfg,
)
from repro.lint.contracts import (
    COPY_CALLS,
    BufferContract,
    ContractRegistry,
    ResourceContract,
)
from repro.lint.report import Finding
from repro.lint.rules import RULES_BY_ID
from repro.lint.visitor import ModuleInfo

ACQUIRED = "acquired"
RELEASED = "released"
HANDED = "handed-off"
MANAGED = "with-managed"

#: (contract name, acquire line): the identity of one acquisition site.
AcqKey = Tuple[str, int]


@dataclass(frozen=True)
class Fact:
    """One possible lifetime state of a handle bound to a variable."""

    contract: str                  # resource-contract name ("" if none)
    buffer: str                    # buffer-contract name ("" if none)
    line: int                      # acquire site
    status: str
    #: (view line, escape line, how) — escapes of views derived from
    #: this buffer, pending until the buffer is closed.
    escapes: Tuple[Tuple[int, int, str], ...] = ()

    def key(self) -> AcqKey:
        return (self.contract or self.buffer, self.line)


@dataclass(frozen=True)
class ViewFact:
    """A value derived from a mapped buffer (dies with its close())."""

    contract: str                  # buffer-contract name
    buffer_line: int               # buffer acquire site
    line: int                      # view creation site

    def key(self) -> AcqKey:
        return (self.contract, self.buffer_line)


AnyFact = Union[Fact, ViewFact]
State = Dict[str, FrozenSet[AnyFact]]


def _merge(into: State, other: State) -> bool:
    changed = False
    for var, facts in other.items():
        have = into.get(var)
        if have is None:
            into[var] = facts
            changed = True
        elif not facts <= have:
            into[var] = have | facts
            changed = True
    return changed


def _call_head(call: ast.Call) -> Optional[str]:
    """The unqualified tail name of a call ("copy", "bytes", ...)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _names_in(expr: Optional[ast.AST]) -> Set[str]:
    if expr is None:
        return set()
    return {node.id for node in ast.walk(expr) if isinstance(node, ast.Name)}


def _direct_names(expr: Optional[ast.AST]) -> Set[str]:
    """Names whose *handle itself* flows into the value.

    The whole value, tuple/list elements, and direct call arguments
    (``return Wrapper(reader)``) transfer the handle; a method receiver
    (``self.x = reader.array(...)``) only contributes a derived value
    and keeps the caller responsible for the release.
    """
    names: Set[str] = set()

    def top(node: Optional[ast.AST]) -> None:
        if node is None:
            return
        if isinstance(node, ast.Starred):
            top(node.value)
        elif isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                top(elt)
        elif isinstance(node, ast.Call):
            for arg in node.args:
                top(arg)
            for keyword in node.keywords:
                top(keyword.value)

    top(expr)
    return names


def _none_test(test: Optional[ast.AST]) -> Tuple[Optional[str], bool]:
    """Recognize a None/truthiness guard on a single variable.

    Returns ``(var, none_on_true)``: ``x is None`` / ``not x`` take the
    *true* edge when the variable is None; ``x is not None`` / bare
    ``x`` take the *false* edge.
    """
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.left, ast.Name)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        if isinstance(test.ops[0], ast.Is):
            return test.left.id, True
        if isinstance(test.ops[0], ast.IsNot):
            return test.left.id, False
        return None, False
    if isinstance(test, ast.Name):
        return test.id, False
    if (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)
            and isinstance(test.operand, ast.Name)):
        return test.operand.id, True
    return None, False


def _is_self_target(node: ast.AST) -> bool:
    """``self.attr`` or ``self.attr[...]`` / ``obj.attr`` store target."""
    if isinstance(node, ast.Subscript):
        node = node.value
    return isinstance(node, ast.Attribute)


class _FunctionAnalysis:
    """Fixpoint analysis of one function body."""

    def __init__(self, module: ModuleInfo, func: ast.AST,
                 registry: ContractRegistry) -> None:
        self.module = module
        self.func = func
        self.registry = registry
        self.cfg: CFG = build_cfg(func)
        # Accumulators keyed by acquisition site.
        self.acquires: Dict[AcqKey, Tuple[str, str]] = {}   # var, what
        self.releases: Dict[AcqKey, Set[int]] = defaultdict(set)
        self.normal_leaks: Dict[AcqKey, Set[int]] = defaultdict(set)
        self.exc_leaks: Dict[AcqKey, Set[int]] = defaultdict(set)
        self.rebind_leaks: Dict[AcqKey, Set[Tuple[int, str]]] = defaultdict(set)
        #: (contract, buffer line, view line, escape line, close line, how)
        self.escape_hits: Set[Tuple[str, int, int, int, int, str]] = set()

    # -------------------------------------------------------------- #
    # Worklist driver

    def run(self) -> None:
        in_states: Dict[int, State] = {self.cfg.entry: {}}
        out_states: Dict[int, State] = {}
        work = [self.cfg.entry]
        while work:
            index = work.pop()
            state = in_states.get(index, {})
            node = self.cfg.node(index)
            out = self._transfer(node, dict(state))
            out_states[index] = out
            exc_state = self._exc_state(node, state, out)
            edge_states = self._edge_states(node, out)
            for succ in node.succ:
                target = in_states.setdefault(succ, {})
                if _merge(target, edge_states.get(succ, out)) \
                        or succ not in out_states:
                    if succ not in work:
                        work.append(succ)
            for succ in node.exc:
                target = in_states.setdefault(succ, {})
                if _merge(target, exc_state) or succ not in out_states:
                    if succ not in work:
                        work.append(succ)
        self._collect_exits(in_states, out_states)

    def _edge_states(self, node, out: State) -> Dict[int, State]:
        """Per-successor refinements of the out state.

        On a ``x is None`` / ``x is not None`` / truthiness guard, the
        edge where ``x`` is None cannot carry ``x``'s handle facts — the
        binding is provably None there.  This is what makes the
        ubiquitous ``if handle is not None: handle.close()`` cleanup
        idiom check out without a directive.
        """
        stmt = node.stmt
        if node.kind not in (KIND_BRANCH, KIND_LOOP) or stmt is None:
            return {}
        if not isinstance(stmt, (ast.If, ast.While)):
            return {}
        if node.true_succ is None or node.false_succ is None \
                or node.true_succ == node.false_succ:
            return {}
        var, none_on_true = _none_test(stmt.test)
        if var is None or var not in out:
            return {}
        pruned = dict(out)
        del pruned[var]
        none_succ = node.true_succ if none_on_true else node.false_succ
        return {none_succ: pruned}

    def _handoff_line(self, node) -> bool:
        stmt = node.stmt
        if stmt is None:
            return False
        return bool(self.module.directives_on(
            getattr(stmt, "lineno", 0), "handoff"))

    def _collect_exits(self, in_states: Dict[int, State],
                       out_states: Dict[int, State]) -> None:
        exit_idx, raise_idx = self.cfg.exit, self.cfg.raise_exit
        for node in self.cfg.nodes:
            out = out_states.get(node.index)
            line = node.line
            if out is not None:
                if exit_idx in node.succ:
                    self._leaks(out, self.normal_leaks, line)
                if raise_idx in node.succ:
                    self._leaks(out, self.exc_leaks, line)
            if raise_idx in node.exc:
                state = in_states.get(node.index)
                if state is not None:
                    self._leaks(
                        self._exc_state(node, state,
                                        out_states.get(node.index, {})),
                        self.exc_leaks, line)

    def _exc_state(self, node, state: State, out: State) -> State:
        """The state carried by this node's exceptional edges.

        Exceptions leave *before* the statement's effects complete, so
        the in-state propagates — with two refinements: a line carrying
        a ``# lint: handoff`` directive covers its exceptional path too
        (the documented transfer is the statement), and a key this very
        node releases or hands off fails *inside* the transfer call —
        that is the callee's contract, not a missing guard, so the key
        takes its post-statement status.
        """
        if self._handoff_line(node):
            return out
        resolved = self._resolved_statuses(out)
        if not resolved:
            return state
        adjusted: State = {}
        for var, facts in state.items():
            adjusted[var] = frozenset(
                replace(fact, status=resolved[fact.key()])
                if isinstance(fact, Fact) and fact.key() in resolved
                and fact.status in (ACQUIRED, MANAGED) else fact
                for fact in facts)
        return adjusted

    def _resolved_statuses(self, out: State) -> Dict[AcqKey, str]:
        return {fact.key(): fact.status
                for facts in out.values() for fact in facts
                if isinstance(fact, Fact)
                and fact.status in (RELEASED, HANDED)}

    def _leaks(self, state: State, sink: Dict[AcqKey, Set[int]],
               line: int) -> None:
        for facts in state.values():
            for fact in facts:
                if isinstance(fact, Fact) and fact.status == ACQUIRED:
                    sink[fact.key()].add(line)

    # -------------------------------------------------------------- #
    # Transfer function

    def _transfer(self, node, state: State) -> State:
        stmt = node.stmt
        if node.kind == KIND_STMT and stmt is not None:
            self._stmt_effects(stmt, state)
        elif node.kind in (KIND_BRANCH, KIND_LOOP) and stmt is not None:
            test = getattr(stmt, "test", None) or getattr(stmt, "iter", None)
            if test is not None:
                self._call_effects(test, state, stmt)
            target = getattr(stmt, "target", None)
            if target is not None:
                for name in _names_in(target):
                    self._rebind(name, state, stmt, "loop rebinding")
                    state.pop(name, None)
        elif node.kind == KIND_WITH and stmt is not None:
            self._with_enter(stmt, state)
        elif node.kind == KIND_WITH_EXIT and stmt is not None:
            self._with_exit(stmt, state)
        return state

    def _stmt_effects(self, stmt: ast.AST, state: State) -> None:
        if self.module.directives_on(getattr(stmt, "lineno", 0), "handoff"):
            for directive in self.module.directives_on(stmt.lineno, "handoff"):
                directive.used = True
            for name in _names_in(stmt):
                self._set_status(state, name, HANDED, only_resources=True)
        if isinstance(stmt, ast.Return):
            self._return_effects(stmt, state)
            return
        if isinstance(stmt, ast.Assign):
            self._call_effects(stmt.value, state, stmt)
            for target in stmt.targets:
                self._bind(target, stmt.value, state, stmt)
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._call_effects(stmt.value, state, stmt)
            self._bind(stmt.target, stmt.value, state, stmt)
            return
        if isinstance(stmt, ast.AugAssign):
            self._call_effects(stmt.value, state, stmt)
            return
        if isinstance(stmt, ast.Expr):
            self._call_effects(stmt.value, state, stmt)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self._rebind(target.id, state, stmt, "del while open")
                    state.pop(target.id, None)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._closure_effects(stmt, state)
            return
        self._call_effects(stmt, state, stmt)

    # -------------------------------------------------------------- #
    # Calls: acquire / release / handoff recognition

    def _call_effects(self, expr: ast.AST, state: State,
                      stmt: ast.AST) -> None:
        line = getattr(stmt, "lineno", 0)
        for call in [n for n in ast.walk(expr) if isinstance(n, ast.Call)]:
            func = call.func
            # handle.method(...) on a tracked variable
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)):
                receiver, method = func.value.id, func.attr
                facts = state.get(receiver)
                if facts:
                    self._method_call(receiver, method, facts, state, line)
                    continue
                # untracked receiver: fall through — this may be a
                # module-qualified release (shards.release_shard(x)).
            elif (isinstance(func, ast.Attribute)
                    and _is_self_target(func.value)):
                # self.registry.append(handle): parent-owned handoff
                for arg in call.args:
                    if isinstance(arg, ast.Name):
                        self._set_status(state, arg.id, HANDED,
                                         only_resources=True)
                continue
            elif isinstance(func, ast.Attribute):
                continue
            dotted = self.module.dotted_name(func)
            if dotted is None:
                continue
            for arg in call.args:
                if not isinstance(arg, ast.Name) or arg.id not in state:
                    continue
                for fact in state[arg.id]:
                    if not isinstance(fact, Fact) or not fact.contract:
                        continue
                    contract = self.registry.resource(fact.contract)
                    if contract is None:
                        continue
                    if self.registry.is_release_func(dotted, contract):
                        self._release_key(state, fact.key(), line)
                    elif self.registry.is_handoff_func(dotted, contract):
                        self._status_key(state, fact.key(), HANDED)

    def _method_call(self, receiver: str, method: str,
                     facts: FrozenSet[AnyFact], state: State,
                     line: int) -> None:
        for fact in facts:
            if not isinstance(fact, Fact):
                continue
            released = False
            if fact.contract:
                contract = self.registry.resource(fact.contract)
                if contract and method in contract.release_methods:
                    released = True
            if fact.buffer:
                buf = self.registry.buffer(fact.buffer)
                if buf and method in buf.close_methods:
                    released = True
            if released:
                self._release_key(state, fact.key(), line)

    # -------------------------------------------------------------- #
    # Bindings: acquire sites, view derivation, self-stores, rebinds

    def _bind(self, target: ast.AST, value: ast.AST, state: State,
              stmt: ast.AST) -> None:
        line = getattr(stmt, "lineno", 0)
        if isinstance(target, ast.Name):
            self._rebind(target.id, state, stmt, "rebound while open")
            fresh = self._facts_for_value(value, state, line)
            if fresh:
                state[target.id] = fresh
            else:
                state.pop(target.id, None)
            return
        if _is_self_target(target):
            # Storing into self/attribute state: resources are handed to
            # the owner; uncopied buffer views escape the mapping —
            # whether held in a variable or created inline
            # (self._codes = reader.array("codes")).
            described = (ast.unparse(target)
                         if hasattr(ast, "unparse") else "self attribute")
            self._inline_view_escapes(value, state, line,
                                      f"stored to {described}")
            # Ownership transfers only when the handle itself is stored
            # (self.attr = handle) — storing a value *derived* from the
            # handle (self.x = reader.array(...)) keeps the caller
            # responsible for the release.
            for name in _direct_names(value):
                self._set_status(state, name, HANDED, only_resources=True)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self._rebind(element.id, state, stmt,
                                 "rebound while open")
                    state.pop(element.id, None)
            return

    def _facts_for_value(self, value: ast.AST, state: State,
                         line: int) -> FrozenSet[AnyFact]:
        # Alias: x = y copies y's facts (releases update both, keyed by
        # acquisition site).
        if isinstance(value, ast.Name):
            return state.get(value.id, frozenset())
        if isinstance(value, ast.Attribute):
            # mapping.buffer -> raw-buffer view
            if isinstance(value.value, ast.Name):
                facts = state.get(value.value.id, frozenset())
                views = self._views_from_attr(facts, value.attr, line)
                if views:
                    return views
            return frozenset()
        if not isinstance(value, ast.Call):
            return frozenset()
        call = value
        func = call.func
        # view via mapping.method(...)
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)):
            facts = state.get(func.value.id, frozenset())
            views = self._views_from_method(facts, func.attr, line)
            if views:
                return views
            return frozenset()
        # fluent chain: ShardExchange(...).open() returns the handle
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Call)):
            return self._facts_for_value(func.value, state, line)
        dotted = self.module.dotted_name(func)
        if dotted is None:
            return frozenset()
        resource = self.registry.match_acquire(dotted)
        buffer = self.registry.match_buffer(dotted)
        if resource is not None or buffer is not None:
            fact = Fact(contract=resource.name if resource else "",
                        buffer=buffer.name if buffer else "",
                        line=line, status=ACQUIRED)
            what = dotted.rsplit(".", 1)[-1]
            self.acquires[fact.key()] = (what, f"{what}(...)")
            return frozenset({fact})
        # view via view_func(mapping) / view_func(mapping.buffer)
        views: Set[AnyFact] = set()
        for arg in call.args:
            base = arg.value if isinstance(arg, ast.Attribute) else arg
            if not isinstance(base, ast.Name):
                continue
            for fact in state.get(base.id, frozenset()):
                if isinstance(fact, Fact) and fact.buffer:
                    buf = self.registry.buffer(fact.buffer)
                    if buf and self.registry.is_view_func(dotted, buf):
                        views.add(ViewFact(contract=fact.buffer,
                                           buffer_line=fact.line,
                                           line=line))
        return frozenset(views)

    def _views_from_method(self, facts: Iterable[AnyFact], method: str,
                           line: int) -> FrozenSet[AnyFact]:
        views: Set[AnyFact] = set()
        for fact in facts:
            if isinstance(fact, Fact) and fact.buffer:
                buf = self.registry.buffer(fact.buffer)
                if buf and method in buf.view_methods:
                    views.add(ViewFact(contract=fact.buffer,
                                       buffer_line=fact.line, line=line))
        return frozenset(views)

    def _views_from_attr(self, facts: Iterable[AnyFact], attr: str,
                         line: int) -> FrozenSet[AnyFact]:
        views: Set[AnyFact] = set()
        for fact in facts:
            if isinstance(fact, Fact) and fact.buffer:
                buf = self.registry.buffer(fact.buffer)
                if buf and attr in buf.view_attrs:
                    views.add(ViewFact(contract=fact.buffer,
                                       buffer_line=fact.line, line=line))
        return frozenset(views)

    # -------------------------------------------------------------- #
    # Returns, closures, with-blocks

    def _return_effects(self, stmt: ast.Return, state: State) -> None:
        line = stmt.lineno
        if stmt.value is not None:
            self._call_effects(stmt.value, state, stmt)
        returned = _direct_names(stmt.value)
        # Buffers returned alongside their views keep the pair alive in
        # the caller: no escape.
        returned_buffers: Set[AcqKey] = set()
        for name in returned:
            for fact in state.get(name, frozenset()):
                if isinstance(fact, Fact) and fact.buffer:
                    returned_buffers.add((fact.buffer, fact.line))
        if stmt.value is not None:
            self._inline_view_escapes(stmt.value, state, line, "returned",
                                      exclude=frozenset(returned_buffers))
        for name in returned:
            self._set_status(state, name, HANDED, only_resources=True)

    def _closure_effects(self, stmt: ast.AST, state: State) -> None:
        line = getattr(stmt, "lineno", 0)
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                for fact in state.get(sub.id, frozenset()):
                    if isinstance(fact, ViewFact):
                        self._escape(state, sub.id, line,
                                     "captured by a closure")

    def _managed_vars(self, stmt: ast.AST) -> List[Tuple[str, ast.AST]]:
        managed: List[Tuple[str, ast.AST]] = []
        for item in stmt.items:
            expr = item.context_expr
            if (item.optional_vars is not None
                    and isinstance(item.optional_vars, ast.Name)):
                managed.append((item.optional_vars.id, expr))
            elif isinstance(expr, ast.Name):
                managed.append((expr.id, expr))
            elif isinstance(expr, ast.Call):
                head = _call_head(expr)
                if head == "closing" and expr.args \
                        and isinstance(expr.args[0], ast.Name):
                    managed.append((expr.args[0].id, expr))
        return managed

    def _with_enter(self, stmt: ast.AST, state: State) -> None:
        line = getattr(stmt, "lineno", 0)
        for item in stmt.items:
            expr = item.context_expr
            var = (item.optional_vars.id
                   if isinstance(item.optional_vars, ast.Name) else None)
            if isinstance(expr, ast.Call) and var is not None:
                fresh = self._facts_for_value(expr, state, line)
                managed = frozenset(
                    replace(fact, status=MANAGED)
                    if isinstance(fact, Fact) else fact
                    for fact in fresh)
                if managed:
                    state[var] = managed
                    continue
            # `with handle:` / `with closing(handle):` — existing facts
            # become managed.
            for name, _ in self._managed_vars(stmt):
                self._set_status(state, name, MANAGED, only_resources=False,
                                 from_statuses=(ACQUIRED,))

    def _with_exit(self, stmt: ast.AST, state: State) -> None:
        line = getattr(stmt, "lineno", 0)
        for name, _ in self._managed_vars(stmt):
            for fact in state.get(name, frozenset()):
                if isinstance(fact, Fact) and fact.status in (MANAGED,
                                                              ACQUIRED):
                    self._release_key(state, fact.key(), line)

    # -------------------------------------------------------------- #
    # Fact surgery (applied across aliases, keyed by acquisition site)

    def _set_status(self, state: State, name: str, status: str,
                    only_resources: bool,
                    from_statuses: Tuple[str, ...] = (ACQUIRED, MANAGED),
                    ) -> None:
        facts = state.get(name)
        if not facts:
            return
        keys = {fact.key() for fact in facts
                if isinstance(fact, Fact)
                and (fact.contract or not only_resources)
                and fact.status in from_statuses}
        for key in keys:
            self._status_key(state, key, status)

    def _status_key(self, state: State, key: AcqKey, status: str) -> None:
        for var, facts in list(state.items()):
            updated = frozenset(
                replace(fact, status=status)
                if isinstance(fact, Fact) and fact.key() == key
                and fact.status in (ACQUIRED, MANAGED) else fact
                for fact in facts)
            state[var] = updated

    def _release_key(self, state: State, key: AcqKey, line: int) -> None:
        self.releases[key].add(line)
        for var, facts in list(state.items()):
            updated = []
            for fact in facts:
                if isinstance(fact, Fact) and fact.key() == key:
                    if fact.status in (ACQUIRED, MANAGED):
                        for view_line, esc_line, how in fact.escapes:
                            self.escape_hits.add(
                                (fact.buffer, fact.line, view_line,
                                 esc_line, line, how))
                        fact = replace(fact, status=RELEASED, escapes=())
                updated.append(fact)
            state[var] = frozenset(updated)

    def _rebind(self, name: str, state: State, stmt: ast.AST,
                how: str) -> None:
        line = getattr(stmt, "lineno", 0)
        for fact in state.get(name, frozenset()):
            if isinstance(fact, Fact) and fact.status == ACQUIRED:
                # Sole binding lost while the handle is open.
                others = any(
                    var != name and any(
                        isinstance(f, Fact) and f.key() == fact.key()
                        and f.status == ACQUIRED for f in facts)
                    for var, facts in state.items())
                if not others:
                    self.rebind_leaks[fact.key()].add((line, how))

    def _escape(self, state: State, name: str, line: int,
                how: str) -> None:
        for fact in state.get(name, frozenset()):
            if isinstance(fact, ViewFact):
                self._escape_view(state, fact, line, how)

    def _escape_view(self, state: State, view: ViewFact, line: int,
                     how: str) -> None:
        key = view.key()
        for var, facts in list(state.items()):
            updated = frozenset(
                replace(f, escapes=tuple(sorted(
                    set(f.escapes) | {(view.line, line, how)})))
                if isinstance(f, Fact) and f.key() == key
                and f.status in (ACQUIRED, MANAGED) else f
                for f in facts)
            state[var] = updated
        # Escaping a view of an already-closed buffer dangles
        # immediately: report against the recorded close site.
        released = self.releases.get(key)
        if released and any(
                isinstance(f, Fact) and f.key() == key
                and f.status == RELEASED
                for facts in state.values() for f in facts):
            self.escape_hits.add(
                (view.contract, view.buffer_line, view.line, line,
                 min(released), how))

    def _inline_view_escapes(self, value: ast.AST, state: State, line: int,
                             how: str,
                             exclude: FrozenSet[AcqKey] = frozenset(),
                             ) -> None:
        """Escape every uncopied buffer view in ``value``.

        Covers views held in variables *and* views created inline in the
        escaping expression itself (``self.x = reader.array("codes")``,
        ``return mapping.buffer``).
        """

        def walk(node: ast.AST, copied: bool) -> None:
            if isinstance(node, ast.Call):
                head = _call_head(node)
                inner = copied or (head in COPY_CALLS)
                if (not copied and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)):
                    facts = state.get(node.func.value.id, frozenset())
                    for view in self._views_from_method(
                            facts, node.func.attr, node.lineno):
                        if view.key() not in exclude:
                            self._escape_view(state, view, line, how)
                for child in ast.iter_child_nodes(node):
                    walk(child, inner)
                return
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)):
                if not copied:
                    facts = state.get(node.value.id, frozenset())
                    for view in self._views_from_attr(
                            facts, node.attr, node.lineno):
                        if view.key() not in exclude:
                            self._escape_view(state, view, line, how)
                return
            if isinstance(node, ast.Name):
                if not copied:
                    for fact in state.get(node.id, frozenset()):
                        if (isinstance(fact, ViewFact)
                                and fact.key() not in exclude):
                            self._escape_view(state, fact, line, how)
                return
            for child in ast.iter_child_nodes(node):
                walk(child, copied)

        walk(value, False)

    # -------------------------------------------------------------- #
    # Findings

    def findings(self) -> List[Finding]:
        found: List[Finding] = []
        for key, (var, what) in sorted(self.acquires.items()):
            contract, line = key
            released = sorted(self.releases.get(key, ()))
            rebinds = sorted(self.rebind_leaks.get(key, ()))
            normal = sorted(self.normal_leaks.get(key, ()))
            exceptional = sorted(self.exc_leaks.get(key, ()))
            if rebinds:
                leak_line, how = rebinds[0]
                found.append(self._finding(
                    "resource-leak", line,
                    f"{contract} handle from {what} is {how} at line "
                    f"{leak_line} without a release",
                    trace=[(line, f"{what} acquired here"),
                           (leak_line, f"{how}: the only binding is "
                                       f"lost with the handle open")]))
            elif normal:
                detail = (f"; released on some paths (line "
                          f"{released[0]}) but not this one"
                          if released else "")
                found.append(self._finding(
                    "resource-leak", line,
                    f"{contract} handle from {what} is not released on "
                    f"every path: the function can exit at line "
                    f"{normal[0]} with the handle open{detail}",
                    trace=[(line, f"{what} acquired here"),
                           (normal[0], "exits with the handle still "
                                       "open on this path")]))
            elif exceptional and released:
                found.append(self._finding(
                    "release-guard", released[0],
                    f"{contract} release runs only on the fall-through "
                    f"path: an exception at line {exceptional[0]} "
                    f"skips it — move the release into a finally block "
                    f"or use a with-block",
                    trace=[(line, f"{what} acquired here"),
                           (exceptional[0], "an exception here leaves "
                                            "the function early"),
                           (released[0], "release runs only when "
                                         "control falls through")]))
            elif exceptional:
                found.append(self._finding(
                    "release-guard", line,
                    f"{contract} handle from {what} leaks when an "
                    f"exception interrupts at line {exceptional[0]} "
                    f"before ownership is transferred — add "
                    f"try/except cleanup around the handoff",
                    trace=[(line, f"{what} acquired here"),
                           (exceptional[0], "an exception here leaves "
                                            "the function before the "
                                            "handoff")]))
        for (contract, buf_line, view_line, esc_line, close_line,
                how) in sorted(self.escape_hits):
            found.append(self._finding(
                "buffer-escape", esc_line,
                f"view of the {contract} acquired at line {buf_line} is "
                f"{how} without a copy, but the buffer is closed at "
                f"line {close_line} — copy before it escapes "
                f"(.copy()/bytes()) or transfer the mapping with it",
                trace=[(buf_line, f"{contract} mapped here"),
                       (view_line, "zero-copy view created here"),
                       (esc_line, f"view {how} here"),
                       (close_line, "buffer closed — the escaped view "
                                    "now dangles")]))
        return found

    def _finding(self, rule_id: str, line: int, message: str,
                 trace: Sequence[Tuple[int, str]]) -> Finding:
        return Finding(
            path=self.module.path, line=line, column=1, rule_id=rule_id,
            severity=RULES_BY_ID[rule_id].severity, message=message,
            line_text=self.module.line_text(line),
            trace=[{"line": t_line, "note": note}
                   for t_line, note in trace])


# --------------------------------------------------------------------- #
# Atomic-write checking (family 4) over the same CFG

_OPEN_FUNCS = frozenset({"open", "io.open", "gzip.open", "bz2.open",
                         "lzma.open"})
_WRITE_METHODS = frozenset({"write_bytes", "write_text"})
_RENAME_FUNCS = frozenset({"os.replace", "os.rename"})


def _literal_text(node: ast.AST) -> Optional[str]:
    """The literal skeleton of a string expression (f-string holes as {})."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value,
                                                              str):
                parts.append(value.value)
            else:
                parts.append("{}")
        return "".join(parts)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _literal_text(node.left)
        right = _literal_text(node.right)
        if left is not None and right is not None:
            return left + right
    return None


def _node_exprs(node) -> List[ast.AST]:
    """The expressions evaluated *at* one CFG node.

    Compound statements keep their whole AST on the header node; only
    the header's own expressions (with-items, branch tests, loop
    iterables) belong to it — the body statements have nodes of their
    own.
    """
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind == KIND_STMT:
        return [stmt]
    if node.kind == KIND_WITH:
        return [item.context_expr for item in stmt.items]
    if node.kind in (KIND_BRANCH, KIND_LOOP):
        exprs = []
        for attr in ("test", "iter", "subject"):
            value = getattr(stmt, attr, None)
            if value is not None:
                exprs.append(value)
        return exprs
    return []


def _write_mode(call: ast.Call) -> bool:
    mode: Optional[ast.AST] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(flag in mode.value for flag in "wxa+")
    return False


class _AtomicWriteCheck:
    """Flags checkpoint writes that bypass the temp-then-rename idiom."""

    def __init__(self, module: ModuleInfo, func: ast.AST,
                 registry: ContractRegistry) -> None:
        self.module = module
        self.func = func
        self.registry = registry
        self.findings: List[Finding] = []

    def run(self) -> List[Finding]:
        texts: Dict[str, str] = {}
        for node in ast.walk(self.func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                text = _literal_text(node.value)
                if text is not None:
                    texts[node.targets[0].id] = text
        cfg = build_cfg(self.func)
        for node in cfg.nodes:
            for expr in _node_exprs(node):
                for call in [n for n in ast.walk(expr)
                             if isinstance(n, ast.Call)]:
                    self._check_call(call, node.index, cfg, texts)
        return self._dedupe()

    def _dedupe(self) -> List[Finding]:
        seen = set()
        unique = []
        for finding in self.findings:
            key = (finding.line, finding.message)
            if key not in seen:
                seen.add(key)
                unique.append(finding)
        return unique

    def _target_text(self, arg: ast.AST,
                     texts: Dict[str, str]) -> Optional[str]:
        text = _literal_text(arg)
        if text is not None:
            return text
        if isinstance(arg, ast.Name):
            return texts.get(arg.id)
        return None

    def _check_call(self, call: ast.Call, index: int, cfg: CFG,
                    texts: Dict[str, str]) -> None:
        func = call.func
        dotted = self.module.dotted_name(func)
        target: Optional[ast.AST] = None
        if dotted in _OPEN_FUNCS:
            if not _write_mode(call) or not call.args:
                return
            target = call.args[0]
        elif (isinstance(func, ast.Attribute)
                and func.attr in _WRITE_METHODS):
            target = func.value
        else:
            return
        text = self._target_text(target, texts)
        if text is None:
            return
        line = call.lineno
        if ".tmp" in text:
            if not self._rename_reachable(index, cfg):
                self.findings.append(self._finding(
                    line,
                    "temp file written here is never renamed into place "
                    "on the fall-through path — finish the "
                    "temp-then-rename idiom with os.replace(tmp, target)",
                    trace=[(line, "temp file opened for writing here"),
                           (line, "no os.replace() is reachable from "
                                  "this write")]))
            return
        suffix = self.registry.protected_suffix(text)
        if suffix is None:
            return
        writers = ", ".join(sorted(self.registry.atomic_writers()))
        self.findings.append(self._finding(
            line,
            f"direct write to a '{suffix}' path bypasses the atomic "
            f"temp-then-rename writers — write a '.tmp.<pid>' sibling "
            f"and os.replace() it, or use one of: {writers}",
            trace=[(line, f"'{suffix}' checkpoint path opened for "
                          f"direct writing here")]))

    def _rename_reachable(self, start: int, cfg: CFG) -> bool:
        seen = {start}
        work = [start]
        while work:
            index = work.pop()
            node = cfg.node(index)
            for expr in _node_exprs(node):
                for sub in ast.walk(expr):
                    if isinstance(sub, ast.Call):
                        dotted = self.module.dotted_name(sub.func)
                        if dotted in _RENAME_FUNCS:
                            return True
            for succ in node.succ:
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return False

    def _finding(self, line: int, message: str,
                 trace: Sequence[Tuple[int, str]]) -> Finding:
        return Finding(
            path=self.module.path, line=line, column=1,
            rule_id="atomic-write",
            severity=RULES_BY_ID["atomic-write"].severity,
            message=message, line_text=self.module.line_text(line),
            trace=[{"line": t_line, "note": note}
                   for t_line, note in trace])


# --------------------------------------------------------------------- #
# Module driver

def _functions(module: ModuleInfo) -> List[ast.AST]:
    return [node for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]


def check_resource_lifetimes(module: ModuleInfo,
                             registry: ContractRegistry) -> List[Finding]:
    """Families 1–3: leak pairing, finally guards, buffer escapes."""
    findings: List[Finding] = []
    seen = set()
    for func in _functions(module):
        analysis = _FunctionAnalysis(module, func, registry)
        analysis.run()
        for finding in analysis.findings():
            key = (finding.line, finding.rule_id, finding.message)
            if key not in seen:
                seen.add(key)
                findings.append(finding)
    return findings


def check_atomic_writes(module: ModuleInfo,
                        registry: ContractRegistry) -> List[Finding]:
    """Family 4: temp-then-rename atomicity of checkpoint writes."""
    findings: List[Finding] = []
    for func in _functions(module):
        findings.extend(_AtomicWriteCheck(module, func, registry).run())
    return findings
