"""Declarative resource-lifetime contracts for the flow-sensitive rules.

A contract names the functions that *acquire* a handle, the calls that
*release* it, and the calls that legitimately *transfer ownership* out of
the acquiring function.  The dataflow engine interprets contracts; it has
no built-in knowledge of any codec.  Three contract kinds exist:

* :class:`ResourceContract` — acquire/release pairing for a closeable
  handle (shard exchange, worldpack, spill builder, shm block, mmap).
* :class:`BufferContract` — a mapped buffer whose derived views (numpy
  arrays over the mapping) must not outlive ``close()``.
* :class:`AtomicContract` — checkpoint/manifest suffixes that may only be
  written through the temp-then-rename writers.

The built-in :data:`DEFAULT_CONTRACTS` registry seeds the analysis, and
every codec additionally *registers itself*: a module-level
``LINT_RESOURCE_CONTRACT = {...}`` literal (see ``lumscan/shards.py``)
is parsed out of each analyzed module and merged into the active
registry, so a new codec brings its own contract along instead of
patching the linter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Name of the module-level literal a codec uses to register contracts.
CONTRACT_ATTRIBUTE = "LINT_RESOURCE_CONTRACT"

#: Call wrappers recognized as producing an owned copy of a buffer view.
COPY_CALLS = frozenset({
    "copy", "tobytes", "bytes", "list", "tuple", "dict", "deepcopy",
    "array", "asarray_copy",
})


@dataclass(frozen=True)
class ResourceContract:
    """Acquire/release pairing contract for one closeable handle type."""

    name: str                         # "shard-exchange"
    codec: str                        # "shards"
    acquire: Tuple[str, ...]          # callables producing the handle
    release_methods: Tuple[str, ...]  # handle.<method>() releases
    release_funcs: Tuple[str, ...] = ()   # func(handle) releases
    handoff_funcs: Tuple[str, ...] = ()   # func(handle) takes ownership


@dataclass(frozen=True)
class BufferContract:
    """Mapped-buffer contract: derived views die with ``close()``."""

    name: str                         # "segment-mapping"
    codec: str
    acquire: Tuple[str, ...]          # callables producing the mapping
    close_methods: Tuple[str, ...]    # mapping.<method>() invalidates views
    view_methods: Tuple[str, ...] = ()    # mapping.<method>(...) -> view
    view_attrs: Tuple[str, ...] = ()      # mapping.<attr> -> raw buffer
    view_funcs: Tuple[str, ...] = ()      # func(mapping...) -> views


@dataclass(frozen=True)
class AtomicContract:
    """Protected on-disk suffixes and their sanctioned atomic writers."""

    codec: str
    suffixes: Tuple[str, ...]         # ".lshd", "manifest.json", ...
    writers: Tuple[str, ...]          # temp-then-rename entry points


#: Built-in registry: the project codecs plus the stdlib primitives they
#: are built on.  Codec modules re-declare their slice of this table via
#: ``LINT_RESOURCE_CONTRACT`` (merged at analysis time) so the contract
#: lives next to the code it constrains.
DEFAULT_CONTRACTS: Tuple[object, ...] = (
    # --- lumscan.shards -------------------------------------------- #
    ResourceContract(
        name="shard-exchange", codec="shards",
        acquire=("ShardExchange",),
        release_methods=("close",)),
    ResourceContract(
        name="shard-reader", codec="shards",
        acquire=("ShardReader", "open_shard"),
        release_methods=("close",),
        release_funcs=("release_shard",)),
    ResourceContract(
        name="segment-mapping", codec="shards",
        acquire=("SegmentMapping",),
        release_methods=("close",)),
    ResourceContract(
        name="spill-builder", codec="shards",
        acquire=("SpillDatasetBuilder",),
        release_methods=("finalize", "abort", "_cleanup")),
    # --- websim.worldpack ------------------------------------------ #
    ResourceContract(
        name="worldpack", codec="worldpack",
        acquire=("freeze_world", "WorldPack"),
        release_methods=("release",),
        release_funcs=("release_worldpack",)),
    ResourceContract(
        name="worldpack-reader", codec="worldpack",
        acquire=("WorldPackReader",),
        release_methods=("close",)),
    # --- stdlib primitives the codecs sit on ----------------------- #
    ResourceContract(
        name="shared-memory", codec="stdlib",
        acquire=("shared_memory.SharedMemory", "SharedMemory"),
        release_methods=("close", "unlink")),
    ResourceContract(
        name="mmap", codec="stdlib",
        acquire=("mmap.mmap",),
        release_methods=("close",)),
    # --- mapped-buffer view contracts ------------------------------ #
    BufferContract(
        name="segment-mapping", codec="shards",
        acquire=("SegmentMapping",),
        close_methods=("close",),
        view_attrs=("buffer",),
        view_funcs=("decode_shard",)),
    BufferContract(
        name="worldpack-reader", codec="worldpack",
        acquire=("WorldPackReader",),
        close_methods=("close",),
        view_methods=("array",)),
    # --- atomic persistence ---------------------------------------- #
    AtomicContract(
        codec="shards",
        suffixes=(".lshd", ".lshm", "manifest.json"),
        writers=("write_segment_file", "write_manifest", "store_segment",
                 "adopt_segment", "append_segment", "compact_manifest",
                 "dump_dataset_lshd", "dump_dataset_manifest")),
    AtomicContract(
        codec="worldpack",
        suffixes=(".lshw",),
        writers=("write_worldpack_file", "write_worldpack_shm")),
    AtomicContract(
        codec="store",
        suffixes=(".manifest.json",),
        writers=("_atomic_write_json",)),
    AtomicContract(
        codec="serialize",
        suffixes=(".jsonl", ".jsonl.gz"),
        writers=("_atomic_text_writer", "dump_dataset", "save_report")),
)


def _tail_matches(dotted: str, name: str) -> bool:
    """True when a resolved dotted call name matches a contract name.

    Contract names are written as the shortest unambiguous suffix
    ("ShardExchange", "shared_memory.SharedMemory"); a call matches when
    the full dotted path equals the name or ends with ``.<name>``.
    """
    return dotted == name or dotted.endswith("." + name)


@dataclass
class ContractRegistry:
    """The merged, queryable contract set for one lint run."""

    resources: List[ResourceContract] = field(default_factory=list)
    buffers: List[BufferContract] = field(default_factory=list)
    atomics: List[AtomicContract] = field(default_factory=list)

    @classmethod
    def from_contracts(cls, contracts: Sequence[object]) -> "ContractRegistry":
        registry = cls()
        for contract in contracts:
            registry.add(contract)
        return registry

    def add(self, contract: object) -> None:
        if isinstance(contract, ResourceContract):
            if contract not in self.resources:
                self.resources.append(contract)
        elif isinstance(contract, BufferContract):
            if contract not in self.buffers:
                self.buffers.append(contract)
        elif isinstance(contract, AtomicContract):
            if contract not in self.atomics:
                self.atomics.append(contract)
        else:
            raise TypeError(f"not a contract: {contract!r}")

    # ------------------------------------------------------------------ #
    # Queries the dataflow interpreter runs per call site.

    def match_acquire(self, dotted: str) -> Optional[ResourceContract]:
        for contract in self.resources:
            if any(_tail_matches(dotted, name) for name in contract.acquire):
                return contract
        return None

    def match_buffer(self, dotted: str) -> Optional[BufferContract]:
        for contract in self.buffers:
            if any(_tail_matches(dotted, name) for name in contract.acquire):
                return contract
        return None

    def resource(self, name: str) -> Optional[ResourceContract]:
        for contract in self.resources:
            if contract.name == name:
                return contract
        return None

    def buffer(self, name: str) -> Optional[BufferContract]:
        for contract in self.buffers:
            if contract.name == name:
                return contract
        return None

    def is_release_func(self, dotted: str, contract: ResourceContract) -> bool:
        return any(_tail_matches(dotted, name)
                   for name in contract.release_funcs)

    def is_handoff_func(self, dotted: str, contract: ResourceContract) -> bool:
        return any(_tail_matches(dotted, name)
                   for name in contract.handoff_funcs)

    def is_view_func(self, dotted: str, contract: BufferContract) -> bool:
        return any(_tail_matches(dotted, name)
                   for name in contract.view_funcs)

    def protected_suffix(self, text: str) -> Optional[str]:
        """The protected suffix a literal path ends with, if any."""
        for contract in self.atomics:
            for suffix in contract.suffixes:
                if text.endswith(suffix):
                    return suffix
        return None

    def atomic_writers(self) -> frozenset:
        names = set()
        for contract in self.atomics:
            names.update(contract.writers)
        return frozenset(names)


# --------------------------------------------------------------------- #
# Module-declared contracts

def _as_tuple(value: object) -> Tuple[str, ...]:
    if value is None:
        return ()
    if isinstance(value, str):
        return (value,)
    return tuple(str(item) for item in value)


def contracts_from_literal(payload: Dict[str, object]) -> List[object]:
    """Build contract objects from one ``LINT_RESOURCE_CONTRACT`` dict."""
    codec = str(payload.get("codec", "unknown"))
    contracts: List[object] = []
    for entry in payload.get("resources", ()):  # type: ignore[union-attr]
        contracts.append(ResourceContract(
            name=str(entry["name"]), codec=codec,
            acquire=_as_tuple(entry.get("acquire")),
            release_methods=_as_tuple(entry.get("release_methods")),
            release_funcs=_as_tuple(entry.get("release_funcs")),
            handoff_funcs=_as_tuple(entry.get("handoff_funcs"))))
    for entry in payload.get("buffers", ()):  # type: ignore[union-attr]
        contracts.append(BufferContract(
            name=str(entry["name"]), codec=codec,
            acquire=_as_tuple(entry.get("acquire")),
            close_methods=_as_tuple(entry.get("close_methods")),
            view_methods=_as_tuple(entry.get("view_methods")),
            view_attrs=_as_tuple(entry.get("view_attrs")),
            view_funcs=_as_tuple(entry.get("view_funcs"))))
    atomic = payload.get("atomic")
    if isinstance(atomic, dict):
        contracts.append(AtomicContract(
            codec=codec,
            suffixes=_as_tuple(atomic.get("suffixes")),
            writers=_as_tuple(atomic.get("writers"))))
    return contracts


def declared_contracts(tree: ast.Module) -> List[object]:
    """Contracts a module registers via ``LINT_RESOURCE_CONTRACT``.

    The declaration must be a pure literal (``ast.literal_eval``-able);
    anything else is ignored rather than executed.
    """
    for node in tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name)
                and target.id == CONTRACT_ATTRIBUTE):
            continue
        try:
            payload = ast.literal_eval(node.value)
        except (ValueError, SyntaxError):
            return []
        if isinstance(payload, dict):
            return contracts_from_literal(payload)
    return []


def build_registry(contracts: Sequence[object],
                   trees: Iterable[ast.Module] = ()) -> ContractRegistry:
    """Merge the configured contracts with module-declared ones."""
    registry = ContractRegistry.from_contracts(contracts)
    for tree in trees:
        for contract in declared_contracts(tree):
            registry.add(contract)
    return registry
