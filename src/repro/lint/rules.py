"""Rule registry: ids, severities, rationale, and the name tables they use.

A :class:`Rule` is pure metadata — detection logic lives in
:mod:`repro.lint.checks` (per-module AST checks) and
:mod:`repro.lint.engine` (the cross-module reachability pass).  Keeping
the tables here makes the contract auditable in one place and lets the
docs and ``--list-rules`` render straight from the registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

SEVERITY_ERROR = "error"
SEVERITY_WARN = "warn"


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, default severity, and rationale.

    ``example`` and ``fix`` feed ``--explain <RULE>``: a minimal
    violating snippet and the sanctioned repair pattern (including the
    ``# lint:`` directive vocabulary where one applies).
    """

    rule_id: str
    severity: str
    summary: str
    rationale: str
    example: str = ""
    fix: str = ""


RULES: Tuple[Rule, ...] = (
    Rule(
        rule_id="wall-clock",
        severity=SEVERITY_ERROR,
        summary="direct clock read outside repro.util.clock",
        rationale=(
            "time.time()/datetime.now()/perf_counter() make output a "
            "function of when the code ran, not of (seed, config).  All "
            "elapsed-time measurement goes through the injectable "
            "repro.util.clock.Clock so tests can freeze it and replayed "
            "runs stay comparable."
        ),
    ),
    Rule(
        rule_id="raw-entropy",
        severity=SEVERITY_ERROR,
        summary="OS entropy source (os.urandom / uuid / secrets)",
        rationale=(
            "Kernel entropy can never be replayed.  Identifiers and "
            "tokens must be drawn from a derived generator "
            "(repro.util.rng.derive_rng) so two runs with the same seed "
            "emit identical streams."
        ),
    ),
    Rule(
        rule_id="global-random",
        severity=SEVERITY_ERROR,
        summary="module-level random.* call (shared global stream)",
        rationale=(
            "The module-level random functions share one global Mersenne "
            "state: any new consumer perturbs every stream drawn after "
            "it, and worker interleaving makes draws order-dependent.  "
            "Task code must use generators derived via "
            "repro.util.rng.derive_rng (random.Random construction is "
            "allowed)."
        ),
    ),
    Rule(
        rule_id="fs-order",
        severity=SEVERITY_ERROR,
        summary="unsorted filesystem enumeration",
        rationale=(
            "os.listdir/glob.glob/Path.iterdir return entries in an "
            "order the filesystem chooses; anything derived from the "
            "sequence becomes machine-dependent.  Wrap the call in "
            "sorted(...) (or consume it order-insensitively)."
        ),
    ),
    Rule(
        rule_id="iter-order",
        severity=SEVERITY_ERROR,
        summary="unordered iteration flowing into a serialization sink",
        rationale=(
            "Set iteration order depends on PYTHONHASHSEED, and dict "
            "iteration is only deterministic when the insertion order "
            "is.  Where such iteration feeds a serializer "
            "(json.dump*, run.codecs.encode_artifact, "
            "lumscan.serialize, analysis.store), it must be wrapped in "
            "sorted(...) or carry an explicit order guarantee: "
            "# lint: ordered(<why the order is deterministic>)."
        ),
    ),
    Rule(
        rule_id="shared-mutation",
        severity=SEVERITY_ERROR,
        summary="shared self.* mutation on the scan-worker path",
        rationale=(
            "Code reachable from the ScanEngine worker surface runs "
            "concurrently; mutating self state there is a data race "
            "unless it goes through a sanctioned primitive "
            "(util.counters.ShardedCounter, util.cache.LRUCache / "
            "MemoDict), is guarded by a lock attribute, or the owning "
            "class is declared thread-confined "
            "(# lint: confined(<reason>) in the class body) because "
            "instances never cross workers (the queue/merge-in-parent "
            "pattern)."
        ),
    ),
    Rule(
        rule_id="spec-pickle",
        severity=SEVERITY_ERROR,
        summary="*Spec dataclass field is not statically picklable",
        rationale=(
            "Spec dataclasses are the recipes shipped to process-pool "
            "workers; every field annotation must resolve to a "
            "picklable type.  object/Any/Callable (and lock/thread/IO "
            "types) defeat the static guarantee that spawning a worker "
            "replica cannot fail at pickling time."
        ),
    ),
    # ----------------------------------------------------------------- #
    # Flow-sensitive resource-lifetime families (CFG + dataflow).
    Rule(
        rule_id="resource-leak",
        severity=SEVERITY_ERROR,
        summary="acquired handle not released on every path",
        rationale=(
            "Shard exchanges, worldpacks, spill builders, segment "
            "mappings, shm blocks, and mmaps are acquired under a "
            "contract (repro.lint.contracts): every path from the "
            "acquisition to the function exit must release the handle "
            "or transfer ownership (return it, store it on self, pass "
            "it to a contract-listed handoff, or document the transfer "
            "with # lint: handoff(<reason>)).  A branch or early "
            "return that skips the release leaks the segment — and at "
            "top-1M scale every worker multiplies the leak."
        ),
        example=(
            "def scan(handle):\n"
            "    reader = open_shard(handle)\n"
            "    if reader is None:   # impossible, but illustrative\n"
            "        return None      # <- leak: exits without release\n"
            "    rows = count(reader)\n"
            "    reader.close()\n"
            "    return rows"
        ),
        fix=(
            "Use a with-block (with open_shard(handle) as reader: ...) "
            "or release in a finally block so every path passes the "
            "release.  For genuine ownership transfer, return the "
            "handle, register it on self, or annotate the transfer "
            "line with # lint: handoff(<who releases it>)."
        ),
    ),
    Rule(
        rule_id="release-guard",
        severity=SEVERITY_ERROR,
        summary="release runs only on the fall-through path",
        rationale=(
            "A release placed after raise-capable calls executes only "
            "when nothing raised: a worker crash or decode error skips "
            "it and the handle (and its shm segment or spill "
            "directory) outlives the run.  The release must be "
            "exception-safe: inside a finally block, a with-block, or "
            "an except/BaseException cleanup that re-raises."
        ),
        example=(
            "def merge(spec, payloads):\n"
            "    exchange = ShardExchange(mode=spec.mode).open()\n"
            "    merge_all(exchange, payloads)  # <- may raise\n"
            "    exchange.close()               # <- skipped on raise"
        ),
        fix=(
            "Move the release into a finally block:\n"
            "    exchange = ShardExchange(mode=spec.mode).open()\n"
            "    try:\n"
            "        merge_all(exchange, payloads)\n"
            "    finally:\n"
            "        exchange.close()\n"
            "or use the context-manager form (with ShardExchange(...) "
            "as exchange)."
        ),
    ),
    Rule(
        rule_id="buffer-escape",
        severity=SEVERITY_ERROR,
        summary="mapped-buffer view escapes before close()",
        rationale=(
            "Arrays decoded from a SegmentMapping or WorldPackReader "
            "are zero-copy views over the mmap: storing one on self, "
            "in a global, in a closure, or returning it while the "
            "mapping is closed in the same function leaves a dangling "
            "view (or pins the mapping so close() reports failure — "
            "the exact bug PR 7 fixed by hand).  Views must be copied "
            "out (.copy()/bytes()) before the buffer closes, or the "
            "mapping must travel with them."
        ),
        example=(
            "def load(path):\n"
            "    mapping = SegmentMapping(path)\n"
            "    cols = decode_shard(mapping.buffer)\n"
            "    mapping.close()      # <- views in cols now dangle\n"
            "    return cols"
        ),
        fix=(
            "Copy before the close (return {k: v.copy() for ...}) or "
            "keep the mapping open and transfer it together with the "
            "views (return mapping, cols) so the caller owns the "
            "lifetime."
        ),
    ),
    Rule(
        rule_id="atomic-write",
        severity=SEVERITY_ERROR,
        summary="checkpoint write bypasses temp-then-rename",
        rationale=(
            "Checkpoint segments (.lshd), manifests (.lshm / "
            "manifest.json), and worldpacks (.lshw) are only valid "
            "when they appear atomically: a direct open(path, 'wb') "
            "can be interrupted mid-write and leave a torn file that "
            "resume then trusts.  All writes go through the "
            "contract-listed atomic writers, which write a "
            "'.tmp.<pid>' sibling and os.replace() it into place."
        ),
        example=(
            "def save(columns, stem):\n"
            "    with open(f\"{stem}.lshd\", \"wb\") as out:  # <- torn\n"
            "        out.write(encode_shard(columns)[0])      #    on crash"
        ),
        fix=(
            "Call the codec's atomic writer (write_segment_file, "
            "write_manifest, write_worldpack_file, _atomic_write_json, "
            "...) or follow the idiom yourself: write to "
            "f\"{path}.tmp.{os.getpid()}\" and os.replace(tmp, path), "
            "removing the temp on BaseException."
        ),
    ),
)

RULES_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in RULES}


def is_known_rule(rule_id: str) -> bool:
    """True when ``rule_id`` names a registered rule."""
    return rule_id in RULES_BY_ID


# --------------------------------------------------------------------- #
# Name tables the checks interpret.  Dotted names are post-resolution:
# the visitor canonicalizes imports/aliases before the lookup, so
# ``from time import time as now; now()`` still resolves to "time.time".

#: Clock reads (wall and monotonic) banned outside the clock module.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.localtime", "time.gmtime",
    "time.ctime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Files allowed to touch the process clock: the Clock implementation is
#: the single sanctioned boundary between the repo and real time.
SANCTIONED_CLOCK_FILES = ("repro/util/clock.py",)

#: OS entropy sources that can never be replayed from a seed.
RAW_ENTROPY_CALLS = frozenset({
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid3", "uuid.uuid4", "uuid.uuid5",
    "random.SystemRandom",
})

#: Any call into this namespace is raw entropy.
RAW_ENTROPY_PREFIXES = ("secrets.",)

#: Module-level random.* callables that are allowed (constructors of
#: private generators, not draws from the shared global stream).
GLOBAL_RANDOM_ALLOWED = frozenset({
    "random.Random",
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.SeedSequence", "numpy.random.PCG64",
    "numpy.random.Philox",
})

GLOBAL_RANDOM_PREFIXES = ("random.", "numpy.random.")

#: Filesystem enumerations whose order the OS chooses.
FS_ENUM_CALLS = frozenset({
    "os.listdir", "os.scandir", "os.walk",
    "glob.glob", "glob.iglob",
})

#: Method names treated as Path-style enumeration on any receiver.
FS_ENUM_METHODS = frozenset({"iterdir", "rglob"})

#: Wrappers that make enumeration/iteration order irrelevant.
ORDER_FREE_CONSUMERS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all",
    "set", "frozenset", "Counter", "dict",
})

#: Serialization sinks: a function that calls one of these (or is one of
#: these) is a serialization context for the iter-order rule.
SERIALIZATION_SINKS = frozenset({
    "json.dump", "json.dumps",
    "encode_artifact", "dump_dataset", "save_report",
    "_atomic_write_json",
    "encode_shard", "write_shard", "decode_shard",
    "write_segment_file", "dump_dataset_lshd",
    "write_manifest", "dump_dataset_manifest",
    "encode_worldpack", "write_worldpack_file", "write_worldpack_shm",
})

#: Functions whose own body *is* a serializer (context even without a
#: direct sink call in the body).
SERIALIZATION_FUNCTIONS = frozenset({
    "encode_artifact", "dump_dataset", "save_report",
    "encode_shard", "write_shard", "decode_shard",
    "write_segment_file", "dump_dataset_lshd",
    "write_manifest", "dump_dataset_manifest",
    "encode_worldpack", "write_worldpack_file", "write_worldpack_shm",
})

#: Entry points of the scan-engine worker surface.  Reachability for the
#: shared-mutation rule starts here (dotted module paths, optionally
#: Class.method).
WORKER_ROOTS = (
    "repro.lumscan.engine.record_probe",
    "repro.lumscan.engine._process_run_chunk",
    "repro.lumscan.engine.ScanEngine._run_chunk",
    "repro.lumscan.scanner.Lumscan.run_task",
    "repro.proxynet.luminati.LuminatiClient.request",
    "repro.proxynet.transport.fetch_with_redirects",
    "repro.websim.world.World.fetch",
)

#: Concurrency primitives whose mutation API is sanctioned on the worker
#: path (their internal implementation files are likewise exempt).
SANCTIONED_MUTABLE_TYPES = frozenset({
    "ShardedCounter", "LRUCache", "MemoDict",
    "Queue", "SimpleQueue", "LifoQueue", "deque",
})

#: Implementation files of the sanctioned primitives (exempt from the
#: shared-mutation rule — they *are* the synchronization layer).
SANCTIONED_IMPL_FILES = ("repro/util/counters.py", "repro/util/cache.py")

#: Lock-ish types: a with-block on a self attribute of one of these
#: types sanctions the mutations inside it.
LOCK_TYPES = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})

#: Thread-local containers: attribute writes through these are private
#: to the writing thread by construction.
THREAD_LOCAL_TYPES = frozenset({"local"})

#: Mutating method names on unsanctioned receivers.
MUTATOR_METHODS = frozenset({
    "append", "add", "update", "setdefault", "pop", "popitem",
    "clear", "remove", "discard", "extend", "insert", "put",
    "sort", "reverse", "increment", "appendleft", "extendleft",
})

#: Annotation heads that are always picklable.
PICKLABLE_LEAVES = frozenset({
    "str", "int", "float", "bool", "bytes", "complex", "None",
    "NoneType",
})

#: Typing containers whose arguments must recursively be picklable.
PICKLABLE_CONTAINERS = frozenset({
    "Optional", "Tuple", "List", "Dict", "Set", "FrozenSet",
    "Sequence", "Mapping", "Iterable", "Union", "tuple", "list",
    "dict", "set", "frozenset",
})

#: Annotation heads that defeat the static pickling guarantee.
UNPICKLABLE_LEAVES = frozenset({
    "object", "Any", "Callable", "Lock", "RLock", "Thread",
    "TextIO", "BinaryIO", "IO", "Generator", "Iterator",
})
