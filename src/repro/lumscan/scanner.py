"""Lumscan: reliability features layered over the raw Luminati API (§3.2).

Lumscan improves raw proxy measurements four ways, all reproduced here:

1. **Connectivity verification** — before using an exit node, fetch the
   Luminati echo page; exits that cannot reach it are discarded.  The echo
   response also yields the exit's IP and geolocation for bookkeeping.
2. **Retries** — failed requests are repeated a configurable number of
   times on a *different* exit, collapsing transient proxy noise.
3. **Full browser headers** — merely setting User-Agent does not suppress
   bot detection (the §3.1 ZGrab lesson), so Lumscan sends a complete
   browser header set by default (caller-overridable).
4. **Load balancing / rotation** — at most ``requests_per_exit`` requests
   are sent through any exit before rotating, bounding per-user resource
   consumption; requests are spread across superproxies.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

logger = logging.getLogger("repro.lumscan")

from repro.httpsim.messages import Headers
from repro.httpsim.useragent import browser_headers
from repro.lumscan.records import NO_RESPONSE, ScanDataset
from repro.netsim.errors import NoExitAvailable
from repro.proxynet.luminati import ExitNode, LuminatiClient, ProbeResult
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class LumscanConfig:
    """Tuning for a Lumscan run."""

    retries: int = 2                 # extra attempts after a failure
    requests_per_exit: int = 10      # rotation threshold (§3.2)
    superproxies: int = 8            # parallel mediating superproxies
    verify_exits: bool = True        # echo-page connectivity pre-check
    max_redirects: int = 10


class Lumscan:
    """Scanning tool built on a :class:`LuminatiClient`."""

    def __init__(self, luminati: LuminatiClient,
                 config: Optional[LumscanConfig] = None,
                 headers: Optional[Headers] = None,
                 seed: int = 0) -> None:
        self._luminati = luminati
        self._config = config or LumscanConfig()
        self._headers = headers or browser_headers()
        self._rng = derive_rng(seed, "lumscan")
        self._current_exit: Optional[ExitNode] = None
        self._current_exit_uses = 0
        self._current_country: Optional[str] = None
        self.superproxy_loads = [0] * self._config.superproxies

    # ------------------------------------------------------------------ #

    def probe(self, url: str, country: str, epoch: int = 0) -> ProbeResult:
        """One logical measurement: verified exit, retries, rotation."""
        attempts = 1 + self._config.retries
        result: Optional[ProbeResult] = None
        for _ in range(attempts):
            try:
                exit_node = self._next_exit(country)
            except NoExitAvailable as exc:
                return ProbeResult(url=url, country=country, response=None,
                                   error=exc.kind)
            self._balance_superproxy()
            result = self._luminati.request(
                url, country, headers=self._headers, exit_node=exit_node,
                max_redirects=self._config.max_redirects, epoch=epoch)
            if result.ok:
                return result
            # Rotate away from the failing exit before retrying.
            self._current_exit = None
        assert result is not None
        return result

    def scan(self, urls: Sequence[str], countries: Sequence[str],
             samples: int = 3, epoch: int = 0,
             dataset: Optional[ScanDataset] = None) -> ScanDataset:
        """Probe every (country, domain) pair ``samples`` times.

        Results for a pair are appended contiguously, which downstream
        consumers (``ScanDataset.pairs``) rely on.  Progress is logged
        per country at DEBUG level (long scans cover millions of probes).
        """
        data = dataset if dataset is not None else ScanDataset()
        for index, country in enumerate(countries):
            for url in urls:
                domain = self._domain_of(url)
                for _ in range(samples):
                    self._record(data, domain, country,
                                 self.probe(url, country, epoch=epoch))
            logger.debug("scan: country %d/%d (%s) done, %d records",
                         index + 1, len(countries), country, len(data))
        return data

    def resample(self, pairs: Iterable, samples: int, epoch: int = 0,
                 dataset: Optional[ScanDataset] = None) -> ScanDataset:
        """Re-probe specific (domain, country) pairs ``samples`` times."""
        data = dataset if dataset is not None else ScanDataset()
        for domain, country in pairs:
            url = f"http://{domain}/"
            for _ in range(samples):
                self._record(data, domain, country,
                             self.probe(url, country, epoch=epoch))
        return data

    # ------------------------------------------------------------------ #

    @staticmethod
    def _domain_of(url: str) -> str:
        host = url.split("://", 1)[-1].split("/", 1)[0]
        return host[4:] if host.startswith("www.") else host

    @staticmethod
    def _record(data: ScanDataset, domain: str, country: str,
                result: ProbeResult) -> None:
        if result.ok:
            response = result.response
            data.append(domain, country, response.status, len(response.body),
                        response.body, interfered=result.interfered)
        else:
            data.append(domain, country, NO_RESPONSE, 0, None, error=result.error)

    def _next_exit(self, country: str) -> ExitNode:
        rotate = (
            self._current_exit is None
            or self._current_country != country
            or self._current_exit_uses >= self._config.requests_per_exit
        )
        if rotate:
            self._current_exit = self._pick_verified_exit(country)
            self._current_exit_uses = 0
            self._current_country = country
        self._current_exit_uses += 1
        return self._current_exit

    def _pick_verified_exit(self, country: str) -> ExitNode:
        for _ in range(5):
            node = self._luminati.pick_exit(country, rng=self._rng)
            if not self._config.verify_exits:
                return node
            echo = self._luminati.verify_connectivity(node)
            if echo.get("ip"):
                return node
        return self._luminati.pick_exit(country, rng=self._rng)

    def _balance_superproxy(self) -> int:
        index = self.superproxy_loads.index(min(self.superproxy_loads))
        self.superproxy_loads[index] += 1
        return index
