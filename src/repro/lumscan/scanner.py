"""Lumscan: reliability features layered over the raw Luminati API (§3.2).

Lumscan improves raw proxy measurements four ways, all reproduced here:

1. **Connectivity verification** — before using an exit node, fetch the
   Luminati echo page; exits that cannot reach it are discarded.  The echo
   response also yields the exit's IP and geolocation for bookkeeping.
2. **Retries** — failed requests are repeated a configurable number of
   times on a *different* exit, collapsing transient proxy noise.
3. **Full browser headers** — merely setting User-Agent does not suppress
   bot detection (the §3.1 ZGrab lesson), so Lumscan sends a complete
   browser header set by default (caller-overridable).
4. **Load balancing / rotation** — at most ``requests_per_exit`` requests
   are sent through any exit before rotating, bounding per-user resource
   consumption; requests are spread round-robin across superproxies.

Scan-shaped work (``scan`` / ``resample``) runs through the task model of
:mod:`repro.lumscan.engine`: each (country, url, sample) probe owns a
derived RNG and its own exit-rotation state, so the dataset a scan
produces is a pure function of the seed and the task list — independent
of execution order, and therefore shardable across the engine's worker
pool without changing a single byte of output.
"""

from __future__ import annotations

import logging
import random
import threading
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

logger = logging.getLogger("repro.lumscan")

from repro.httpsim.messages import BodyPolicy, Headers
from repro.httpsim.useragent import browser_headers
from repro.lumscan.engine import (
    ProbeTask,
    ScanEngine,
    WorkerBuildInfo,
    WorkerInitStats,
    record_probe,
)
from repro.lumscan.records import BODY_KEEP_THRESHOLD, ScanDataset
from repro.netsim.errors import NoExitAvailable
from repro.proxynet.luminati import ExitNode, LuminatiClient, ProbeResult
from repro.util.clock import SYSTEM_CLOCK, Clock
from repro.util.rng import derive_rng
from repro.websim.world import WorldConfig
from repro.websim.worldpack import WorldPack, WorldPackHandle, freeze_world


@dataclass(frozen=True)
class LumscanConfig:
    """Tuning for a Lumscan run."""

    retries: int = 2                 # extra attempts after a failure
    requests_per_exit: int = 10      # rotation threshold (§3.2)
    superproxies: int = 8            # parallel mediating superproxies
    verify_exits: bool = True        # echo-page connectivity pre-check
    max_redirects: int = 10


@dataclass(frozen=True)
class ScannerSpec:
    """A picklable recipe for rebuilding a scanner in another process.

    Everything that determines a scanner's behaviour is derived from seeds
    and frozen configs, so shipping this spec (instead of the scanner's
    megabytes of lazily-built world state) and rebuilding once per worker
    process yields a replica whose probe outcomes are bit-identical — the
    same per-task derived-RNG contract that makes thread sharding safe.

    ``world_source``, when set, points at a frozen worldpack (see
    :mod:`repro.websim.worldpack`): the worker maps it zero-copy instead
    of rebuilding the world.  The pack is an optimization, never a
    dependency — if the mapping fails (unlinked block, missing file,
    fingerprint mismatch, platform without shareable segments) the
    worker falls back to the spec rebuild, which produces bit-identical
    probe outcomes by construction.
    """

    world_config: WorldConfig
    luminati_seed: int
    exits_per_country: int
    scanner_seed: int
    config: LumscanConfig
    header_items: Tuple[Tuple[str, str], ...]
    body_policy: Optional[BodyPolicy]
    world_source: Optional[WorldPackHandle] = None

    def build(self) -> "Lumscan":
        """Construct the scanner replica (called once per worker process)."""
        return self.build_timed(SYSTEM_CLOCK)[0]

    def build_timed(self, clock: Clock) -> Tuple["Lumscan", WorkerBuildInfo]:
        """Like :meth:`build`, but reports how the world came to be.

        The returned :class:`WorkerBuildInfo` carries the world's actual
        source ("pack" when the worldpack mapped, "build" after the
        rebuild fallback) and the wall seconds the world step took,
        measured on the injectable ``clock``.
        """
        from repro.websim.world import World

        stopwatch = clock.stopwatch()
        world = None
        if self.world_source is not None:
            try:
                from repro.websim.worldpack import load_world

                world = load_world(self.world_source)
            except (OSError, ValueError) as exc:
                logger.debug("worldpack %s unavailable (%s); rebuilding",
                             self.world_source.ref, exc)
        if world is None:
            world = World(self.world_config)
        info = WorkerBuildInfo(source=world.source,
                               build_seconds=stopwatch.elapsed())
        luminati = LuminatiClient(world, seed=self.luminati_seed,
                                  exits_per_country=self.exits_per_country)
        scanner = Lumscan(luminati, config=self.config,
                          headers=Headers(list(self.header_items)),
                          seed=self.scanner_seed, body_policy=self.body_policy)
        return scanner, info


@dataclass
class RotationState:
    """Exit-rotation bookkeeping for one probe stream.

    Scan tasks each own a fresh state (per-task rotation); the legacy
    ``probe()`` entry point keeps one long-lived instance state.
    """

    exit_node: Optional[ExitNode] = None
    uses: int = 0
    country: Optional[str] = None


class Lumscan:
    """Scanning tool built on a :class:`LuminatiClient`."""

    def __init__(self, luminati: LuminatiClient,
                 config: Optional[LumscanConfig] = None,
                 headers: Optional[Headers] = None,
                 seed: int = 0,
                 body_policy: Optional[BodyPolicy] = None) -> None:
        self._luminati = luminati
        self._config = config or LumscanConfig()
        self._headers = headers or browser_headers()
        self._seed = seed
        self._rng = derive_rng(seed, "lumscan")
        self._rotation = RotationState()
        # Scan tasks only keep lengths of large 200-bodies (ScanDataset
        # drops them past BODY_KEEP_THRESHOLD), so by default they declare
        # that and let the origin elide exactly those bodies.  Pass
        # BodyPolicy.full() to force materialization; ad-hoc probe() calls
        # always materialize.
        self._task_body_policy = (body_policy if body_policy is not None
                                  else BodyPolicy.lengths_over(BODY_KEEP_THRESHOLD))
        self.superproxy_loads = [0] * self._config.superproxies
        self._superproxy_cursor = 0
        self._superproxy_lock = threading.Lock()
        self._worker_init_stats = WorkerInitStats()

    # ------------------------------------------------------------------ #

    def probe(self, url: str, country: str, epoch: int = 0,
              rng: Optional[random.Random] = None) -> ProbeResult:
        """One logical measurement: verified exit, retries, rotation.

        Without ``rng`` this consumes the scanner's shared stream and
        long-lived rotation state (ad-hoc probing).  With ``rng`` the probe
        is self-contained: private rotation state, every draw from the
        caller's rng — the form scan tasks use.
        """
        if rng is None:
            return self._probe(url, country, epoch, self._rng, self._rotation)
        return self._probe(url, country, epoch, rng, RotationState())

    def run_task(self, task: ProbeTask) -> ProbeResult:
        """Execute one scan task with its derived RNG (engine entry point)."""
        return self._probe(task.url, task.country, task.epoch,
                           self.task_rng(task), RotationState(),
                           body_policy=self._task_body_policy)

    def task_rng(self, task: ProbeTask) -> random.Random:
        """The private RNG owned by one scan task.

        Seeded from the task's full identity, so any worker that picks the
        task up draws the identical stream.
        """
        return derive_rng(self._seed, "task", task.country, task.domain,
                          task.sample_idx, task.epoch)

    def scan(self, urls: Sequence[str], countries: Sequence[str],
             samples: int = 3, epoch: int = 0,
             dataset: Optional[ScanDataset] = None,
             workers: int = 1, executor: str = "thread") -> ScanDataset:
        """Probe every (country, domain) pair ``samples`` times.

        Results for a pair are appended contiguously, which downstream
        consumers (``ScanDataset.pairs``) rely on.  ``workers`` > 1 shards
        the task space across a worker pool via :class:`ScanEngine`
        (``executor`` picks threads or processes); the output is identical
        to ``workers=1`` regardless of count or executor.
        """
        return ScanEngine(self, workers=workers, executor=executor).scan(
            urls, countries, samples=samples, epoch=epoch, dataset=dataset)

    def resample(self, pairs: Iterable, samples: int, epoch: int = 0,
                 dataset: Optional[ScanDataset] = None,
                 workers: int = 1, executor: str = "thread") -> ScanDataset:
        """Re-probe specific (domain, country) pairs ``samples`` times."""
        return ScanEngine(self, workers=workers, executor=executor).resample(
            pairs, samples, epoch=epoch, dataset=dataset)

    # ------------------------------------------------------------------ #
    # Process-executor support

    def spawn_spec(self,
                   world_source: Optional[WorldPackHandle] = None
                   ) -> ScannerSpec:
        """The picklable recipe a worker process rebuilds this scanner from.

        ``world_source`` optionally points workers at a frozen worldpack
        to map instead of rebuilding the world (see
        :meth:`freeze_world_pack`).
        """
        luminati = self._luminati
        return ScannerSpec(
            world_config=luminati.world.config,
            luminati_seed=luminati.seed,
            exits_per_country=luminati.exits_per_country,
            scanner_seed=self._seed,
            config=self._config,
            header_items=tuple(self._headers.items()),
            body_policy=self._task_body_policy,
            world_source=world_source,
        )

    def freeze_world_pack(self, mode: str = "auto",
                          directory: Optional[str] = None) -> WorldPack:
        """Freeze this scanner's world for zero-copy worker mapping.

        The caller owns the returned pack and must ``release()`` it once
        the pool is done (the engine does this in its ``finally``).
        """
        return freeze_world(self._luminati.world, mode=mode,
                            directory=directory)

    def worker_counts(self) -> Tuple[int, int]:
        """(requests, fetches) served so far — delta source for workers."""
        return (self._luminati.request_count,
                self._luminati.world.fetch_count)

    def worker_init_stats(self) -> WorkerInitStats:
        """Accumulated worker spawn/world-build costs absorbed so far."""
        return self._worker_init_stats

    def absorb_worker_counts(self, requests: int, fetches: int,
                             token: Optional[str] = None,
                             init_stats: Optional[WorkerInitStats] = None
                             ) -> None:
        """Fold a worker replica's traffic deltas into this scanner's stats.

        ``token``, when given, identifies the batch of deltas; absorbing
        the same token twice raises, so a retried chunk can never
        double-count traffic totals.  ``init_stats`` additionally folds
        the pool's worker spawn-time/world-build-time accounting into
        :meth:`worker_init_stats` (sums, except ``rss_peak_bytes`` which
        takes the max).
        """
        self._luminati.absorb_worker_counts(requests, fetches, token=token)
        if init_stats is not None and init_stats.spawned:
            prior = self._worker_init_stats
            self._worker_init_stats = WorkerInitStats(
                spawned=prior.spawned + init_stats.spawned,
                spawn_seconds=prior.spawn_seconds + init_stats.spawn_seconds,
                build_seconds=prior.build_seconds + init_stats.build_seconds,
                pack_loads=prior.pack_loads + init_stats.pack_loads,
                rss_peak_bytes=max(prior.rss_peak_bytes,
                                   init_stats.rss_peak_bytes),
            )

    # ------------------------------------------------------------------ #

    @staticmethod
    def _domain_of(url: str) -> str:
        host = url.split("://", 1)[-1].split("/", 1)[0]
        return host[4:] if host.startswith("www.") else host

    def _probe(self, url: str, country: str, epoch: int,
               rng: random.Random, state: RotationState,
               body_policy: Optional[BodyPolicy] = None) -> ProbeResult:
        attempts = 1 + self._config.retries
        result: Optional[ProbeResult] = None
        for _ in range(attempts):
            rotate = (
                state.exit_node is None
                or state.country != country
                or state.uses >= self._config.requests_per_exit
            )
            if rotate:
                try:
                    state.exit_node = self._pick_verified_exit(country, rng)
                except NoExitAvailable as exc:
                    return ProbeResult(url=url, country=country, response=None,
                                       error=exc.kind)
                state.uses = 0
                state.country = country
            state.uses += 1
            self._balance_superproxy()
            result = self._luminati.request(
                url, country, headers=self._headers, exit_node=state.exit_node,
                max_redirects=self._config.max_redirects, epoch=epoch, rng=rng,
                body_policy=body_policy)
            if result.ok:
                return result
            # Rotate away from the failing exit before retrying.
            state.exit_node = None
        assert result is not None
        return result

    def _pick_verified_exit(self, country: str,
                            rng: random.Random) -> ExitNode:
        for _ in range(5):
            node = self._luminati.pick_exit(country, rng=rng)
            if not self._config.verify_exits:
                return node
            echo = self._luminati.verify_connectivity(node)
            if echo.get("ip"):
                return node
        return self._luminati.pick_exit(country, rng=rng)

    def _balance_superproxy(self) -> int:
        # Round-robin by counter: O(1) instead of an O(superproxies) min()
        # scan, and trivially balanced (loads never differ by more than 1).
        with self._superproxy_lock:
            index = self._superproxy_cursor
            self._superproxy_cursor = (index + 1) % len(self.superproxy_loads)
            self.superproxy_loads[index] += 1
            return index

    # Kept as an alias so existing callers/tests that append probe results
    # to datasets keep working; the implementation lives in the engine.
    _record = staticmethod(record_probe)
