"""Compact storage for scan results.

A full Top-10K study is 8,003 domains × 177 countries × 3 samples ≈ 4.2M
records, so :class:`ScanDataset` is column-oriented: parallel arrays plus a
sparse body store.  Bodies are retained only when they can possibly matter
to the pipeline — non-200 responses and short pages (every CDN block page,
captcha, and challenge is well under the threshold); multi-hundred-KB
origin pages keep only their length, which is all the outlier heuristic
needs.
"""

from __future__ import annotations

import sys
from array import array
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

#: Bodies at or below this length are always retained.
BODY_KEEP_THRESHOLD = 6_000

#: Sentinel status for failed probes (no HTTP response).
NO_RESPONSE = 0


@dataclass(frozen=True)
class Sample:
    """One probe outcome (a row view over the column store)."""

    domain: str
    country: str
    status: int                  # HTTP status, or NO_RESPONSE on failure
    length: int                  # body length (0 on failure)
    body: Optional[str]          # retained body, when kept
    error: Optional[str]         # FetchError.kind on failure
    interfered: bool = False     # ground-truth flag: local-firewall artifact

    @property
    def ok(self) -> bool:
        """True when an HTTP response was received."""
        return self.status != NO_RESPONSE


class ScanDataset:
    """Column-oriented collection of :class:`Sample` records.

    Records are stored in append order.  The scanners append samples for a
    (country, domain) pair contiguously, and `pairs()` exploits that to
    iterate without building a giant index.
    """

    def __init__(self) -> None:
        self._domains: List[str] = []
        self._countries: List[str] = []
        self._statuses = array("h")
        self._lengths = array("l")
        self._errors: List[Optional[str]] = []
        self._bodies: Dict[int, str] = {}
        self._interfered: set = set()

    def append(self, domain: str, country: str, status: int, length: int,
               body: Optional[str], error: Optional[str] = None,
               interfered: bool = False) -> None:
        """Append one record (bodies above the threshold are dropped)."""
        index = len(self._domains)
        self._domains.append(sys.intern(domain))
        self._countries.append(sys.intern(country))
        self._statuses.append(status)
        self._lengths.append(length)
        self._errors.append(error)
        if body is not None and (status != 200 or length <= BODY_KEEP_THRESHOLD):
            self._bodies[index] = body
        if interfered:
            self._interfered.add(index)

    def __len__(self) -> int:
        return len(self._domains)

    def row(self, index: int) -> Sample:
        """Materialize the record at ``index``."""
        return Sample(
            domain=self._domains[index],
            country=self._countries[index],
            status=self._statuses[index],
            length=self._lengths[index],
            body=self._bodies.get(index),
            error=self._errors[index],
            interfered=index in self._interfered,
        )

    def __iter__(self) -> Iterator[Sample]:
        for index in range(len(self)):
            yield self.row(index)

    def pairs(self) -> Iterator[Tuple[str, str, List[Sample]]]:
        """Iterate (domain, country, samples) over contiguous runs."""
        n = len(self)
        start = 0
        while start < n:
            end = start
            domain = self._domains[start]
            country = self._countries[start]
            while (end < n and self._domains[end] is domain
                   and self._countries[end] is country):
                end += 1
            yield domain, country, [self.row(i) for i in range(start, end)]
            start = end

    def lengths_by_domain(self) -> Dict[str, List[int]]:
        """Map domain -> all observed 200-response body lengths."""
        out: Dict[str, List[int]] = {}
        for i in range(len(self)):
            if self._statuses[i] == 200:
                out.setdefault(self._domains[i], []).append(self._lengths[i])
        return out

    def domains(self) -> List[str]:
        """Unique domains in first-seen order."""
        seen: Dict[str, None] = {}
        for d in self._domains:
            if d not in seen:
                seen[d] = None
        return list(seen)

    def countries(self) -> List[str]:
        """Unique countries in first-seen order."""
        seen: Dict[str, None] = {}
        for c in self._countries:
            if c not in seen:
                seen[c] = None
        return list(seen)

    def extend(self, other: "ScanDataset") -> None:
        """Append all records of ``other`` to this dataset."""
        offset = len(self)
        self._domains.extend(other._domains)
        self._countries.extend(other._countries)
        self._statuses.extend(other._statuses)
        self._lengths.extend(other._lengths)
        self._errors.extend(other._errors)
        for idx, body in other._bodies.items():
            self._bodies[offset + idx] = body
        for idx in other._interfered:
            self._interfered.add(offset + idx)

    def count_status(self, status: int) -> int:
        """Number of records with the given HTTP status."""
        return sum(1 for s in self._statuses if s == status)

    def error_rate_by_domain(self) -> Dict[str, float]:
        """Fraction of failed probes per domain."""
        totals: Dict[str, int] = {}
        fails: Dict[str, int] = {}
        for i in range(len(self)):
            d = self._domains[i]
            totals[d] = totals.get(d, 0) + 1
            if self._statuses[i] == NO_RESPONSE:
                fails[d] = fails.get(d, 0) + 1
        return {d: fails.get(d, 0) / totals[d] for d in totals}

    def response_rate_by_country(self) -> Dict[str, float]:
        """Per country: fraction of domains with >= 1 valid response."""
        responded: Dict[str, set] = {}
        tested: Dict[str, set] = {}
        for i in range(len(self)):
            c = self._countries[i]
            tested.setdefault(c, set()).add(self._domains[i])
            if self._statuses[i] != NO_RESPONSE:
                responded.setdefault(c, set()).add(self._domains[i])
        return {c: len(responded.get(c, ())) / len(doms)
                for c, doms in tested.items()}
