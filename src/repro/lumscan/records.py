"""Compact columnar storage for scan results.

A full Top-10K study is 8,003 domains × 177 countries × 3 samples ≈ 4.2M
records, so :class:`ScanDataset` is a genuine column store: domain,
country, and error kind are integer-coded categoricals (a code table of
unique strings plus an integer index array per column), status and
length live in numpy arrays, and bodies sit in a sparse side table.
Bodies are retained only
when they can possibly matter to the pipeline — non-200 responses and
short pages (every CDN block page, captcha, and challenge is well under
the threshold); multi-hundred-KB origin pages keep only their length,
which is all the outlier heuristic needs.

The aggregation kernels (``count_status``, ``error_rate_by_domain``,
``response_rate_by_country``, ``lengths_by_domain``) are vectorized over
the code arrays — bincount-style grouping instead of per-row Python
loops — and the column accessors (:meth:`status_array`, ...) let the
analysis layer (``repro.core.lengths`` and friends) run at numpy speed
too.  Scalar reference implementations of every kernel are retained in
:mod:`repro.core.reference` for equivalence testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Collection,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

#: Bodies at or below this length are always retained.
BODY_KEEP_THRESHOLD = 6_000

#: Sentinel status for failed probes (no HTTP response).
NO_RESPONSE = 0

#: Error-code sentinel for rows that carried an HTTP response.
NO_ERROR = -1

_INITIAL_CAPACITY = 64


@dataclass(frozen=True)
class Sample:
    """One probe outcome (a row view over the column store)."""

    domain: str
    country: str
    status: int                  # HTTP status, or NO_RESPONSE on failure
    length: int                  # body length (0 on failure)
    body: Optional[str]          # retained body, when kept
    error: Optional[str]         # FetchError.kind on failure
    interfered: bool = False     # ground-truth flag: local-firewall artifact

    @property
    def ok(self) -> bool:
        """True when an HTTP response was received."""
        return self.status != NO_RESPONSE


@dataclass(frozen=True)
class ShardColumns:
    """A dataset's columns as one flat, transport-ready bundle.

    This is the exchange currency between :class:`ScanDataset` and the
    shard codec in :mod:`repro.lumscan.shards`: five fixed-dtype row
    columns, three string code tables, and the two sparse side tables.
    :meth:`ScanDataset.export_columns` produces one (zero-copy views over
    the live buffers — treat it as a frozen snapshot, invalidated by
    further appends) and :meth:`ScanDataset.extend_columns` consumes one,
    so a merge never needs the source ``ScanDataset`` object itself.
    """

    n: int                           # row count (arrays are exactly this long)
    dcodes: np.ndarray               # int32 domain code per row
    ccodes: np.ndarray               # int32 country code per row
    statuses: np.ndarray             # int16 HTTP status per row
    lengths: np.ndarray              # int64 body length per row
    ecodes: np.ndarray               # int16 error code per row (NO_ERROR = ok)
    domain_names: Sequence[str]      # domain code table, first-seen order
    country_names: Sequence[str]     # country code table, first-seen order
    error_names: Sequence[str]       # error-kind code table, first-seen order
    bodies: Mapping[int, str]        # retained bodies keyed by row index
    interfered: Collection[int]      # row indices flagged as interfered


@dataclass(frozen=True)
class ColumnChunk:
    """One contiguous slice of a logical dataset's numeric columns.

    The unit of segmented kernel execution: every analysis kernel that
    folds partial aggregates (``repro.core.lengths`` and friends) walks
    :meth:`DatasetReader.iter_column_chunks` instead of materializing
    whole-dataset arrays.  Codes are **global** — a multi-segment
    dataset remaps each segment's local codes through its merged tables
    before yielding, so ``dcodes``/``ccodes`` index the same
    ``domains()``/``countries()`` tables regardless of how the rows are
    physically sharded.
    """

    offset: int              # global row index of this chunk's first row
    n: int                   # rows in this chunk
    dcodes: np.ndarray       # int32 global domain code per row
    ccodes: np.ndarray       # int32 global country code per row
    statuses: np.ndarray     # int16 HTTP status per row
    lengths: np.ndarray      # int64 body length per row


class DatasetReader(Protocol):
    """The narrowed read surface the analysis layer consumes.

    Both :class:`ScanDataset` (one flat segment) and
    :class:`SegmentedScanDataset` (a manifest of segments read as one
    logical dataset) satisfy this protocol; everything in ``repro.core``
    and ``repro.analysis`` that only *reads* scan results is typed
    against it, so kernels are agnostic to physical layout.  Mutation
    (``append``/``extend``) is deliberately outside the protocol —
    producers build concrete :class:`ScanDataset` objects.
    """

    def __len__(self) -> int: ...
    def row(self, index: int) -> Sample: ...
    def __iter__(self) -> Iterator[Sample]: ...
    def body(self, index: int) -> Optional[str]: ...
    def error(self, index: int) -> Optional[str]: ...
    def domains(self) -> List[str]: ...
    def countries(self) -> List[str]: ...
    def domain_code(self, domain: str) -> Optional[int]: ...
    def country_code(self, country: str) -> Optional[int]: ...
    def status_array(self) -> np.ndarray: ...
    def length_array(self) -> np.ndarray: ...
    def domain_code_array(self) -> np.ndarray: ...
    def country_code_array(self) -> np.ndarray: ...
    def ok_array(self) -> np.ndarray: ...
    def has_body_array(self) -> np.ndarray: ...
    def country_mask(self, countries) -> np.ndarray: ...
    def iter_runs(self) -> Iterator[Tuple[str, str, int, int]]: ...
    def pairs(self) -> Iterator[Tuple[str, str, List[Sample]]]: ...
    def iter_column_chunks(self) -> Iterator[ColumnChunk]: ...
    def count_status(self, status: int) -> int: ...
    def error_rate_by_domain(self) -> Dict[str, float]: ...
    def response_rate_by_country(self) -> Dict[str, float]: ...
    def lengths_by_domain(self) -> Dict[str, List[int]]: ...


class ScanDataset:
    """Column-oriented collection of :class:`Sample` records.

    Records are stored in append order.  The scanners append samples for a
    (country, domain) pair contiguously, and `pairs()` exploits that to
    iterate without building a giant index.  Run boundaries are detected
    by *code equality*, never object identity, so datasets survive any
    round trip (JSON, merge, inter-process) without fragmenting runs.
    """

    # Each engine worker appends to its own shard-local dataset; shards
    # are merged in the parent via extend(), so no instance is ever
    # written from two threads.
    # lint: confined(per-worker shards merged in parent)

    #: Growable numpy row columns, in canonical shard order.
    COLUMN_BUFFERS = ("_dcodes", "_ccodes", "_statuses", "_lengths", "_ecodes")

    def __init__(self) -> None:
        # Categorical code tables: string -> code, and code -> string.
        self._domain_code: Dict[str, int] = {}
        self._domain_names: List[str] = []
        self._country_code: Dict[str, int] = {}
        self._country_names: List[str] = []
        self._error_code: Dict[str, int] = {}
        self._error_names: List[str] = []
        # Row columns (growable numpy buffers; valid rows are [:_n]).
        self._n = 0
        self._dcodes = np.empty(_INITIAL_CAPACITY, dtype=np.int32)
        self._ccodes = np.empty(_INITIAL_CAPACITY, dtype=np.int32)
        self._statuses = np.empty(_INITIAL_CAPACITY, dtype=np.int16)
        self._lengths = np.empty(_INITIAL_CAPACITY, dtype=np.int64)
        self._ecodes = np.empty(_INITIAL_CAPACITY, dtype=np.int16)
        # Sparse side tables.
        self._bodies: Dict[int, str] = {}
        self._interfered: Set[int] = set()
        # Backing segment mapping for mapped datasets (see from_columns).
        self._source: Optional[object] = None
        self._closed = False

    @classmethod
    def from_columns(cls, cols: ShardColumns,
                     source: Optional[object] = None) -> "ScanDataset":
        """Adopt a column bundle as a dataset without copying the rows.

        The inverse of :meth:`export_columns`: the five row columns are
        taken as-is — for a decoded LSHD segment they are zero-copy
        views over the mapping, so a million-row checkpoint opens in
        O(columns) — and the code dicts are rebuilt from the name
        tables.  ``source`` (a
        :class:`~repro.lumscan.shards.SegmentMapping`) hands this
        dataset ownership of the mapping's lifetime; release it with
        :meth:`close`.  Mapped datasets are fully functional: the
        kernels and accessors run directly on the mapped buffers, and
        the first append detaches into fresh writable buffers via the
        usual capacity growth.
        """
        data = cls.__new__(cls)
        data._domain_names = list(cols.domain_names)
        data._domain_code = {name: code
                             for code, name in enumerate(data._domain_names)}
        data._country_names = list(cols.country_names)
        data._country_code = {name: code
                              for code, name in enumerate(data._country_names)}
        data._error_names = list(cols.error_names)
        data._error_code = {name: code
                            for code, name in enumerate(data._error_names)}
        m = cols.n
        data._n = m
        data._dcodes = cols.dcodes[:m]
        data._ccodes = cols.ccodes[:m]
        data._statuses = cols.statuses[:m]
        data._lengths = cols.lengths[:m]
        data._ecodes = cols.ecodes[:m]
        data._bodies = {int(row): body for row, body in cols.bodies.items()}
        data._interfered = {int(row) for row in cols.interfered}
        data._source = source
        data._closed = False
        return data

    @property
    def is_mapped(self) -> bool:
        """True while the columns are views over a backing segment mapping."""
        return self._source is not None

    def close(self) -> bool:
        """Invalidate this dataset and release its backing mapping.

        After close the dataset reads as empty and the column accessors
        raise; views handed out earlier (``status_array()`` and
        friends) stay valid — they pin the mapping until they are
        garbage-collected, in which case close returns False and the OS
        reclaims the pages when the last view dies.  Closing a plain
        in-memory dataset just empties it.
        """
        self._closed = True
        self._n = 0
        for name in self.COLUMN_BUFFERS:
            # Read only the dtype: a local reference to the buffer
            # itself would pin the mapping through source.close() below.
            dtype = getattr(self, name).dtype
            setattr(self, name, np.empty(0, dtype=dtype))
        self._bodies = {}
        self._interfered = set()
        source, self._source = self._source, None
        return True if source is None else source.close()

    # ------------------------------------------------------------------ #
    # Mutation

    def _reserve(self, capacity: int) -> None:
        current = self._dcodes.shape[0]
        if capacity <= current:
            return
        new = max(capacity, current * 2)
        for name in self.COLUMN_BUFFERS:
            old = getattr(self, name)
            grown = np.empty(new, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)

    @staticmethod
    def _intern(code_of: Dict[str, int], names: List[str], value: str) -> int:
        code = code_of.get(value)
        if code is None:
            code = len(names)
            code_of[value] = code
            names.append(value)
        return code

    def append(self, domain: str, country: str, status: int, length: int,
               body: Optional[str], error: Optional[str] = None,
               interfered: bool = False) -> None:
        """Append one record (bodies above the threshold are dropped)."""
        if self._closed:
            raise ValueError("dataset is closed")
        index = self._n
        self._reserve(index + 1)
        self._dcodes[index] = self._intern(self._domain_code,
                                           self._domain_names, domain)
        self._ccodes[index] = self._intern(self._country_code,
                                           self._country_names, country)
        self._statuses[index] = status
        self._lengths[index] = length
        self._ecodes[index] = NO_ERROR if error is None else \
            self._intern(self._error_code, self._error_names, error)
        if body is not None and (status != 200 or length <= BODY_KEEP_THRESHOLD):
            self._bodies[index] = body
        if interfered:
            self._interfered.add(index)
        self._n = index + 1

    def extend(self, other: "ScanDataset") -> None:
        """Append all records of ``other``, reconciling the code tables.

        The other dataset's categorical codes are remapped through this
        dataset's tables (one dict lookup per *unique* label), then the
        row columns are copied in bulk — no per-row Python work.
        """
        self.extend_columns(other.export_columns())

    def export_columns(self) -> ShardColumns:
        """This dataset's columns as a flat :class:`ShardColumns` bundle.

        The arrays are read-only zero-copy views over the live buffers
        (trimmed to the valid prefix) and the tables are the live
        containers; the bundle is a snapshot that later appends to this
        dataset invalidate.  This is the export half of the shard
        exchange — the shard codec serializes exactly these fields.
        """
        return ShardColumns(
            n=self._n,
            dcodes=self._view(self._dcodes),
            ccodes=self._view(self._ccodes),
            statuses=self._view(self._statuses),
            lengths=self._view(self._lengths),
            ecodes=self._view(self._ecodes),
            domain_names=self._domain_names,
            country_names=self._country_names,
            error_names=self._error_names,
            bodies=self._bodies,
            interfered=self._interfered,
        )

    def extend_columns(self, cols: ShardColumns) -> None:
        """Append all rows of a :class:`ShardColumns` bundle.

        The import half of the shard exchange: categorical codes are
        remapped through this dataset's tables (one dict lookup per
        *unique* label), then the row columns are copied in bulk — no
        per-row Python work.  Appending bundles in chunk-sequence order
        reproduces a serial scan bit-for-bit, because code tables intern
        labels in first-seen row order.
        """
        if self._closed:
            raise ValueError("dataset is closed")
        m = cols.n
        if m == 0:
            return
        offset = self._n
        dmap = np.fromiter(
            (self._intern(self._domain_code, self._domain_names, name)
             for name in cols.domain_names),
            dtype=np.int32, count=len(cols.domain_names))
        cmap = np.fromiter(
            (self._intern(self._country_code, self._country_names, name)
             for name in cols.country_names),
            dtype=np.int32, count=len(cols.country_names))
        self._reserve(offset + m)
        self._dcodes[offset:offset + m] = dmap[cols.dcodes[:m]]
        self._ccodes[offset:offset + m] = cmap[cols.ccodes[:m]]
        self._statuses[offset:offset + m] = cols.statuses[:m]
        self._lengths[offset:offset + m] = cols.lengths[:m]
        ecodes = cols.ecodes[:m]
        if len(cols.error_names):
            emap = np.fromiter(
                (self._intern(self._error_code, self._error_names, name)
                 for name in cols.error_names),
                dtype=np.int16, count=len(cols.error_names))
            self._ecodes[offset:offset + m] = np.where(
                ecodes == NO_ERROR, np.int16(NO_ERROR),
                emap[np.maximum(ecodes, 0)])
        else:
            self._ecodes[offset:offset + m] = ecodes
        for idx, body in cols.bodies.items():
            self._bodies[offset + idx] = body
        if cols.interfered:
            self._interfered.update(offset + idx for idx in cols.interfered)
        self._n = offset + m

    # ------------------------------------------------------------------ #
    # Pickling (process-executor transport)

    def __getstate__(self):
        # Ship only the valid prefix of each growable buffer: worker
        # processes return many small chunk datasets, and the empty
        # over-allocated capacity would otherwise dominate the pickle.
        # Mapped datasets pickle as plain copies — the mapping itself
        # never crosses a process boundary.
        state = self.__dict__.copy()
        for name in self.COLUMN_BUFFERS:
            state[name] = self.__dict__[name][: self._n].copy()
        state["_source"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_source", None)
        self.__dict__.setdefault("_closed", False)

    # ------------------------------------------------------------------ #
    # Row access

    def __len__(self) -> int:
        return self._n

    def row(self, index: int) -> Sample:
        """Materialize the record at ``index``."""
        if self._closed:
            raise ValueError("dataset is closed")
        if not 0 <= index < self._n:
            raise IndexError(f"row index {index} out of range")
        return Sample(
            domain=self._domain_names[self._dcodes[index]],
            country=self._country_names[self._ccodes[index]],
            status=int(self._statuses[index]),
            length=int(self._lengths[index]),
            body=self._bodies.get(index),
            error=self.error(index),
            interfered=index in self._interfered,
        )

    def __iter__(self) -> Iterator[Sample]:
        for index in range(self._n):
            yield self.row(index)

    def body(self, index: int) -> Optional[str]:
        """The retained body at ``index`` (None when dropped or absent)."""
        return self._bodies.get(index)

    def error(self, index: int) -> Optional[str]:
        """The error kind at ``index`` (None for HTTP responses)."""
        code = self._ecodes[index]
        return None if code == NO_ERROR else self._error_names[code]

    # ------------------------------------------------------------------ #
    # Columnar views (read-only; shared with the analysis kernels)

    def _view(self, buffer: np.ndarray) -> np.ndarray:
        if self._closed:
            raise ValueError("dataset is closed")
        view = buffer[: self._n]
        view.flags.writeable = False
        return view

    def status_array(self) -> np.ndarray:
        """Status per row (int16 view; NO_RESPONSE for failures)."""
        return self._view(self._statuses)

    def length_array(self) -> np.ndarray:
        """Body length per row (int64 view)."""
        return self._view(self._lengths)

    def domain_code_array(self) -> np.ndarray:
        """Domain code per row (int32 view into :meth:`domains`)."""
        return self._view(self._dcodes)

    def country_code_array(self) -> np.ndarray:
        """Country code per row (int32 view into :meth:`countries`)."""
        return self._view(self._ccodes)

    def domain_code(self, domain: str) -> Optional[int]:
        """Categorical code of ``domain`` (None when never seen)."""
        return self._domain_code.get(domain)

    def country_code(self, country: str) -> Optional[int]:
        """Categorical code of ``country`` (None when never seen)."""
        return self._country_code.get(country)

    def ok_array(self) -> np.ndarray:
        """Boolean mask of rows with an HTTP response."""
        return self.status_array() != NO_RESPONSE

    def has_body_array(self) -> np.ndarray:
        """Boolean mask of rows whose body was retained."""
        mask = np.zeros(self._n, dtype=bool)
        if self._bodies:
            mask[np.fromiter(self._bodies.keys(), dtype=np.int64,
                             count=len(self._bodies))] = True
        return mask

    def country_mask(self, countries) -> np.ndarray:
        """Boolean mask of rows whose country is in ``countries``."""
        allowed = np.zeros(len(self._country_names), dtype=bool)
        for country in countries:
            code = self._country_code.get(country)
            if code is not None:
                allowed[code] = True
        return allowed[self.country_code_array()] if self._n else \
            np.zeros(0, dtype=bool)

    def iter_column_chunks(self) -> Iterator[ColumnChunk]:
        """Yield this dataset's numeric columns as one chunk.

        A flat dataset is its own (single) chunk; its codes are already
        global.  Segmented datasets yield one chunk per segment with
        remapped codes, so kernels written as chunk folds run
        bit-identically on either layout.
        """
        if self._n == 0:
            return
        yield ColumnChunk(
            offset=0,
            n=self._n,
            dcodes=self._view(self._dcodes),
            ccodes=self._view(self._ccodes),
            statuses=self._view(self._statuses),
            lengths=self._view(self._lengths),
        )

    # ------------------------------------------------------------------ #
    # Iteration over contiguous (domain, country) runs

    def iter_runs(self) -> Iterator[Tuple[str, str, int, int]]:
        """Yield (domain, country, start, stop) over contiguous runs.

        Run boundaries come from a single vectorized comparison of the
        code columns; consumers that only need counts or selective row
        access use this to skip Sample materialization entirely.
        """
        n = self._n
        if n == 0:
            return
        dcodes = self._dcodes[:n]
        ccodes = self._ccodes[:n]
        breaks = np.flatnonzero((dcodes[1:] != dcodes[:-1])
                                | (ccodes[1:] != ccodes[:-1])) + 1
        starts = np.concatenate(([0], breaks))
        stops = np.concatenate((breaks, [n]))
        domain_names = self._domain_names
        country_names = self._country_names
        for start, stop in zip(starts.tolist(), stops.tolist()):
            yield (domain_names[dcodes[start]], country_names[ccodes[start]],
                   start, stop)

    def pairs(self) -> Iterator[Tuple[str, str, List[Sample]]]:
        """Iterate (domain, country, samples) over contiguous runs."""
        for domain, country, start, stop in self.iter_runs():
            yield domain, country, [self.row(i) for i in range(start, stop)]

    # ------------------------------------------------------------------ #
    # Vectorized aggregation kernels

    def domains(self) -> List[str]:
        """Unique domains in first-seen order (the code table)."""
        return list(self._domain_names)

    def countries(self) -> List[str]:
        """Unique countries in first-seen order (the code table)."""
        return list(self._country_names)

    def count_status(self, status: int) -> int:
        """Number of records with the given HTTP status."""
        return int(np.count_nonzero(self._statuses[: self._n] == status))

    def error_rate_by_domain(self) -> Dict[str, float]:
        """Fraction of failed probes per domain (bincount grouping)."""
        n = self._n
        if n == 0:
            return {}
        dcodes = self._dcodes[:n]
        n_domains = len(self._domain_names)
        totals = np.bincount(dcodes, minlength=n_domains)
        fails = np.bincount(dcodes[self._statuses[:n] == NO_RESPONSE],
                            minlength=n_domains)
        names = self._domain_names
        return {names[code]: float(fails[code]) / float(totals[code])
                for code in range(n_domains) if totals[code]}

    def response_rate_by_country(self) -> Dict[str, float]:
        """Per country: fraction of domains with >= 1 valid response.

        Distinct (country, domain) combinations are found with one
        ``np.unique`` over a fused 64-bit key instead of per-row set
        insertion.
        """
        n = self._n
        if n == 0:
            return {}
        n_domains = len(self._domain_names)
        n_countries = len(self._country_names)
        keys = self._ccodes[:n].astype(np.int64) * n_domains \
            + self._dcodes[:n]
        tested = np.unique(keys)
        responded = np.unique(keys[self._statuses[:n] != NO_RESPONSE])
        tested_counts = np.bincount(tested // n_domains,
                                    minlength=n_countries)
        responded_counts = np.bincount(responded // n_domains,
                                       minlength=n_countries)
        names = self._country_names
        return {names[code]:
                float(responded_counts[code]) / float(tested_counts[code])
                for code in range(n_countries) if tested_counts[code]}

    def lengths_by_domain(self) -> Dict[str, List[int]]:
        """Map domain -> all observed 200-response body lengths.

        Grouping is a stable argsort over the domain codes of the
        200-status rows, so each domain's lengths keep append order.
        """
        n = self._n
        if n == 0:
            return {}
        hit = np.flatnonzero(self._statuses[:n] == 200)
        if hit.size == 0:
            return {}
        codes = self._dcodes[hit]
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        sorted_lengths = self._lengths[hit][order]
        boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        groups = np.split(sorted_lengths, boundaries)
        names = self._domain_names
        return {names[sorted_codes[start]]: group.tolist()
                for start, group in zip(starts.tolist(), groups)}


class SegmentedScanDataset:
    """A manifest of segments read as **one** logical dataset.

    The multi-segment counterpart of :class:`ScanDataset`: an ordered
    list of per-segment datasets (typically zero-copy mapped LSHD
    segments) presented behind the :class:`DatasetReader` protocol.
    Nothing is merged up front — construction builds only the **global
    code tables** (each part's names interned in part order, exactly the
    first-seen order an ``extend``-merge would produce) and one small
    local→global remap array per part per categorical column.

    Aggregation kernels fold per-segment partial aggregates in the
    global code space, bit-identically to running the flat kernel over
    the same rows in one segment: the global tables equal the merged
    tables, every kernel's output dict iterates ascending global code
    (or, for ``lengths_by_domain``, preserves global append order), and
    the arithmetic is element-wise identical.  Appending history is a
    manifest-level operation (:func:`repro.lumscan.shards.append_segment`)
    — this class is deliberately read-only.
    """

    def __init__(self, parts: Sequence[ScanDataset],
                 fingerprints: Optional[Sequence[Optional[str]]] = None
                 ) -> None:
        self._parts: List[ScanDataset] = list(parts)
        if fingerprints is None:
            self._fingerprints: Tuple[Optional[str], ...] = \
                (None,) * len(self._parts)
        else:
            if len(fingerprints) != len(self._parts):
                raise ValueError("one fingerprint (or None) per part "
                                 "required")
            self._fingerprints = tuple(fingerprints)
        # Global categorical tables: every part's names interned in part
        # order — identical to the first-seen order of an extend-merge.
        self._domain_code: Dict[str, int] = {}
        self._domain_names: List[str] = []
        self._country_code: Dict[str, int] = {}
        self._country_names: List[str] = []
        self._error_code: Dict[str, int] = {}
        self._error_names: List[str] = []
        self._dmaps: List[np.ndarray] = []
        self._cmaps: List[np.ndarray] = []
        for part in self._parts:
            self._dmaps.append(np.fromiter(
                (ScanDataset._intern(self._domain_code, self._domain_names,
                                     name) for name in part._domain_names),
                dtype=np.int32, count=len(part._domain_names)))
            self._cmaps.append(np.fromiter(
                (ScanDataset._intern(self._country_code, self._country_names,
                                     name) for name in part._country_names),
                dtype=np.int32, count=len(part._country_names)))
            for name in part._error_names:
                ScanDataset._intern(self._error_code, self._error_names, name)
        counts = np.array([len(part) for part in self._parts],
                          dtype=np.int64)
        self._starts = np.concatenate(([0], np.cumsum(counts)))
        self._n = int(self._starts[-1])
        self._closed = False
        # Whole-column materializations, built lazily and kept (the
        # analysis layer calls the same accessor repeatedly).
        self._cache: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Structure

    @property
    def parts(self) -> Tuple[ScanDataset, ...]:
        """The per-segment datasets, in logical (manifest) order."""
        return tuple(self._parts)

    @property
    def part_fingerprints(self) -> Tuple[Optional[str], ...]:
        """Per-part segment fingerprints (None for ad-hoc parts)."""
        return self._fingerprints

    @property
    def is_mapped(self) -> bool:
        """True while any part is a view over a backing segment mapping."""
        return any(part.is_mapped for part in self._parts)

    def close(self) -> bool:
        """Close every part and invalidate this dataset.

        Returns False when any part's mapping stays pinned by live
        views (see :meth:`ScanDataset.close`).
        """
        self._closed = True
        self._n = 0
        self._cache = {}
        self._starts = np.zeros(1, dtype=np.int64)
        released = True
        for part in self._parts:
            released = part.close() and released
        return released

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("dataset is closed")

    def _locate(self, index: int) -> Tuple[ScanDataset, int]:
        if not 0 <= index < self._n:
            raise IndexError(f"row index {index} out of range")
        pi = int(np.searchsorted(self._starts, index, side="right")) - 1
        return self._parts[pi], index - int(self._starts[pi])

    def materialize(self) -> ScanDataset:
        """Merge every segment into one flat in-memory dataset.

        Bit-equivalent to having scanned the same rows into a single
        dataset (same interning order); used by re-serialization paths
        and ``load_dataset(mmap=False)``.
        """
        self._check_open()
        merged = ScanDataset()
        for part in self._parts:
            merged.extend(part)
        return merged

    def export_columns(self) -> ShardColumns:
        """The merged logical columns as one flat bundle (copies rows)."""
        return self.materialize().export_columns()

    # ------------------------------------------------------------------ #
    # Row access

    def __len__(self) -> int:
        return self._n

    def row(self, index: int) -> Sample:
        """Materialize the record at the global ``index``."""
        self._check_open()
        part, local = self._locate(index)
        return part.row(local)

    def __iter__(self) -> Iterator[Sample]:
        self._check_open()
        for part in self._parts:
            yield from part

    def body(self, index: int) -> Optional[str]:
        """The retained body at ``index`` (None when dropped or absent)."""
        self._check_open()
        part, local = self._locate(index)
        return part.body(local)

    def error(self, index: int) -> Optional[str]:
        """The error kind at ``index`` (None for HTTP responses)."""
        self._check_open()
        part, local = self._locate(index)
        return part.error(local)

    # ------------------------------------------------------------------ #
    # Columnar views (concatenated lazily, cached)

    def _concat(self, key: str, arrays: List[np.ndarray],
                dtype) -> np.ndarray:
        cached = self._cache.get(key)
        if cached is None:
            if arrays:
                cached = np.concatenate(arrays)
            else:
                cached = np.zeros(0, dtype=dtype)
            cached.flags.writeable = False
            self._cache[key] = cached
        return cached

    def status_array(self) -> np.ndarray:
        """Status per row (int16; NO_RESPONSE for failures)."""
        self._check_open()
        return self._concat("statuses",
                            [part.status_array() for part in self._parts],
                            np.int16)

    def length_array(self) -> np.ndarray:
        """Body length per row (int64)."""
        self._check_open()
        return self._concat("lengths",
                            [part.length_array() for part in self._parts],
                            np.int64)

    def domain_code_array(self) -> np.ndarray:
        """Global domain code per row (int32 into :meth:`domains`)."""
        self._check_open()
        return self._concat(
            "dcodes",
            [dmap[part.domain_code_array()]
             for dmap, part in zip(self._dmaps, self._parts) if len(part)],
            np.int32)

    def country_code_array(self) -> np.ndarray:
        """Global country code per row (int32 into :meth:`countries`)."""
        self._check_open()
        return self._concat(
            "ccodes",
            [cmap[part.country_code_array()]
             for cmap, part in zip(self._cmaps, self._parts) if len(part)],
            np.int32)

    def domain_code(self, domain: str) -> Optional[int]:
        """Global categorical code of ``domain`` (None when never seen)."""
        return self._domain_code.get(domain)

    def country_code(self, country: str) -> Optional[int]:
        """Global categorical code of ``country`` (None when never seen)."""
        return self._country_code.get(country)

    def ok_array(self) -> np.ndarray:
        """Boolean mask of rows with an HTTP response."""
        return self.status_array() != NO_RESPONSE

    def has_body_array(self) -> np.ndarray:
        """Boolean mask of rows whose body was retained."""
        self._check_open()
        return self._concat("has_body",
                            [part.has_body_array() for part in self._parts],
                            bool)

    def country_mask(self, countries) -> np.ndarray:
        """Boolean mask of rows whose country is in ``countries``."""
        self._check_open()
        allowed = np.zeros(len(self._country_names), dtype=bool)
        for country in countries:
            code = self._country_code.get(country)
            if code is not None:
                allowed[code] = True
        return allowed[self.country_code_array()] if self._n else \
            np.zeros(0, dtype=bool)

    def iter_column_chunks(self) -> Iterator[ColumnChunk]:
        """One chunk per segment, codes remapped into the global tables."""
        self._check_open()
        for pi, part in enumerate(self._parts):
            if len(part) == 0:
                continue
            yield ColumnChunk(
                offset=int(self._starts[pi]),
                n=len(part),
                dcodes=self._dmaps[pi][part.domain_code_array()],
                ccodes=self._cmaps[pi][part.country_code_array()],
                statuses=part.status_array(),
                lengths=part.length_array(),
            )

    # ------------------------------------------------------------------ #
    # Iteration over contiguous (domain, country) runs

    def iter_runs(self) -> Iterator[Tuple[str, str, int, int]]:
        """Yield (domain, country, start, stop) over contiguous runs.

        Runs that span a segment boundary — a rescan appending more
        samples for the pair its predecessor ended on — are merged by
        name equality, so segmentation never fragments a run.
        """
        self._check_open()
        pending: Optional[Tuple[str, str, int, int]] = None
        for pi, part in enumerate(self._parts):
            offset = int(self._starts[pi])
            for domain, country, start, stop in part.iter_runs():
                gstart, gstop = offset + start, offset + stop
                if pending is not None and pending[0] == domain \
                        and pending[1] == country and pending[3] == gstart:
                    pending = (domain, country, pending[2], gstop)
                    continue
                if pending is not None:
                    yield pending
                pending = (domain, country, gstart, gstop)
        if pending is not None:
            yield pending

    def pairs(self) -> Iterator[Tuple[str, str, List[Sample]]]:
        """Iterate (domain, country, samples) over contiguous runs."""
        for domain, country, start, stop in self.iter_runs():
            yield domain, country, [self.row(i) for i in range(start, stop)]

    # ------------------------------------------------------------------ #
    # Aggregation kernels: per-segment partial aggregates, folded in the
    # global code space bit-identically to the flat kernels.

    def domains(self) -> List[str]:
        """Unique domains in first-seen order (the global code table)."""
        return list(self._domain_names)

    def countries(self) -> List[str]:
        """Unique countries in first-seen order (the global code table)."""
        return list(self._country_names)

    def count_status(self, status: int) -> int:
        """Number of records with the given HTTP status (per-part sum)."""
        self._check_open()
        return sum(part.count_status(status) for part in self._parts)

    def error_rate_by_domain(self) -> Dict[str, float]:
        """Fraction of failed probes per domain (folded bincounts)."""
        self._check_open()
        n_domains = len(self._domain_names)
        if self._n == 0 or n_domains == 0:
            return {}
        totals = np.zeros(n_domains, dtype=np.int64)
        fails = np.zeros(n_domains, dtype=np.int64)
        for chunk in self.iter_column_chunks():
            totals += np.bincount(chunk.dcodes, minlength=n_domains)
            fails += np.bincount(chunk.dcodes[chunk.statuses == NO_RESPONSE],
                                 minlength=n_domains)
        names = self._domain_names
        return {names[code]: float(fails[code]) / float(totals[code])
                for code in range(n_domains) if totals[code]}

    def response_rate_by_country(self) -> Dict[str, float]:
        """Per country: fraction of domains with >= 1 valid response.

        Each segment contributes its distinct fused (country, domain)
        keys — already in the global code space — and the fold is one
        more ``np.unique`` over the concatenation.
        """
        self._check_open()
        if self._n == 0:
            return {}
        n_domains = len(self._domain_names)
        n_countries = len(self._country_names)
        tested_parts: List[np.ndarray] = []
        responded_parts: List[np.ndarray] = []
        for chunk in self.iter_column_chunks():
            keys = chunk.ccodes.astype(np.int64) * n_domains + chunk.dcodes
            tested_parts.append(np.unique(keys))
            responded_parts.append(
                np.unique(keys[chunk.statuses != NO_RESPONSE]))
        tested = np.unique(np.concatenate(tested_parts))
        responded = np.unique(np.concatenate(responded_parts))
        tested_counts = np.bincount(tested // n_domains,
                                    minlength=n_countries)
        responded_counts = np.bincount(responded // n_domains,
                                       minlength=n_countries)
        names = self._country_names
        return {names[code]:
                float(responded_counts[code]) / float(tested_counts[code])
                for code in range(n_countries) if tested_counts[code]}

    def lengths_by_domain(self) -> Dict[str, List[int]]:
        """Map domain -> all observed 200-response body lengths.

        Hit rows are selected per segment (codes already global) and
        concatenated in segment order — the global append order — so
        the stable grouping sort reproduces the flat kernel's per-domain
        length order exactly.
        """
        self._check_open()
        if self._n == 0:
            return {}
        codes_parts: List[np.ndarray] = []
        lengths_parts: List[np.ndarray] = []
        for chunk in self.iter_column_chunks():
            hit = np.flatnonzero(chunk.statuses == 200)
            if hit.size:
                codes_parts.append(chunk.dcodes[hit])
                lengths_parts.append(chunk.lengths[hit])
        if not codes_parts:
            return {}
        codes = np.concatenate(codes_parts)
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        sorted_lengths = np.concatenate(lengths_parts)[order]
        boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        groups = np.split(sorted_lengths, boundaries)
        names = self._domain_names
        return {names[sorted_codes[start]]: group.tolist()
                for start, group in zip(starts.tolist(), groups)}
