"""On-disk persistence for scan datasets: LSHD segments and JSONL.

Scans are expensive (millions of probes), so batch runs save raw results
and analyses reload them.  Three formats are supported, dispatched by
magic bytes (never by file extension):

* **LSHD columnar segments** (:func:`dump_dataset_lshd`) — the default
  checkpoint format: the dataset's raw column buffers plus canonical
  JSON code tables in one fingerprinted segment (see
  :mod:`repro.lumscan.shards`).  :func:`load_dataset` maps a segment
  back as zero-copy column views, so loading is O(columns) instead of
  O(rows).
* **LSHM manifests** (:func:`dump_dataset_manifest`) — a canonical-JSON
  list of LSHD segments read back as one logical
  :class:`SegmentedScanDataset`; history is appended as new segments
  (see :func:`repro.lumscan.shards.append_segment`) rather than
  rewritten, and compaction merges segments byte-identically to the
  sequential writer.
* **JSONL** (:func:`dump_dataset`) — one JSON object per record:
  append-friendly, diff-able, and stream-parsable; kept as the export /
  interchange format and for checkpoints written before the columnar
  format existed.  Paths ending in ``.gz`` are transparently
  compressed, with ``mtime=0`` so identical datasets produce identical
  bytes.

Both writers share the crash-safety contract: data goes to a temporary
file in the target directory and is atomically :func:`os.replace`\\ d
into place, so an interrupted run can never leave a truncated dataset
behind.
"""

from __future__ import annotations

import gzip
import io
import json
import os
from contextlib import contextmanager
from typing import Iterator, Union

import numpy as np

from repro.lumscan.records import (
    DatasetReader,
    ScanDataset,
    SegmentedScanDataset,
    ShardColumns,
)
from repro.lumscan.shards import (
    MAGIC as _LSHD_MAGIC,
    MANIFEST_MAGIC as _LSHM_MAGIC,
    SegmentEntry,
    SegmentMapping,
    decode_shard,
    manifest_stem,
    read_manifest,
    segment_file_name,
    store_segment,
    write_manifest,
    write_segment_file,
)

_FIELDS = ("domain", "country", "status", "length", "body", "error",
           "interfered")

_GZIP_MAGIC = b"\x1f\x8b"

PathLike = Union[str, os.PathLike]

#: Resource-lifetime contract enforced by ``repro.lint``: report and
#: dataset text formats may only be written through the atomic
#: temp-then-rename writer below.
LINT_RESOURCE_CONTRACT = {
    "codec": "serialize",
    "atomic": {
        "suffixes": [".jsonl", ".jsonl.gz"],
        "writers": ["_atomic_text_writer", "dump_dataset", "save_report"],
    },
}


def _is_gzip(path: PathLike) -> bool:
    return os.fspath(path).endswith(".gz")


def sniff_format(path: PathLike) -> str:
    """Detect a dataset file's on-disk format from its magic bytes.

    Returns ``"lshd"``, ``"lshm"``, ``"jsonl.gz"``, or ``"jsonl"``.  The
    extension is never trusted, so renamed or legacy checkpoints load
    correctly.
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(_LSHD_MAGIC))
    if magic == _LSHD_MAGIC:
        return "lshd"
    if magic == _LSHM_MAGIC:
        return "lshm"
    if magic[: len(_GZIP_MAGIC)] == _GZIP_MAGIC:
        return "jsonl.gz"
    return "jsonl"


@contextmanager
def _atomic_text_writer(path: PathLike) -> Iterator[io.TextIOBase]:
    """A text handle whose content reaches ``path`` only on clean exit.

    Data goes to ``<path>.tmp.<pid>`` first; on success the temp file is
    atomically renamed over the target (same-directory ``os.replace``).
    On error the temp file is removed and the target is untouched.
    """
    target = os.fspath(path)
    tmp = f"{target}.tmp.{os.getpid()}"
    raw = open(tmp, "wb")
    try:
        if _is_gzip(target):
            # mtime=0 keeps the byte stream a pure function of the content.
            gz = gzip.GzipFile(filename="", mode="wb", fileobj=raw, mtime=0)
            handle = io.TextIOWrapper(gz, encoding="utf-8", newline="\n")
        else:
            handle = io.TextIOWrapper(raw, encoding="utf-8", newline="\n")
        try:
            yield handle
        finally:
            handle.close()   # closes the gzip member, then the raw file
        os.replace(tmp, target)
    except BaseException:
        raw.close()
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def _open_text(path: PathLike, compressed: bool) -> io.TextIOBase:
    """Open a (possibly gzip-compressed) text file for reading."""
    if compressed:
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def dump_dataset(dataset: DatasetReader, path: PathLike) -> int:
    """Write a dataset as JSONL; returns the number of records written.

    The write is atomic (temp file + ``os.replace``) and transparently
    gzip-compressed when ``path`` ends in ``.gz``.
    """
    count = 0
    with _atomic_text_writer(path) as handle:
        for sample in dataset:
            record = {
                "domain": sample.domain,
                "country": sample.country,
                "status": sample.status,
                "length": sample.length,
            }
            if sample.body is not None:
                record["body"] = sample.body
            if sample.error is not None:
                record["error"] = sample.error
            if sample.interfered:
                record["interfered"] = True
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
    return count


def dump_dataset_lshd(dataset: DatasetReader, path: PathLike) -> int:
    """Write a dataset as one LSHD columnar segment.

    The checkpoint-side writer: atomic (temp + ``os.replace``),
    fingerprinted, and bit-deterministic — the bytes are a pure function
    of the records.  :func:`load_dataset` maps the result back as
    zero-copy column views.  Returns the number of records written.
    """
    write_segment_file(dataset.export_columns(), os.fspath(path))
    return len(dataset)


def dump_dataset_manifest(dataset: DatasetReader, path: PathLike) -> int:
    """Write a dataset as an ``.lshm`` manifest of LSHD segments.

    A :class:`SegmentedScanDataset` keeps its physical segmentation:
    parts whose fingerprinted segment file already exists beside the
    manifest (under its content-addressed name) are **reused without a
    byte of rewrite** — re-checkpointing a logical dataset that grew by
    one rescan segment costs O(new rows).  Flat datasets (and parts
    without a known fingerprint) are written as fresh segments.
    Returns the number of records covered.
    """
    target = os.fspath(path)
    base = os.path.dirname(os.path.abspath(target))
    if isinstance(dataset, SegmentedScanDataset):
        parts = dataset.parts
        fingerprints = dataset.part_fingerprints
    else:
        parts = (dataset,)
        fingerprints = (None,)
    entries = []
    for part, fingerprint in zip(parts, fingerprints):
        if fingerprint is not None:
            name = segment_file_name(manifest_stem(target), fingerprint)
            if os.path.exists(os.path.join(base, name)):
                entries.append(SegmentEntry(file=name, rows=len(part),
                                            fingerprint=fingerprint))
                continue
        entries.append(store_segment(part.export_columns(), target))
    write_manifest(target, entries)
    return len(dataset)


def _load_segment(path: PathLike, mmap_columns: bool) -> ScanDataset:
    """Open an LSHD segment as a dataset (mapped or materialized)."""
    mapping = SegmentMapping(path)
    try:
        columns = decode_shard(mapping.buffer)
        if mmap_columns:
            return ScanDataset.from_columns(columns, source=mapping)
        materialized = ShardColumns(
            n=columns.n,
            dcodes=np.array(columns.dcodes),
            ccodes=np.array(columns.ccodes),
            statuses=np.array(columns.statuses),
            lengths=np.array(columns.lengths),
            ecodes=np.array(columns.ecodes),
            domain_names=list(columns.domain_names),
            country_names=list(columns.country_names),
            error_names=list(columns.error_names),
            bodies=dict(columns.bodies),
            interfered=list(columns.interfered),
        )
    except BaseException:
        mapping.close()
        raise
    mapping.close()
    return ScanDataset.from_columns(materialized)


def _load_manifest(path: PathLike, mmap_columns: bool) -> DatasetReader:
    """Open an ``.lshm`` manifest as one logical dataset.

    Each segment opens exactly as :func:`_load_segment` would (mapped,
    zero-copy) and the parts are presented as one
    :class:`SegmentedScanDataset` carrying the manifest's per-segment
    fingerprints, so re-checkpointing can reuse the segment files.
    ``mmap=False`` materializes everything into one flat dataset.
    """
    manifest = read_manifest(path)
    base = os.path.dirname(os.path.abspath(os.fspath(path)))
    parts = []
    try:
        for entry in manifest.entries:
            parts.append(_load_segment(os.path.join(base, entry.file),
                                       mmap_columns=mmap_columns))
    except BaseException:
        for part in parts:
            part.close()
        raise
    logical = SegmentedScanDataset(
        parts, fingerprints=[entry.fingerprint for entry in manifest.entries])
    if mmap_columns:
        return logical
    return logical.materialize()


def load_dataset(path: PathLike, mmap: bool = True) -> DatasetReader:
    """Read a dataset in any supported on-disk format.

    The format is sniffed from magic bytes: LSHD segments come back as
    zero-copy mapped datasets and LSHM manifests as multi-segment
    :class:`SegmentedScanDataset` logical datasets (``mmap=False``
    copies the columns into ordinary growable buffers and releases the
    mappings immediately); gzip and plain JSONL — including checkpoints
    written before the columnar format existed — parse row by row as
    before.
    """
    fmt = sniff_format(path)
    if fmt == "lshd":
        return _load_segment(path, mmap_columns=mmap)
    if fmt == "lshm":
        return _load_manifest(path, mmap_columns=mmap)
    dataset = ScanDataset()
    with _open_text(path, compressed=(fmt == "jsonl.gz")) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON: {exc}") from None
            unknown = set(record) - set(_FIELDS)
            if unknown:
                raise ValueError(
                    f"{path}:{line_number}: unknown fields {sorted(unknown)}")
            try:
                dataset.append(
                    domain=record["domain"],
                    country=record["country"],
                    status=int(record["status"]),
                    length=int(record["length"]),
                    body=record.get("body"),
                    error=record.get("error"),
                    interfered=bool(record.get("interfered", False)),
                )
            except KeyError as exc:
                raise ValueError(
                    f"{path}:{line_number}: missing field {exc}") from None
    return dataset
