"""JSONL persistence for scan datasets.

Scans are expensive (millions of probes), so batch runs save raw results
and analyses reload them.  The format is one JSON object per record —
append-friendly, diff-able, and stream-parsable.  Bodies are stored only
when the dataset retained them (same policy as in memory).

Two properties matter for checkpointing:

* **Crash safety** — :func:`dump_dataset` writes to a temporary file in
  the target directory and atomically :func:`os.replace`\\ s it into
  place, so an interrupted run can never leave a truncated dataset
  behind: the file either has the old content or the complete new one.
* **Transparent gzip** — paths ending in ``.gz`` are compressed (retained
  block-page bodies dominate checkpoint size at paper scale, and they
  compress extremely well).  Compressed files are written with ``mtime=0``
  so identical datasets produce identical bytes.
"""

from __future__ import annotations

import gzip
import io
import json
import os
from contextlib import contextmanager
from typing import Iterator, Union

from repro.lumscan.records import ScanDataset

_FIELDS = ("domain", "country", "status", "length", "body", "error",
           "interfered")

PathLike = Union[str, os.PathLike]


def _is_gzip(path: PathLike) -> bool:
    return os.fspath(path).endswith(".gz")


@contextmanager
def _atomic_text_writer(path: PathLike) -> Iterator[io.TextIOBase]:
    """A text handle whose content reaches ``path`` only on clean exit.

    Data goes to ``<path>.tmp.<pid>`` first; on success the temp file is
    atomically renamed over the target (same-directory ``os.replace``).
    On error the temp file is removed and the target is untouched.
    """
    target = os.fspath(path)
    tmp = f"{target}.tmp.{os.getpid()}"
    raw = open(tmp, "wb")
    try:
        if _is_gzip(target):
            # mtime=0 keeps the byte stream a pure function of the content.
            gz = gzip.GzipFile(filename="", mode="wb", fileobj=raw, mtime=0)
            handle = io.TextIOWrapper(gz, encoding="utf-8", newline="\n")
        else:
            handle = io.TextIOWrapper(raw, encoding="utf-8", newline="\n")
        try:
            yield handle
        finally:
            handle.close()   # closes the gzip member, then the raw file
        os.replace(tmp, target)
    except BaseException:
        raw.close()
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def _open_text(path: PathLike) -> io.TextIOBase:
    """Open a (possibly gzip-compressed) text file for reading."""
    if _is_gzip(path):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def dump_dataset(dataset: ScanDataset, path: PathLike) -> int:
    """Write a dataset as JSONL; returns the number of records written.

    The write is atomic (temp file + ``os.replace``) and transparently
    gzip-compressed when ``path`` ends in ``.gz``.
    """
    count = 0
    with _atomic_text_writer(path) as handle:
        for sample in dataset:
            record = {
                "domain": sample.domain,
                "country": sample.country,
                "status": sample.status,
                "length": sample.length,
            }
            if sample.body is not None:
                record["body"] = sample.body
            if sample.error is not None:
                record["error"] = sample.error
            if sample.interfered:
                record["interfered"] = True
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
    return count


def load_dataset(path: PathLike) -> ScanDataset:
    """Read a JSONL dataset written by :func:`dump_dataset`."""
    dataset = ScanDataset()
    with _open_text(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON: {exc}") from None
            unknown = set(record) - set(_FIELDS)
            if unknown:
                raise ValueError(
                    f"{path}:{line_number}: unknown fields {sorted(unknown)}")
            try:
                dataset.append(
                    domain=record["domain"],
                    country=record["country"],
                    status=int(record["status"]),
                    length=int(record["length"]),
                    body=record.get("body"),
                    error=record.get("error"),
                    interfered=bool(record.get("interfered", False)),
                )
            except KeyError as exc:
                raise ValueError(
                    f"{path}:{line_number}: missing field {exc}") from None
    return dataset
