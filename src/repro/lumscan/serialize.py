"""JSONL persistence for scan datasets.

Scans are expensive (millions of probes), so batch runs save raw results
and analyses reload them.  The format is one JSON object per record —
append-friendly, diff-able, and stream-parsable.  Bodies are stored only
when the dataset retained them (same policy as in memory).
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterator, Union

from repro.lumscan.records import ScanDataset

_FIELDS = ("domain", "country", "status", "length", "body", "error",
           "interfered")


def dump_dataset(dataset: ScanDataset, path: Union[str, os.PathLike]) -> int:
    """Write a dataset as JSONL; returns the number of records written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for sample in dataset:
            record = {
                "domain": sample.domain,
                "country": sample.country,
                "status": sample.status,
                "length": sample.length,
            }
            if sample.body is not None:
                record["body"] = sample.body
            if sample.error is not None:
                record["error"] = sample.error
            if sample.interfered:
                record["interfered"] = True
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
    return count


def load_dataset(path: Union[str, os.PathLike]) -> ScanDataset:
    """Read a JSONL dataset written by :func:`dump_dataset`."""
    dataset = ScanDataset()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON: {exc}") from None
            unknown = set(record) - set(_FIELDS)
            if unknown:
                raise ValueError(
                    f"{path}:{line_number}: unknown fields {sorted(unknown)}")
            try:
                dataset.append(
                    domain=record["domain"],
                    country=record["country"],
                    status=int(record["status"]),
                    length=int(record["length"]),
                    body=record.get("body"),
                    error=record.get("error"),
                    interfered=bool(record.get("interfered", False)),
                )
            except KeyError as exc:
                raise ValueError(
                    f"{path}:{line_number}: missing field {exc}") from None
    return dataset
