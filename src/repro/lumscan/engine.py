"""Parallel scan engine: deterministic sharding of the probe task space.

The studies cover a (country, url, sample) task space of millions of
probes (§3.2, §5).  :class:`ScanEngine` shards that space across a worker
pool while keeping a hard correctness contract: **the merged dataset is
identical — same records, same order — to a serial scan, for any worker
count**.  Two mechanisms make that possible:

1. **Per-task derived RNG.**  Every probe owns a private ``random.Random``
   seeded from ``(seed, country, domain, sample_idx, epoch)`` via
   :func:`repro.util.rng.derive_rng`, and that rng is threaded through the
   whole simulation stack (exit picking, path-failure rolls, bot
   heuristics, page rendering and jitter).  A probe's outcome is therefore
   a pure function of its task identity, never of which worker ran it or
   what ran before it.
2. **Deterministic sharding + ordered merge.**  Tasks are enumerated in
   the canonical serial order, split into contiguous chunks, and executed
   by a ``ThreadPoolExecutor``; results are merged back in chunk order, so
   completion order is irrelevant.

The engine offers two pool shapes.  ``executor="thread"`` matches the
real tool's latency-bound profile.  The *simulated* transport, however,
never blocks — a thread pool is GIL-bound and buys little — so
``executor="process"`` ships task chunks to a ``ProcessPoolExecutor``:
each worker process rebuilds the scanner once from a picklable
:class:`~repro.lumscan.scanner.ScannerSpec`, runs its chunks, and returns
compact columnar per-chunk datasets that the parent merges in chunk order
via :meth:`ScanDataset.extend`.  The same two mechanisms above make the
merged result bit-identical to serial.
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

logger = logging.getLogger("repro.lumscan.engine")

from repro.lumscan.records import NO_RESPONSE, ScanDataset

#: Tasks per work unit handed to the pool.  Small enough that the pool
#: load-balances uneven chunks, large enough to amortize dispatch.
DEFAULT_CHUNK_SIZE = 64

#: Valid ``ScanEngine(executor=...)`` values.
EXECUTORS = ("thread", "process")


@dataclass(frozen=True)
class ProbeTask:
    """One unit of scan work: a single probe of (country, url, sample)."""

    country: str
    url: str
    domain: str
    sample_idx: int
    epoch: int = 0


def domain_of(url: str) -> str:
    """Registrable domain of a probe URL (www-stripped)."""
    host = url.split("://", 1)[-1].split("/", 1)[0]
    return host[4:] if host.startswith("www.") else host


def scan_tasks(urls: Sequence[str], countries: Sequence[str],
               samples: int, epoch: int = 0) -> List[ProbeTask]:
    """The canonical serial task ordering of ``Lumscan.scan``."""
    tasks: List[ProbeTask] = []
    for country in countries:
        for url in urls:
            domain = domain_of(url)
            for sample_idx in range(samples):
                tasks.append(ProbeTask(country=country, url=url, domain=domain,
                                       sample_idx=sample_idx, epoch=epoch))
    return tasks


def resample_tasks(pairs: Iterable[Tuple[str, str]], samples: int,
                   epoch: int = 0) -> List[ProbeTask]:
    """The canonical serial task ordering of ``Lumscan.resample``."""
    tasks: List[ProbeTask] = []
    for domain, country in pairs:
        url = f"http://{domain}/"
        for sample_idx in range(samples):
            tasks.append(ProbeTask(country=country, url=url, domain=domain,
                                   sample_idx=sample_idx, epoch=epoch))
    return tasks


def record_probe(data: ScanDataset, domain: str, country: str, result) -> None:
    """Append one ProbeResult to a dataset (shared by scanner and engine).

    A response whose body was elided under a
    :class:`~repro.httpsim.messages.BodyPolicy` carries ``body_length``
    instead of a body; only bodies the dataset would retain anyway are
    ever materialized, so both lanes append identical records.
    """
    if result.ok:
        response = result.response
        body = None if response.body_length is not None else response.body
        data.append(domain, country, response.status,
                    response.content_length, body,
                    interfered=result.interfered)
    else:
        data.append(domain, country, NO_RESPONSE, 0, None, error=result.error)


# Module-level worker state for the process executor: each worker process
# builds its scanner replica once (in the pool initializer) and tracks the
# traffic counts it last reported, so every chunk returns exact deltas.
_WORKER_SCANNER = None
_WORKER_COUNTS = (0, 0)


def _process_worker_init(spec) -> None:
    global _WORKER_SCANNER, _WORKER_COUNTS
    _WORKER_SCANNER = spec.build()
    _WORKER_COUNTS = _WORKER_SCANNER.worker_counts()


def _process_run_chunk(chunk: List[ProbeTask]):
    """Run one chunk in a worker: columnar results + traffic deltas."""
    global _WORKER_COUNTS
    scanner = _WORKER_SCANNER
    data = ScanDataset()
    run = scanner.run_task
    for task in chunk:
        record_probe(data, task.domain, task.country, run(task))
    requests, fetches = scanner.worker_counts()
    prev_requests, prev_fetches = _WORKER_COUNTS
    _WORKER_COUNTS = (requests, fetches)
    return data, requests - prev_requests, fetches - prev_fetches


class ScanEngine:
    """Worker-pool scheduler over a :class:`~repro.lumscan.scanner.Lumscan`.

    Drop-in compatible with the scanner's ``scan`` / ``resample`` API; the
    study pipelines accept either.  ``workers=1`` executes inline with no
    pool, and is byte-identical to any ``workers=k`` run by construction.
    """

    def __init__(self, scanner, workers: int = 1,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 executor: str = "thread") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}")
        self._scanner = scanner
        self._workers = workers
        self._chunk_size = chunk_size
        self._executor = executor

    @property
    def workers(self) -> int:
        """Configured pool width."""
        return self._workers

    @property
    def executor(self) -> str:
        """Configured pool shape ("thread" or "process")."""
        return self._executor

    # ------------------------------------------------------------------ #

    def scan(self, urls: Sequence[str], countries: Sequence[str],
             samples: int = 3, epoch: int = 0,
             dataset: Optional[ScanDataset] = None) -> ScanDataset:
        """Probe every (country, domain) pair ``samples`` times.

        Samples for a pair land contiguously in serial order, which
        downstream consumers (``ScanDataset.pairs``) rely on.
        """
        tasks = scan_tasks(urls, countries, samples, epoch)
        return self._execute(tasks, dataset)

    def resample(self, pairs: Iterable[Tuple[str, str]], samples: int,
                 epoch: int = 0,
                 dataset: Optional[ScanDataset] = None) -> ScanDataset:
        """Re-probe specific (domain, country) pairs ``samples`` times."""
        tasks = resample_tasks(pairs, samples, epoch)
        return self._execute(tasks, dataset)

    # ------------------------------------------------------------------ #

    def _execute(self, tasks: List[ProbeTask],
                 dataset: Optional[ScanDataset]) -> ScanDataset:
        data = dataset if dataset is not None else ScanDataset()
        if self._workers == 1 or len(tasks) <= 1:
            for task in tasks:
                record_probe(data, task.domain, task.country,
                             self._scanner.run_task(task))
            return data

        chunks = [tasks[i:i + self._chunk_size]
                  for i in range(0, len(tasks), self._chunk_size)]
        logger.debug("engine: %d tasks in %d chunks over %d %s workers",
                     len(tasks), len(chunks), self._workers, self._executor)
        if self._executor == "process":
            return self._execute_processes(chunks, data)
        with ThreadPoolExecutor(max_workers=self._workers) as pool:
            # Executor.map yields chunk results in submission order, so the
            # merge below reproduces the serial record order exactly even
            # though chunks complete out of order.
            for results in pool.map(self._run_chunk, chunks):
                for task, result in results:
                    record_probe(data, task.domain, task.country, result)
        return data

    def _run_chunk(self, chunk: List[ProbeTask]):
        run = self._scanner.run_task
        return [(task, run(task)) for task in chunk]

    def _execute_processes(self, chunks: List[List[ProbeTask]],
                           data: ScanDataset) -> ScanDataset:
        scanner = self._scanner
        spawn = getattr(scanner, "spawn_spec", None)
        if spawn is None:
            raise TypeError(
                f"executor='process' needs a spawnable scanner "
                f"(spawn_spec/worker_counts/absorb_worker_counts); "
                f"{type(scanner).__name__} has no spawn_spec")
        spec = spawn()
        requests = fetches = 0
        with ProcessPoolExecutor(max_workers=self._workers,
                                 initializer=_process_worker_init,
                                 initargs=(spec,)) as pool:
            # Chunk results arrive in submission order (Executor.map), and
            # extend() reconciles code tables in first-seen order, so the
            # merged dataset is byte-identical to a serial scan.
            for chunk_data, request_delta, fetch_delta in pool.map(
                    _process_run_chunk, chunks):
                data.extend(chunk_data)
                requests += request_delta
                fetches += fetch_delta
        scanner.absorb_worker_counts(requests, fetches)
        return data
