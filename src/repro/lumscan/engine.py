"""Parallel scan engine: deterministic sharding of the probe task space.

The studies cover a (country, url, sample) task space of millions of
probes (§3.2, §5).  :class:`ScanEngine` shards that space across a worker
pool while keeping a hard correctness contract: **the merged dataset is
identical — same records, same order — to a serial scan, for any worker
count**.  Two mechanisms make that possible:

1. **Per-task derived RNG.**  Every probe owns a private ``random.Random``
   seeded from ``(seed, country, domain, sample_idx, epoch)`` via
   :func:`repro.util.rng.derive_rng`, and that rng is threaded through the
   whole simulation stack (exit picking, path-failure rolls, bot
   heuristics, page rendering and jitter).  A probe's outcome is therefore
   a pure function of its task identity, never of which worker ran it or
   what ran before it.
2. **Deterministic sharding + ordered merge.**  Tasks are enumerated in
   the canonical serial order, split into contiguous chunks, and executed
   by a ``ThreadPoolExecutor``; results are merged back in chunk order, so
   completion order is irrelevant.

Threads (not processes) are the right pool shape here for the same reason
they are for the real tool: scanning is latency-bound, and the per-probe
work releases the interpreter whenever the transport would block.
"""

from __future__ import annotations

import logging
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

logger = logging.getLogger("repro.lumscan.engine")

from repro.lumscan.records import NO_RESPONSE, ScanDataset

#: Tasks per work unit handed to the pool.  Small enough that the pool
#: load-balances uneven chunks, large enough to amortize dispatch.
DEFAULT_CHUNK_SIZE = 64


@dataclass(frozen=True)
class ProbeTask:
    """One unit of scan work: a single probe of (country, url, sample)."""

    country: str
    url: str
    domain: str
    sample_idx: int
    epoch: int = 0


def domain_of(url: str) -> str:
    """Registrable domain of a probe URL (www-stripped)."""
    host = url.split("://", 1)[-1].split("/", 1)[0]
    return host[4:] if host.startswith("www.") else host


def scan_tasks(urls: Sequence[str], countries: Sequence[str],
               samples: int, epoch: int = 0) -> List[ProbeTask]:
    """The canonical serial task ordering of ``Lumscan.scan``."""
    tasks: List[ProbeTask] = []
    for country in countries:
        for url in urls:
            domain = domain_of(url)
            for sample_idx in range(samples):
                tasks.append(ProbeTask(country=country, url=url, domain=domain,
                                       sample_idx=sample_idx, epoch=epoch))
    return tasks


def resample_tasks(pairs: Iterable[Tuple[str, str]], samples: int,
                   epoch: int = 0) -> List[ProbeTask]:
    """The canonical serial task ordering of ``Lumscan.resample``."""
    tasks: List[ProbeTask] = []
    for domain, country in pairs:
        url = f"http://{domain}/"
        for sample_idx in range(samples):
            tasks.append(ProbeTask(country=country, url=url, domain=domain,
                                   sample_idx=sample_idx, epoch=epoch))
    return tasks


def record_probe(data: ScanDataset, domain: str, country: str, result) -> None:
    """Append one ProbeResult to a dataset (shared by scanner and engine)."""
    if result.ok:
        response = result.response
        data.append(domain, country, response.status, len(response.body),
                    response.body, interfered=result.interfered)
    else:
        data.append(domain, country, NO_RESPONSE, 0, None, error=result.error)


class ScanEngine:
    """Worker-pool scheduler over a :class:`~repro.lumscan.scanner.Lumscan`.

    Drop-in compatible with the scanner's ``scan`` / ``resample`` API; the
    study pipelines accept either.  ``workers=1`` executes inline with no
    pool, and is byte-identical to any ``workers=k`` run by construction.
    """

    def __init__(self, scanner, workers: int = 1,
                 chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._scanner = scanner
        self._workers = workers
        self._chunk_size = chunk_size

    @property
    def workers(self) -> int:
        """Configured pool width."""
        return self._workers

    # ------------------------------------------------------------------ #

    def scan(self, urls: Sequence[str], countries: Sequence[str],
             samples: int = 3, epoch: int = 0,
             dataset: Optional[ScanDataset] = None) -> ScanDataset:
        """Probe every (country, domain) pair ``samples`` times.

        Samples for a pair land contiguously in serial order, which
        downstream consumers (``ScanDataset.pairs``) rely on.
        """
        tasks = scan_tasks(urls, countries, samples, epoch)
        return self._execute(tasks, dataset)

    def resample(self, pairs: Iterable[Tuple[str, str]], samples: int,
                 epoch: int = 0,
                 dataset: Optional[ScanDataset] = None) -> ScanDataset:
        """Re-probe specific (domain, country) pairs ``samples`` times."""
        tasks = resample_tasks(pairs, samples, epoch)
        return self._execute(tasks, dataset)

    # ------------------------------------------------------------------ #

    def _execute(self, tasks: List[ProbeTask],
                 dataset: Optional[ScanDataset]) -> ScanDataset:
        data = dataset if dataset is not None else ScanDataset()
        if self._workers == 1 or len(tasks) <= 1:
            for task in tasks:
                record_probe(data, task.domain, task.country,
                             self._scanner.run_task(task))
            return data

        chunks = [tasks[i:i + self._chunk_size]
                  for i in range(0, len(tasks), self._chunk_size)]
        logger.debug("engine: %d tasks in %d chunks over %d workers",
                     len(tasks), len(chunks), self._workers)
        with ThreadPoolExecutor(max_workers=self._workers) as pool:
            # Executor.map yields chunk results in submission order, so the
            # merge below reproduces the serial record order exactly even
            # though chunks complete out of order.
            for results in pool.map(self._run_chunk, chunks):
                for task, result in results:
                    record_probe(data, task.domain, task.country, result)
        return data

    def _run_chunk(self, chunk: List[ProbeTask]):
        run = self._scanner.run_task
        return [(task, run(task)) for task in chunk]
