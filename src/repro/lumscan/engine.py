"""Parallel scan engine: deterministic sharding of the probe task space.

The studies cover a (country, url, sample) task space of millions of
probes (§3.2, §5).  :class:`ScanEngine` shards that space across a worker
pool while keeping a hard correctness contract: **the merged dataset is
identical — same records, same order — to a serial scan, for any worker
count**.  Two mechanisms make that possible:

1. **Per-task derived RNG.**  Every probe owns a private ``random.Random``
   seeded from ``(seed, country, domain, sample_idx, epoch)`` via
   :func:`repro.util.rng.derive_rng`, and that rng is threaded through the
   whole simulation stack (exit picking, path-failure rolls, bot
   heuristics, page rendering and jitter).  A probe's outcome is therefore
   a pure function of its task identity, never of which worker ran it or
   what ran before it.
2. **Deterministic sharding + ordered merge.**  Tasks are enumerated in
   the canonical serial order, split into contiguous chunks, and executed
   by a ``ThreadPoolExecutor``; results are merged back in chunk order, so
   completion order is irrelevant.

The engine offers two pool shapes.  ``executor="thread"`` matches the
real tool's latency-bound profile.  The *simulated* transport, however,
never blocks — a thread pool is GIL-bound and buys little — so
``executor="process"`` ships task chunks to a ``ProcessPoolExecutor``:
each worker process rebuilds the scanner once from a picklable
:class:`~repro.lumscan.scanner.ScannerSpec` and runs chunks carved from
the canonical task order.  Three mechanisms keep the process pool's
merge path off the critical path:

* **Columnar shard exchange** (default): workers serialize chunk
  results into flat binary segments (:mod:`repro.lumscan.shards` —
  shared-memory blocks or mmap-able spill files) and return only a tiny
  handle; the parent maps each segment and bulk-extends with zero row
  decode.  ``exchange="pickle"`` keeps the legacy whole-dataset pickle
  path for comparison.
* **Streaming merge**: chunk results are consumed *as they complete*
  (``FIRST_COMPLETED`` waits plus a :class:`ChunkReorderBuffer` that
  restores chunk-sequence order), so the parent never barriers on the
  pool and holds at most a bounded window of unmerged shards — parent
  memory stays flat.  Because merges still happen in sequence order,
  the merged bytes are identical to serial for any completion order.
* **Spill-backed merge** (``merge="spill"``): the streaming merge
  appends shards to a :class:`~repro.lumscan.shards.SpillDatasetBuilder`
  instead of an in-RAM dataset, and the finished result comes back as a
  zero-copy mapped dataset over one on-disk segment — the merged parent
  result never needs to fit in memory, and the bytes (hence the mapped
  dataset) are identical to the in-memory merge.
* **Latency-driven chunk autotuning**: a :class:`ChunkAutotuner` sizes
  the next chunk from the observed probes/s so each chunk lands near a
  target wall-time (amortizing dispatch without starving the stream).
  Timing flows through the injectable :class:`repro.util.clock.Clock`,
  so tests drive it deterministically — and chunk boundaries never
  affect output bytes in the first place.
"""

from __future__ import annotations

import itertools
import logging
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

logger = logging.getLogger("repro.lumscan.engine")

from repro.lumscan.records import NO_RESPONSE, ScanDataset, \
    SegmentedScanDataset
from repro.lumscan.shards import (
    EXCHANGE_MODES,
    ExchangeSpec,
    ShardExchange,
    ShardHandle,
    SpillDatasetBuilder,
    append_segment,
    open_shard,
    release_shard,
    write_shard,
)
from repro.util.clock import SYSTEM_CLOCK, Clock
from repro.util.memory import rss_bytes

#: Tasks per work unit handed to the pool.  Small enough that the pool
#: load-balances uneven chunks, large enough to amortize dispatch.  The
#: process executor treats this as the *initial* size and autotunes from
#: there (see :class:`ChunkAutotuner`).
DEFAULT_CHUNK_SIZE = 64

#: Valid ``ScanEngine(executor=...)`` values.
EXECUTORS = ("thread", "process")

#: Valid ``ScanEngine(exchange=...)`` values: the shard transports plus
#: the legacy whole-dataset pickle return path.
EXCHANGES = EXCHANGE_MODES + ("pickle",)

#: Valid ``ScanEngine(merge=...)`` values: hold the merged dataset in
#: parent RAM, or stream it into an on-disk segment and map it back.
MERGES = ("memory", "spill")

#: Valid ``ScanEngine(world_source=...)`` values: freeze the world when
#: possible ("auto"), require the frozen pack ("pack"), or force every
#: worker onto the legacy spec rebuild ("rebuild").
WORLD_SOURCES = ("auto", "pack", "rebuild")

#: Outstanding chunks per worker: enough that a worker finishing early
#: always has a queued chunk, small enough to bound unmerged backlog.
PIPELINE_DEPTH = 2

#: Default autotuning target: wall-time one chunk should take.
DEFAULT_TARGET_CHUNK_SECONDS = 0.25

#: Monotonic ids for stat-absorption tokens (see absorb_worker_counts).
_ABSORB_BATCH_IDS = itertools.count()


@dataclass(frozen=True)
class WorkerBuildInfo:
    """How one worker obtained its world replica, and how long it took."""

    source: str            # "pack" (mapped worldpack) or "build" (rebuilt)
    build_seconds: float   # wall time of the world load/rebuild alone


@dataclass(frozen=True)
class WorkerInitStats:
    """Accumulated worker-initialization costs for one scanner.

    ``spawn_seconds`` sums each worker's whole initializer (world plus
    client/scanner wiring); ``build_seconds`` the world portion alone.
    ``pack_loads`` counts workers that mapped a frozen worldpack instead
    of rebuilding; ``rss_peak_bytes`` is the largest post-init worker
    RSS observed (0 where the platform offers no reading).
    """

    spawned: int = 0
    spawn_seconds: float = 0.0
    build_seconds: float = 0.0
    pack_loads: int = 0
    rss_peak_bytes: int = 0


@dataclass(frozen=True)
class ProbeTask:
    """One unit of scan work: a single probe of (country, url, sample)."""

    country: str
    url: str
    domain: str
    sample_idx: int
    epoch: int = 0


def domain_of(url: str) -> str:
    """Registrable domain of a probe URL (www-stripped)."""
    host = url.split("://", 1)[-1].split("/", 1)[0]
    return host[4:] if host.startswith("www.") else host


def scan_tasks(urls: Sequence[str], countries: Sequence[str],
               samples: int, epoch: int = 0) -> List[ProbeTask]:
    """The canonical serial task ordering of ``Lumscan.scan``."""
    tasks: List[ProbeTask] = []
    for country in countries:
        for url in urls:
            domain = domain_of(url)
            for sample_idx in range(samples):
                tasks.append(ProbeTask(country=country, url=url, domain=domain,
                                       sample_idx=sample_idx, epoch=epoch))
    return tasks


def resample_tasks(pairs: Iterable[Tuple[str, str]], samples: int,
                   epoch: int = 0) -> List[ProbeTask]:
    """The canonical serial task ordering of ``Lumscan.resample``."""
    tasks: List[ProbeTask] = []
    for domain, country in pairs:
        url = f"http://{domain}/"
        for sample_idx in range(samples):
            tasks.append(ProbeTask(country=country, url=url, domain=domain,
                                   sample_idx=sample_idx, epoch=epoch))
    return tasks


def record_probe(data: ScanDataset, domain: str, country: str, result) -> None:
    """Append one ProbeResult to a dataset (shared by scanner and engine).

    A response whose body was elided under a
    :class:`~repro.httpsim.messages.BodyPolicy` carries ``body_length``
    instead of a body; only bodies the dataset would retain anyway are
    ever materialized, so both lanes append identical records.
    """
    if result.ok:
        response = result.response
        body = None if response.body_length is not None else response.body
        data.append(domain, country, response.status,
                    response.content_length, body,
                    interfered=result.interfered)
    else:
        data.append(domain, country, NO_RESPONSE, 0, None, error=result.error)


class ChunkReorderBuffer:
    """Reassembles out-of-order chunk completions into sequence order.

    Workers may finish chunks in any order; merge order must be chunk
    sequence order for the dataset bytes to match serial.  ``push``
    accepts a completed chunk by sequence number, ``pop_ready`` drains
    the contiguous prefix.  A sequence number can be pushed exactly
    once — a duplicate (e.g. a retried chunk) is rejected, so the same
    chunk's rows and stats can never be merged twice.
    """

    def __init__(self) -> None:
        self._next = 0
        self._held: Dict[int, object] = {}

    @property
    def pending(self) -> int:
        """Completed-but-unmerged chunks currently buffered."""
        return len(self._held)

    @property
    def next_seq(self) -> int:
        """The sequence number the next ``pop_ready`` item must carry."""
        return self._next

    def push(self, seq: int, item) -> None:
        """Buffer chunk ``seq``'s payload (duplicates are rejected)."""
        if seq < self._next or seq in self._held:
            raise ValueError(f"chunk {seq} was already merged or buffered")
        self._held[seq] = item

    def pop_ready(self) -> List:
        """Remove and return the contiguous ready prefix, in order."""
        ready: List = []
        while self._next in self._held:
            ready.append(self._held.pop(self._next))
            self._next += 1
        return ready

    def drain(self) -> List:
        """Remove and return everything held (error-path cleanup)."""
        items = [self._held[seq] for seq in sorted(self._held)]
        self._held.clear()
        return items


class ChunkAutotuner:
    """Latency-driven chunk sizing: resize toward a target wall-time.

    Each completed chunk reports ``(tasks, elapsed_seconds)``; the tuner
    keeps an exponentially-smoothed probes/s estimate and proposes
    ``rate * target_seconds`` tasks for the next chunk, clamped to at
    most double/halve per observation so one noisy chunk cannot whipsaw
    the stream.  The tuner is a pure function of the observations it is
    fed — driven by a :class:`~repro.util.clock.ManualClock` (elapsed
    values under test control, or frozen at zero) it is fully
    deterministic, and chunk boundaries never affect output bytes.
    """

    def __init__(self, initial: int,
                 target_seconds: Optional[float] = None,
                 min_size: int = 8, max_size: int = 8192,
                 smoothing: float = 0.5) -> None:
        if initial < 1:
            raise ValueError(f"initial chunk size must be >= 1, got {initial}")
        self._size = initial
        self._target = float(target_seconds or 0.0)
        self._min = min_size
        self._max = max_size
        self._smoothing = smoothing
        self._rate: Optional[float] = None

    @property
    def enabled(self) -> bool:
        """Whether a target is set (no target = fixed chunk size)."""
        return self._target > 0.0

    @property
    def rate(self) -> Optional[float]:
        """Smoothed observed probes/s (None before any observation)."""
        return self._rate

    def chunk_size(self) -> int:
        """Tasks the next submitted chunk should carry."""
        return self._size

    def record(self, tasks: int, elapsed: float) -> None:
        """Fold in one completed chunk's observed latency."""
        if not self.enabled or tasks <= 0 or elapsed <= 0.0:
            return
        rate = tasks / elapsed
        self._rate = rate if self._rate is None else (
            self._smoothing * rate + (1.0 - self._smoothing) * self._rate)
        proposed = int(round(self._rate * self._target))
        proposed = min(proposed, self._size * 2)
        proposed = max(proposed, self._size // 2)
        self._size = max(self._min, min(self._max, proposed))


# Module-level worker state for the process executor: each worker process
# builds its scanner replica once (in the pool initializer) and tracks the
# traffic counts it last reported, so every chunk returns exact deltas.
_WORKER_SCANNER = None
_WORKER_COUNTS = (0, 0)
_WORKER_EXCHANGE: Optional[ExchangeSpec] = None
_WORKER_CLOCK: Clock = SYSTEM_CLOCK
# One-shot init-cost record: the first chunk a worker completes carries
# it back to the parent (then it is cleared, so a worker reports its
# spawn cost exactly once however many chunks it runs).
_WORKER_INIT_INFO: Optional[dict] = None


def _process_worker_init(spec, exchange_spec: Optional[ExchangeSpec],
                         clock: Clock) -> None:
    global _WORKER_SCANNER, _WORKER_COUNTS, _WORKER_EXCHANGE, _WORKER_CLOCK
    global _WORKER_INIT_INFO
    stopwatch = clock.stopwatch()
    build_timed = getattr(spec, "build_timed", None)
    if build_timed is not None:
        scanner, build_info = build_timed(clock)
    else:
        scanner = spec.build()
        build_info = WorkerBuildInfo(source="build",
                                     build_seconds=stopwatch.elapsed())
    _WORKER_SCANNER = scanner
    _WORKER_COUNTS = scanner.worker_counts()
    _WORKER_EXCHANGE = exchange_spec
    _WORKER_CLOCK = clock
    _WORKER_INIT_INFO = {
        "spawn_seconds": stopwatch.elapsed(),
        "build_seconds": build_info.build_seconds,
        "source": build_info.source,
        "rss_bytes": rss_bytes(),
    }
    logger.debug("worker init: world %s in %.3fs (%.3fs total)",
                 build_info.source, build_info.build_seconds,
                 _WORKER_INIT_INFO["spawn_seconds"])


def _process_run_chunk(seq: int, chunk: List[ProbeTask]):
    """Run one chunk in a worker.

    Returns ``(seq, payload, request_delta, fetch_delta, tasks,
    elapsed, init_info)`` where ``payload`` is a :class:`ShardHandle`
    under the shard exchange (the rows stay in the segment) or a trimmed
    columnar :class:`ScanDataset` under the legacy pickle exchange, and
    ``init_info`` is this worker's one-time spawn-cost record (None on
    every chunk after the first).
    """
    global _WORKER_COUNTS, _WORKER_INIT_INFO
    scanner = _WORKER_SCANNER
    stopwatch = _WORKER_CLOCK.stopwatch()
    data = ScanDataset()
    run = scanner.run_task
    for task in chunk:
        record_probe(data, task.domain, task.country, run(task))
    requests, fetches = scanner.worker_counts()
    prev_requests, prev_fetches = _WORKER_COUNTS
    _WORKER_COUNTS = (requests, fetches)
    elapsed = stopwatch.elapsed()
    if _WORKER_EXCHANGE is None:
        payload = data
    else:
        payload = write_shard(data.export_columns(), _WORKER_EXCHANGE, seq)
    init_info, _WORKER_INIT_INFO = _WORKER_INIT_INFO, None
    return (seq, payload, requests - prev_requests,
            fetches - prev_fetches, len(chunk), elapsed, init_info)


class ScanEngine:
    """Worker-pool scheduler over a :class:`~repro.lumscan.scanner.Lumscan`.

    Drop-in compatible with the scanner's ``scan`` / ``resample`` API; the
    study pipelines accept either.  ``workers=1`` executes inline with no
    pool, and is byte-identical to any ``workers=k`` run by construction.

    ``merge="spill"`` routes the process pool's streaming merge through
    a :class:`SpillDatasetBuilder`: ``scan``/``resample`` then return a
    *new* mapped dataset (the caller-passed ``dataset``, if any, seeds
    the builder but is not mutated), with records identical to the
    in-memory merge.  Runs that take the inline shortcut (``workers=1``
    or a single task) still merge in memory.
    """

    def __init__(self, scanner, workers: int = 1,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 executor: str = "thread",
                 exchange: str = "auto",
                 merge: str = "memory",
                 spill_dir: Optional[str] = None,
                 target_chunk_seconds: Optional[float] =
                 DEFAULT_TARGET_CHUNK_SECONDS,
                 clock: Optional[Clock] = None,
                 world_source: str = "auto") -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}")
        if exchange not in EXCHANGES:
            raise ValueError(
                f"exchange must be one of {EXCHANGES}, got {exchange!r}")
        if merge not in MERGES:
            raise ValueError(
                f"merge must be one of {MERGES}, got {merge!r}")
        if merge == "spill" and executor != "process":
            raise ValueError(
                "merge='spill' requires executor='process' (the spill "
                "builder backs the process pool's streaming merge)")
        if world_source not in WORLD_SOURCES:
            raise ValueError(
                f"world_source must be one of {WORLD_SOURCES}, "
                f"got {world_source!r}")
        self._merge = merge
        self._world_source = world_source
        self._scanner = scanner
        self._workers = workers
        self._chunk_size = chunk_size
        self._executor = executor
        self._exchange = exchange
        self._spill_dir = spill_dir
        self._target_chunk_seconds = target_chunk_seconds
        self._clock = clock if clock is not None else SYSTEM_CLOCK

    @property
    def workers(self) -> int:
        """Configured pool width."""
        return self._workers

    @property
    def executor(self) -> str:
        """Configured pool shape ("thread" or "process")."""
        return self._executor

    @property
    def exchange(self) -> str:
        """Configured worker-result transport ("auto"/"shm"/"file"/"pickle")."""
        return self._exchange

    @property
    def merge(self) -> str:
        """Configured merge sink ("memory" or "spill")."""
        return self._merge

    @property
    def world_source(self) -> str:
        """Configured worker world source ("auto"/"pack"/"rebuild")."""
        return self._world_source

    def worker_init_stats(self):
        """The scanner's accumulated worker spawn/build costs, if tracked."""
        stats = getattr(self._scanner, "worker_init_stats", None)
        return stats() if stats is not None else None

    # ------------------------------------------------------------------ #

    def scan(self, urls: Sequence[str], countries: Sequence[str],
             samples: int = 3, epoch: int = 0,
             dataset: Optional[ScanDataset] = None,
             append_to: Optional[str] = None) -> ScanDataset:
        """Probe every (country, domain) pair ``samples`` times.

        Samples for a pair land contiguously in serial order, which
        downstream consumers (``ScanDataset.pairs``) rely on.
        ``append_to`` finalizes the run into a new segment of an
        ``.lshm`` manifest instead (see :meth:`_finalize_append`).
        """
        tasks = scan_tasks(urls, countries, samples, epoch)
        if append_to is not None:
            return self._finalize_append(tasks, dataset, append_to)
        return self._execute(tasks, dataset)

    def resample(self, pairs: Iterable[Tuple[str, str]], samples: int,
                 epoch: int = 0,
                 dataset: Optional[ScanDataset] = None,
                 append_to: Optional[str] = None) -> ScanDataset:
        """Re-probe specific (domain, country) pairs ``samples`` times.

        ``append_to`` finalizes the run into a new segment of an
        ``.lshm`` manifest instead (see :meth:`_finalize_append`).
        """
        tasks = resample_tasks(pairs, samples, epoch)
        if append_to is not None:
            return self._finalize_append(tasks, dataset, append_to)
        return self._execute(tasks, dataset)

    def _finalize_append(self, tasks: List[ProbeTask],
                         dataset: Optional[ScanDataset],
                         manifest_path: str) -> "SegmentedScanDataset":
        """Run ``tasks`` and append the result as one manifest segment.

        The engine's **append mode**: the run executes into a fresh
        dataset exactly as usual (any executor/exchange/merge mode),
        the finished rows are written as one fingerprinted segment
        beside ``manifest_path`` (created when missing), and the
        manifest gains one entry — prior segments are never read or
        rewritten, so a rescan costs O(new rows) on the storage side.
        Returns the whole logical dataset, reopened from the manifest.
        """
        if dataset is not None:
            raise ValueError("append_to and dataset are mutually exclusive: "
                             "append mode always runs into a fresh segment")
        from repro.lumscan.serialize import load_dataset
        result = self._execute(tasks, None)
        append_segment(manifest_path, result.export_columns())
        result.close()
        return load_dataset(manifest_path)

    # ------------------------------------------------------------------ #

    def _execute(self, tasks: List[ProbeTask],
                 dataset: Optional[ScanDataset]) -> ScanDataset:
        data = dataset if dataset is not None else ScanDataset()
        if self._workers == 1 or len(tasks) <= 1:
            for task in tasks:
                record_probe(data, task.domain, task.country,
                             self._scanner.run_task(task))
            return data

        if self._executor == "process":
            return self._execute_processes(tasks, data)
        chunks = [tasks[i:i + self._chunk_size]
                  for i in range(0, len(tasks), self._chunk_size)]
        logger.debug("engine: %d tasks in %d chunks over %d %s workers",
                     len(tasks), len(chunks), self._workers, self._executor)
        with ThreadPoolExecutor(max_workers=self._workers) as pool:
            # Executor.map yields chunk results in submission order, so the
            # merge below reproduces the serial record order exactly even
            # though chunks complete out of order.
            for results in pool.map(self._run_chunk, chunks):
                for task, result in results:
                    record_probe(data, task.domain, task.country, result)
        return data

    def _run_chunk(self, chunk: List[ProbeTask]):
        run = self._scanner.run_task
        return [(task, run(task)) for task in chunk]

    def _execute_processes(self, tasks: List[ProbeTask],
                           data: ScanDataset) -> ScanDataset:
        scanner = self._scanner
        spawn = getattr(scanner, "spawn_spec", None)
        if spawn is None:
            raise TypeError(
                f"executor='process' needs a spawnable scanner "
                f"(spawn_spec/worker_counts/absorb_worker_counts); "
                f"{type(scanner).__name__} has no spawn_spec")
        spec = spawn()
        pack = self._freeze_world_pack()
        if pack is not None:
            spec = replace(spec, world_source=pack.handle)
        exchange = None if self._exchange == "pickle" else \
            ShardExchange(self._exchange, spill_dir=self._spill_dir)
        tuner = ChunkAutotuner(initial=self._chunk_size,
                               target_seconds=self._target_chunk_seconds)
        buffer = ChunkReorderBuffer()
        pending: Dict[object, int] = {}   # future -> chunk sequence number
        merger: Optional[SpillDatasetBuilder] = None
        requests = fetches = 0
        spawned = pack_loads = 0
        spawn_seconds = build_seconds = 0.0
        rss_peak = 0
        cursor = 0
        seq = 0
        logger.debug("engine: %d tasks over %d process workers "
                     "(exchange=%s, merge=%s, autotune=%s, world=%s)",
                     len(tasks), self._workers, self._exchange, self._merge,
                     tuner.enabled,
                     "pack" if pack is not None else "rebuild")
        try:
            exchange_spec = None if exchange is None else \
                exchange.open().spec()
            if self._merge == "spill":
                # The builder owns its own directory under spill_dir —
                # never the exchange session dir, which is removed
                # wholesale when the exchange closes.
                merger = SpillDatasetBuilder(directory=self._spill_dir)
                if len(data):
                    merger.extend_columns(data.export_columns())
            sink = data if merger is None else merger
            with ProcessPoolExecutor(
                    max_workers=self._workers,
                    initializer=_process_worker_init,
                    initargs=(spec, exchange_spec, self._clock)) as pool:

                def submit_next() -> bool:
                    nonlocal cursor, seq
                    if cursor >= len(tasks):
                        return False
                    chunk = tasks[cursor:cursor + tuner.chunk_size()]
                    pending[pool.submit(_process_run_chunk, seq, chunk)] = seq
                    cursor += len(chunk)
                    seq += 1
                    return True

                # Keep a bounded window of outstanding chunks: workers stay
                # saturated, the parent never holds more than
                # workers * PIPELINE_DEPTH unmerged results.
                for _ in range(self._workers * PIPELINE_DEPTH):
                    if not submit_next():
                        break
                # Stream-merge as chunks complete (any completion order);
                # the reorder buffer restores sequence order, and
                # extend_columns interns code tables in first-seen row
                # order, so the merged dataset is byte-identical to a
                # serial scan.
                while pending:
                    done, _ = wait(set(pending),
                                   return_when=FIRST_COMPLETED)
                    for future in done:
                        pending.pop(future)
                        (chunk_seq, payload, request_delta, fetch_delta,
                         n_tasks, elapsed, init_info) = future.result()
                        if init_info is not None:
                            spawned += 1
                            spawn_seconds += init_info["spawn_seconds"]
                            build_seconds += init_info["build_seconds"]
                            rss_peak = max(rss_peak, init_info["rss_bytes"])
                            if init_info["source"] == "pack":
                                pack_loads += 1
                        tuner.record(n_tasks, elapsed)
                        buffer.push(chunk_seq,
                                    (payload, request_delta, fetch_delta))
                        submit_next()
                    for payload, request_delta, fetch_delta in \
                            buffer.pop_ready():
                        self._merge_payload(sink, payload)
                        requests += request_delta
                        fetches += fetch_delta
            if merger is not None:
                data = merger.finalize()
                merger = None
        finally:
            # Error path: nothing below may leak a segment.  Unmerged
            # buffered shards, plus shards from futures that completed
            # after the failure, are released; closing the exchange then
            # removes the spill session directory wholesale.  The steps
            # are chained with nested finally blocks so a failure inside
            # one cleanup cannot skip the ones after it.
            try:
                for payload, _, _ in buffer.drain():
                    self._discard_payload(payload)
                for future in pending:
                    if future.cancel():
                        continue
                    try:
                        result = future.result()
                    except Exception:
                        continue
                    self._discard_payload(result[1])
            finally:
                try:
                    if merger is not None:
                        merger.abort()
                finally:
                    try:
                        if exchange is not None:
                            exchange.close()
                    finally:
                        if pack is not None:
                            # The parent owns the pack's backing
                            # storage: release it on every path —
                            # including worker-crash-during-init — so no
                            # shm block or spill file outlives the pool.
                            pack.release()
        scanner.absorb_worker_counts(
            requests, fetches,
            token=f"engine-batch-{next(_ABSORB_BATCH_IDS)}",
            init_stats=WorkerInitStats(
                spawned=spawned, spawn_seconds=spawn_seconds,
                build_seconds=build_seconds, pack_loads=pack_loads,
                rss_peak_bytes=rss_peak))
        return data

    def _freeze_world_pack(self):
        """Freeze the scanner's world for the pool, per ``world_source``.

        Returns the parent-owned pack (released in the execute
        ``finally``) or None when freezing is off, unsupported by the
        scanner, or failed under ``world_source="auto"`` — the workers
        then fall back to the spec rebuild, which is bit-identical.
        ``world_source="pack"`` propagates freeze failures instead of
        degrading silently.
        """
        if self._world_source == "rebuild":
            return None
        freeze = getattr(self._scanner, "freeze_world_pack", None)
        if freeze is None:
            return None
        try:
            return freeze(directory=self._spill_dir)
        except OSError:
            if self._world_source == "pack":
                raise
            logger.debug("world freeze failed; workers will rebuild",
                         exc_info=True)
            return None

    @staticmethod
    def _merge_payload(sink, payload) -> None:
        """Fold one chunk's result into the merge sink.

        ``sink`` is the parent :class:`ScanDataset` (memory merge) or a
        :class:`SpillDatasetBuilder` (spill merge) — both consume
        bundles through the same ``extend_columns`` contract.
        """
        if isinstance(payload, ShardHandle):
            try:
                with open_shard(payload) as reader:
                    sink.extend_columns(reader.columns)
            finally:
                release_shard(payload)
        else:
            sink.extend_columns(payload.export_columns())

    @staticmethod
    def _discard_payload(payload) -> None:
        """Release a chunk result without merging it (error paths)."""
        if isinstance(payload, ShardHandle):
            release_shard(payload)
