"""The Scanner protocol: the probing interface the studies depend on.

Both :class:`~repro.lumscan.scanner.Lumscan` (inline execution) and
:class:`~repro.lumscan.engine.ScanEngine` (deterministically sharded
worker pool) satisfy it, and the study pipelines are written against this
protocol rather than either concrete class — the former stringly-typed
``"Lumscan | ScanEngine"`` unions are gone.
"""

from __future__ import annotations

from typing import (
    Iterable,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.lumscan.records import ScanDataset


@runtime_checkable
class Scanner(Protocol):
    """Anything that can run scans and resamples over (domain, country)."""

    def scan(self, urls: Sequence[str], countries: Sequence[str],
             samples: int = 3, epoch: int = 0,
             dataset: Optional[ScanDataset] = None) -> ScanDataset:
        """Probe every (country, url) pair ``samples`` times."""
        ...

    def resample(self, pairs: Iterable[Tuple[str, str]], samples: int,
                 epoch: int = 0,
                 dataset: Optional[ScanDataset] = None) -> ScanDataset:
        """Re-probe specific (domain, country) pairs ``samples`` times."""
        ...


@runtime_checkable
class SpawnableScanner(Protocol):
    """The extra contract ``ScanEngine(executor="process")`` requires.

    A spawnable scanner can describe itself as a picklable spec that a
    worker process rebuilds into a bit-identical replica, and can fold the
    replicas' traffic stats back into its own counters so request/fetch
    totals stay accurate across process boundaries.
    :class:`~repro.lumscan.scanner.Lumscan` satisfies this.
    """

    def run_task(self, task) -> object:
        """Execute one probe task (the engine's unit of work)."""
        ...

    def spawn_spec(self) -> object:
        """A picklable recipe for rebuilding this scanner in a worker."""
        ...

    def worker_counts(self) -> Tuple[int, int]:
        """(requests, fetches) served so far — the delta source."""
        ...

    def absorb_worker_counts(self, requests: int, fetches: int,
                             token: Optional[str] = None,
                             init_stats=None) -> None:
        """Fold worker-replica traffic deltas into this scanner's stats.

        ``token`` names the batch of deltas; implementations must reject
        (or treat as a no-op) a token they have already absorbed, so a
        retried chunk can never double-count traffic totals.
        ``init_stats``, when given, carries a
        :class:`~repro.lumscan.engine.WorkerInitStats` batch of worker
        spawn-time/world-build-time accounting to accumulate for
        ``worker_init_stats()`` consumers (stage stats, benchmarks).
        """
        ...
