"""Columnar shard exchange: zero-copy worker→parent result transport.

The process executor's original return path pickled whole
:class:`~repro.lumscan.records.ScanDataset` objects back to the parent —
per-row serialization cost in the worker *and* the parent, paid on the
merge path that every probe funnels through.  This module replaces it
with flat binary **shard segments**: a worker serializes its trimmed
int-coded columns (raw numpy buffers plus JSON code tables) into a
`multiprocessing.shared_memory` block or an mmap-able spill file, and
returns only a tiny picklable :class:`ShardHandle`.  The parent maps the
segment, rebuilds :class:`~repro.lumscan.records.ShardColumns` views
directly over the mapped bytes (``np.frombuffer`` — no row decode, no
copy), bulk-extends its dataset, and releases the segment.

Segment layout (format ``LSHD`` v1)::

    offset 0   magic  b"LSHD"
    offset 4   u32 LE header length H
    offset 8   header: canonical JSON (sorted keys, no whitespace)
    ...        zero padding to a 16-byte boundary  -> payload base B
    B + off    payload sections at the offsets the header records

The header carries two tables, each entry ``[name, ..., offset, nbytes]``
with offsets relative to ``B``:

* ``columns`` — the five fixed-dtype row columns (``dcodes`` ``<i4``,
  ``ccodes`` ``<i4``, ``statuses`` ``<i2``, ``lengths`` ``<i8``,
  ``ecodes`` ``<i2``), stored as raw little-endian buffers, each padded
  to 16-byte alignment so the mapped views are aligned.
* ``json`` — the string-bearing sections (domain/country/error code
  tables, retained bodies as ``[row, body]`` pairs, interfered row
  indices), stored as canonical JSON.

**Ordering guarantees.**  Code tables are written in first-seen row
order (their in-memory order), bodies are written sorted by row index,
and interfered indices are written sorted — every byte of a segment is a
pure function of the chunk's rows, so identical chunks produce identical
segments and the ``repro.lint`` iter-order rule can treat the writer as
a serialization sink.  Merging segments in chunk-sequence order through
:meth:`ScanDataset.extend_columns` therefore reproduces the serial
dataset bit-for-bit.

Lifetime is owned by the parent: workers ``close()`` (and unregister
from their resource tracker) immediately after writing, and the parent
unlinks each segment after merging it — or, on error paths, via
:func:`release_shard` / the :class:`ShardExchange` session context.

Beyond the worker exchange, the same format is the repo's **checkpoint
and analytics substrate**: :func:`write_segment_file` persists a whole
dataset as one fingerprinted segment (atomic rename, bit-deterministic),
:class:`SegmentMapping` + :meth:`ScanDataset.from_columns` open it back
as a zero-copy mapped dataset, and :class:`SpillDatasetBuilder` merges
worker shards straight into an on-disk segment so a merged result never
needs to fit in parent RAM.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import shutil
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.lumscan.records import NO_ERROR, ScanDataset, ShardColumns

MAGIC = b"LSHD"
FORMAT_VERSION = 1

#: Section alignment: mapped column views start on 16-byte boundaries.
ALIGNMENT = 16

#: Canonical row-column order and on-disk dtypes (little-endian).
COLUMN_DTYPES: Tuple[Tuple[str, str], ...] = (
    ("dcodes", "<i4"),
    ("ccodes", "<i4"),
    ("statuses", "<i2"),
    ("lengths", "<i8"),
    ("ecodes", "<i2"),
)

#: Canonical order of the JSON-encoded sections.
JSON_SECTIONS: Tuple[str, ...] = (
    "domains", "countries", "errors", "bodies", "interfered",
)

#: Transport kinds a segment can live in.
KIND_SHM = "shm"
KIND_FILE = "file"

#: Valid ``ShardExchange(mode=...)`` values ("auto" resolves at open).
EXCHANGE_MODES = ("auto", KIND_SHM, KIND_FILE)

#: Resource-lifetime contract enforced by ``repro.lint`` (flow-sensitive
#: acquire/release pairing, buffer-escape, and atomic-write rules).  A
#: pure literal: the linter parses it with ``ast.literal_eval`` and
#: merges it into its contract registry — keep it in sync with the
#: classes below when the codec surface changes.
LINT_RESOURCE_CONTRACT = {
    "codec": "shards",
    "resources": [
        {"name": "shard-exchange",
         "acquire": ["ShardExchange"],
         "release_methods": ["close"]},
        {"name": "shard-reader",
         "acquire": ["ShardReader", "open_shard"],
         "release_methods": ["close"],
         "release_funcs": ["release_shard"]},
        {"name": "segment-mapping",
         "acquire": ["SegmentMapping"],
         "release_methods": ["close"]},
        {"name": "spill-builder",
         "acquire": ["SpillDatasetBuilder"],
         "release_methods": ["finalize", "abort", "_cleanup"]},
    ],
    "buffers": [
        {"name": "segment-mapping",
         "acquire": ["SegmentMapping"],
         "close_methods": ["close"],
         "view_attrs": ["buffer"],
         "view_funcs": ["decode_shard"]},
    ],
    "atomic": {
        "suffixes": [".lshd", ".lshm", "manifest.json"],
        "writers": ["write_segment_file", "write_manifest",
                    "store_segment", "adopt_segment", "append_segment",
                    "compact_manifest"],
    },
}


@dataclass(frozen=True)
class ShardHandle:
    """Lightweight picklable reference to one written shard segment.

    This is everything a worker sends back through the pool: the parent
    re-opens the segment by ``ref`` (a shared-memory block name or a
    spill-file path) and never receives the rows themselves.
    """

    kind: str      # KIND_SHM or KIND_FILE
    ref: str       # shm block name, or absolute spill-file path
    nbytes: int    # total segment size


@dataclass(frozen=True)
class ExchangeSpec:
    """Picklable recipe telling worker processes where to write shards."""

    mode: str          # KIND_SHM or KIND_FILE (already resolved, not "auto")
    directory: str     # spill session directory (empty for shared memory)


def shm_available() -> bool:
    """True when POSIX shared memory can actually be allocated here."""
    try:
        from multiprocessing import shared_memory
        block = shared_memory.SharedMemory(create=True, size=ALIGNMENT)
    except (ImportError, OSError):
        return False
    block.close()
    block.unlink()
    return True


def _pad(n: int) -> int:
    return (n + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


#: Digest width of the optional segment fingerprint (blake2b, hex).
FINGERPRINT_BYTES = 16


def _combine_digests(digests: List[bytes]) -> str:
    """Fold per-section digests into the segment fingerprint.

    The fingerprint hashes the sections' *digests* (in payload order)
    rather than the raw bytes so the sequential writer and the streaming
    :class:`SpillDatasetBuilder` — which only ever sees one chunk of a
    column at a time — arrive at the same value.
    """
    outer = hashlib.blake2b(digest_size=FINGERPRINT_BYTES)
    for digest in digests:
        outer.update(digest)
    return outer.hexdigest()


def encode_shard(columns: ShardColumns,
                 fingerprint: bool = False
                 ) -> Tuple[bytes, List[Tuple[int, bytes]], int]:
    """Serialize a column bundle to ``(header, payload, payload_nbytes)``.

    ``payload`` is a list of ``(relative_offset, bytes)`` sections; the
    caller places them at ``payload_base(header) + offset``.  Every byte
    is a deterministic function of the rows: code tables keep first-seen
    order, bodies are sorted by row index, interfered indices sorted.

    ``fingerprint=True`` adds a payload digest to the header (checkpoint
    segments carry one; hot-path worker shards skip the hashing cost).
    Readers ignore unknown header keys, so both flavors decode the same.
    """
    payload: List[Tuple[int, bytes]] = []
    column_meta = []
    offset = 0
    arrays = {
        "dcodes": columns.dcodes,
        "ccodes": columns.ccodes,
        "statuses": columns.statuses,
        "lengths": columns.lengths,
        "ecodes": columns.ecodes,
    }
    for name, dtype in COLUMN_DTYPES:
        blob = np.ascontiguousarray(
            arrays[name][: columns.n], dtype=np.dtype(dtype)).tobytes()
        column_meta.append([name, dtype, offset, len(blob)])
        payload.append((offset, blob))
        offset += _pad(len(blob))
    sections = {
        "domains": list(columns.domain_names),
        "countries": list(columns.country_names),
        "errors": list(columns.error_names),
        "bodies": [[int(row), body]
                   for row, body in sorted(columns.bodies.items())],
        "interfered": sorted(int(row) for row in columns.interfered),
    }
    json_meta = []
    for name in JSON_SECTIONS:
        blob = json.dumps(sections[name], ensure_ascii=False,
                          separators=(",", ":")).encode("utf-8")
        json_meta.append([name, offset, len(blob)])
        payload.append((offset, blob))
        offset += _pad(len(blob))
    header = {
        "version": FORMAT_VERSION,
        "n": int(columns.n),
        "columns": column_meta,
        "json": json_meta,
    }
    if fingerprint:
        header["fingerprint"] = _combine_digests(
            [hashlib.blake2b(blob, digest_size=FINGERPRINT_BYTES).digest()
             for _, blob in payload])
    header_bytes = json.dumps(header, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
    return header_bytes, payload, offset


def payload_base(header_bytes: bytes) -> int:
    """Absolute offset of the payload area for a given header."""
    return _pad(len(MAGIC) + 4 + len(header_bytes))


def _write_segment(buffer, header_bytes: bytes,
                   payload: List[Tuple[int, bytes]]) -> None:
    base = payload_base(header_bytes)
    view = memoryview(buffer)
    view[0:4] = MAGIC
    view[4:8] = len(header_bytes).to_bytes(4, "little")
    view[8:8 + len(header_bytes)] = header_bytes
    for offset, blob in payload:
        view[base + offset: base + offset + len(blob)] = blob


def _unregister_shm(name: str) -> None:
    # The creating process hands segment lifetime to the parent; without
    # this its resource tracker would unlink (or warn about) blocks the
    # parent still owns.
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister("/" + name.lstrip("/"), "shared_memory")
    except Exception:  # pragma: no cover - tracker variations across OSes
        pass


def write_shard(columns: ShardColumns, spec: ExchangeSpec,
                seq: int) -> ShardHandle:
    """Serialize ``columns`` into a new segment; returns its handle.

    Spill files are written via temp-then-rename, so a crashed worker
    can never leave a segment that reads as complete but is truncated.
    """
    header_bytes, payload, payload_nbytes = encode_shard(columns)
    total = payload_base(header_bytes) + payload_nbytes
    if spec.mode == KIND_SHM:
        from multiprocessing import shared_memory
        block = shared_memory.SharedMemory(create=True, size=max(total, 1))
        try:
            _write_segment(block.buf, header_bytes, payload)
        except BaseException:
            block.close()
            block.unlink()
            raise
        name = block.name
        block.close()
        _unregister_shm(name)
        return ShardHandle(kind=KIND_SHM, ref=name, nbytes=total)
    path = os.path.join(spec.directory, f"shard-{os.getpid()}-{seq:08d}.seg")
    buffer = bytearray(total)
    _write_segment(buffer, header_bytes, payload)
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "wb") as handle:
            handle.write(buffer)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return ShardHandle(kind=KIND_FILE, ref=path, nbytes=total)


def write_segment_file(columns: ShardColumns, path: str,
                       fingerprint: bool = True) -> int:
    """Write ``columns`` as one complete LSHD segment file at ``path``.

    The checkpoint-side writer: identical byte layout to the
    worker-exchange shards, plus a header fingerprint so a segment's
    integrity is checkable without decoding the payload.  The write is
    atomic (temp + ``os.replace``) and the bytes are a pure function of
    the rows.  Returns the segment size in bytes.
    """
    header_bytes, payload, payload_nbytes = encode_shard(
        columns, fingerprint=fingerprint)
    total = payload_base(header_bytes) + payload_nbytes
    buffer = bytearray(total)
    _write_segment(buffer, header_bytes, payload)
    target = os.fspath(path)
    tmp = f"{target}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(buffer)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return total


def read_segment_header(path) -> Dict[str, object]:
    """Read a segment file's header without mapping or decoding the payload.

    Powers ``repro-geoblock store inspect``: only the magic and the
    header JSON are read, so a million-row checkpoint inspects in
    O(header) regardless of payload size.
    """
    name = os.fspath(path)
    with open(name, "rb") as handle:
        if handle.read(len(MAGIC)) != MAGIC:
            raise ValueError(f"{name}: not an LSHD segment (bad magic)")
        header_len = int.from_bytes(handle.read(4), "little")
        blob = handle.read(header_len)
    if len(blob) != header_len:
        raise ValueError(f"{name}: truncated segment header")
    return json.loads(blob.decode("utf-8"))


def decode_shard(buffer) -> ShardColumns:
    """Rebuild :class:`ShardColumns` views directly over segment bytes.

    The returned arrays alias ``buffer`` (zero-copy); they stay valid
    only while the mapping is open.  :class:`ShardReader` owns that
    lifetime.
    """
    view = memoryview(buffer)
    if bytes(view[0:4]) != MAGIC:
        raise ValueError("not a shard segment (bad magic)")
    header_len = int.from_bytes(view[4:8], "little")
    header = json.loads(bytes(view[8:8 + header_len]).decode("utf-8"))
    if header["version"] != FORMAT_VERSION:
        raise ValueError(f"unsupported shard format v{header['version']}")
    base = _pad(len(MAGIC) + 4 + header_len)
    arrays = {}
    for name, dtype, offset, nbytes in header["columns"]:
        dt = np.dtype(dtype)
        arrays[name] = np.frombuffer(view, dtype=dt,
                                     count=nbytes // dt.itemsize,
                                     offset=base + offset)
    sections = {}
    for name, offset, nbytes in header["json"]:
        sections[name] = json.loads(
            bytes(view[base + offset: base + offset + nbytes]).decode("utf-8"))
    return ShardColumns(
        n=int(header["n"]),
        dcodes=arrays["dcodes"],
        ccodes=arrays["ccodes"],
        statuses=arrays["statuses"],
        lengths=arrays["lengths"],
        ecodes=arrays["ecodes"],
        domain_names=sections["domains"],
        country_names=sections["countries"],
        error_names=sections["errors"],
        bodies={int(row): body for row, body in sections["bodies"]},
        interfered=sections["interfered"],
    )


class ShardReader:
    """Zero-copy view over one segment; ``close()`` releases the mapping.

    Usable as a context manager yielding the reader itself (read
    ``reader.columns`` inside the block and do not keep references to it
    past the block — the views alias the mapping, and a live reference
    would make the unmap fail).  Closing only unmaps — removing the
    segment itself is :func:`release_shard`'s job, so a reader can be
    retried.
    """

    def __init__(self, handle: ShardHandle) -> None:
        self._handle = handle
        self._shm = None
        self._mmap: Optional[mmap.mmap] = None
        self._file = None
        if handle.kind == KIND_SHM:
            from multiprocessing import shared_memory
            self._shm = shared_memory.SharedMemory(name=handle.ref)
            buffer = self._shm.buf
        else:
            self._file = open(handle.ref, "rb")
            self._mmap = mmap.mmap(self._file.fileno(), 0,
                                   access=mmap.ACCESS_READ)
            buffer = self._mmap
        self.columns: Optional[ShardColumns] = decode_shard(buffer)

    def __enter__(self) -> "ShardReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Drop the column views and release the underlying mapping."""
        self.columns = None
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._shm is not None:
            self._shm.close()
            self._shm = None


def open_shard(handle: ShardHandle) -> ShardReader:
    """Map a segment for reading (context manager over its columns)."""
    return ShardReader(handle)


def release_shard(handle: ShardHandle) -> None:
    """Remove a segment without reading it (idempotent; error-path safe)."""
    if handle.kind == KIND_SHM:
        from multiprocessing import shared_memory
        try:
            block = shared_memory.SharedMemory(name=handle.ref)
        except FileNotFoundError:
            return
        block.close()
        try:
            block.unlink()
        except FileNotFoundError:  # pragma: no cover - unlink race
            pass
        return
    try:
        os.remove(handle.ref)
    except FileNotFoundError:
        pass


def resolve_mode(mode: str) -> str:
    """Resolve an exchange mode ("auto" prefers shared memory)."""
    if mode not in EXCHANGE_MODES:
        raise ValueError(f"exchange mode must be one of {EXCHANGE_MODES}, "
                         f"got {mode!r}")
    if mode == "auto":
        return KIND_SHM if shm_available() else KIND_FILE
    return mode


class ShardExchange:
    """Parent-side transport session for one engine execution.

    Owns the spill session directory (file mode) and guarantees that
    closing the session removes every segment the session directory
    still holds — the engine's error paths lean on this so a mid-scan
    exception cannot orphan spill files under the checkpoint dir.
    Shared-memory segments have no directory; the engine releases those
    per handle.  Usable as a context manager.
    """

    def __init__(self, mode: str = "auto",
                 spill_dir: Optional[str] = None) -> None:
        self._mode = resolve_mode(mode)
        self._spill_parent = spill_dir
        self._dir: Optional[str] = None

    @property
    def mode(self) -> str:
        """Resolved transport kind (KIND_SHM or KIND_FILE)."""
        return self._mode

    @property
    def directory(self) -> Optional[str]:
        """The open session's spill directory (None for shm / closed)."""
        return self._dir

    def open(self) -> "ShardExchange":
        """Create the session spill directory (no-op for shared memory)."""
        if self._mode == KIND_FILE and self._dir is None:
            base = self._spill_parent or tempfile.gettempdir()
            os.makedirs(base, exist_ok=True)
            self._dir = tempfile.mkdtemp(prefix="lshd-", dir=base)
        return self

    def spec(self) -> ExchangeSpec:
        """The picklable worker-side recipe for this session."""
        if self._mode == KIND_FILE and self._dir is None:
            raise RuntimeError("exchange session is not open")
        return ExchangeSpec(mode=self._mode, directory=self._dir or "")

    def close(self) -> None:
        """End the session, removing the spill directory and its segments."""
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None

    def __enter__(self) -> "ShardExchange":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()


class SegmentMapping:
    """Read-only mmap over a whole segment file (dataset-lifetime owner).

    :class:`ShardReader` owns short merge-scoped mappings; this class
    backs long-lived mapped datasets (checkpoint loads, spill-merge
    results).  ``close()`` is best-effort: the file descriptor always
    closes, but the mapping itself survives while numpy column views
    still alias it — ``close()`` then returns False and the OS reclaims
    the pages when the last view is garbage-collected.  A mapping over
    an unlinked file stays valid (POSIX), so invalidating or replacing a
    checkpoint under a live reader is safe.
    """

    def __init__(self, path) -> None:
        self._path = os.fspath(path)
        self._file = open(self._path, "rb")
        try:
            self._mmap: Optional[mmap.mmap] = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except BaseException:
            self._file.close()
            raise

    @property
    def path(self) -> str:
        """The mapped segment's path at open time."""
        return self._path

    @property
    def closed(self) -> bool:
        """True once ``close()`` released (or abandoned) the mapping."""
        return self._mmap is None

    @property
    def buffer(self) -> mmap.mmap:
        """The raw mapped segment bytes (valid until ``close()``)."""
        if self._mmap is None:
            raise ValueError(f"segment mapping over {self._path} is closed")
        return self._mmap

    def close(self) -> bool:
        """Release the mapping; False when live views keep it pinned."""
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._mmap is not None:
            mapped, self._mmap = self._mmap, None
            try:
                mapped.close()
            except BufferError:
                # Exported numpy views still alias the pages; dropping
                # our reference hands reclamation to their collection.
                return False
        return True


class SpillDatasetBuilder:
    """Streaming merge of column bundles into one on-disk segment.

    The spill-backed counterpart of :meth:`ScanDataset.extend_columns`
    for merged results that must not live in parent RAM: each
    ``extend_columns`` call remaps the bundle's categorical codes
    through the builder's global tables (identical first-seen interning,
    so the finished segment is bit-identical to an in-memory merge
    followed by :func:`write_segment_file`) and appends the remapped row
    columns to per-column spill files.  ``finalize()`` stitches the
    spill files into one fingerprinted segment and returns it as a
    zero-copy mapped :class:`~repro.lumscan.records.ScanDataset`.  Only
    the sparse side tables (retained bodies, interfered rows) are held
    in memory — at paper scale a few percent of the rows.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        base = directory or tempfile.gettempdir()
        os.makedirs(base, exist_ok=True)
        self._dir = tempfile.mkdtemp(prefix="lshd-merge-", dir=base)
        self._n = 0
        self._files: Dict[str, object] = {}
        self._digests: Dict[str, object] = {}
        for name, _ in COLUMN_DTYPES:
            self._files[name] = open(
                os.path.join(self._dir, f"{name}.col"), "wb")
            self._digests[name] = hashlib.blake2b(
                digest_size=FINGERPRINT_BYTES)
        self._domain_code: Dict[str, int] = {}
        self._domain_names: List[str] = []
        self._country_code: Dict[str, int] = {}
        self._country_names: List[str] = []
        self._error_code: Dict[str, int] = {}
        self._error_names: List[str] = []
        self._bodies: Dict[int, str] = {}
        self._interfered: set = set()
        self._closed = False

    def __len__(self) -> int:
        return self._n

    @property
    def directory(self) -> str:
        """The builder's private spill directory (removed on finalize)."""
        return self._dir

    @staticmethod
    def _intern(code_of: Dict[str, int], names: List[str], value: str) -> int:
        code = code_of.get(value)
        if code is None:
            code = len(names)
            code_of[value] = code
            names.append(value)
        return code

    def extend_columns(self, cols: ShardColumns) -> None:
        """Append all rows of a bundle (``ScanDataset.extend_columns``'s
        contract: first-seen interning in append order, bulk column
        copies, side tables rebased by row offset)."""
        if self._closed:
            raise ValueError("spill builder is finalized or aborted")
        m = cols.n
        if m == 0:
            return
        offset = self._n
        dmap = np.fromiter(
            (self._intern(self._domain_code, self._domain_names, name)
             for name in cols.domain_names),
            dtype=np.int32, count=len(cols.domain_names))
        cmap = np.fromiter(
            (self._intern(self._country_code, self._country_names, name)
             for name in cols.country_names),
            dtype=np.int32, count=len(cols.country_names))
        ecodes = cols.ecodes[:m]
        if len(cols.error_names):
            emap = np.fromiter(
                (self._intern(self._error_code, self._error_names, name)
                 for name in cols.error_names),
                dtype=np.int16, count=len(cols.error_names))
            ecodes = np.where(ecodes == NO_ERROR, np.int16(NO_ERROR),
                              emap[np.maximum(ecodes, 0)])
        remapped = {
            "dcodes": dmap[cols.dcodes[:m]],
            "ccodes": cmap[cols.ccodes[:m]],
            "statuses": cols.statuses[:m],
            "lengths": cols.lengths[:m],
            "ecodes": ecodes,
        }
        for name, dtype in COLUMN_DTYPES:
            blob = np.ascontiguousarray(
                remapped[name], dtype=np.dtype(dtype)).tobytes()
            self._files[name].write(blob)
            self._digests[name].update(blob)
        for idx, body in cols.bodies.items():
            self._bodies[offset + int(idx)] = body
        if cols.interfered:
            self._interfered.update(offset + int(idx)
                                    for idx in cols.interfered)
        self._n = offset + m

    def finalize(self, path: Optional[str] = None) -> ScanDataset:
        """Write the final segment and return it as a mapped dataset.

        ``path`` places the segment at a caller-owned location (where it
        survives the returned dataset's ``close()``); by default the
        segment is unlinked right after mapping, so its disk space is
        reclaimed when the dataset and any outstanding views die.
        """
        if self._closed:
            raise ValueError("spill builder is finalized or aborted")
        self._closed = True
        column_meta = []
        digests = []
        offset = 0
        for name, dtype in COLUMN_DTYPES:
            self._files[name].close()
            nbytes = os.path.getsize(os.path.join(self._dir, f"{name}.col"))
            column_meta.append([name, dtype, offset, nbytes])
            digests.append(self._digests[name].digest())
            offset += _pad(nbytes)
        sections = {
            "domains": list(self._domain_names),
            "countries": list(self._country_names),
            "errors": list(self._error_names),
            "bodies": [[int(row), body]
                       for row, body in sorted(self._bodies.items())],
            "interfered": sorted(int(row) for row in self._interfered),
        }
        json_meta = []
        json_blobs = []
        for name in JSON_SECTIONS:
            blob = json.dumps(sections[name], ensure_ascii=False,
                              separators=(",", ":")).encode("utf-8")
            json_meta.append([name, offset, len(blob)])
            json_blobs.append(blob)
            digests.append(hashlib.blake2b(
                blob, digest_size=FINGERPRINT_BYTES).digest())
            offset += _pad(len(blob))
        header = {
            "version": FORMAT_VERSION,
            "n": int(self._n),
            "columns": column_meta,
            "json": json_meta,
            "fingerprint": _combine_digests(digests),
        }
        header_bytes = json.dumps(header, sort_keys=True,
                                  separators=(",", ":")).encode("utf-8")
        base = payload_base(header_bytes)
        target = os.fspath(path) if path is not None else \
            os.path.join(self._dir, "merged.seg")
        tmp = f"{target}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as out:
                out.write(MAGIC)
                out.write(len(header_bytes).to_bytes(4, "little"))
                out.write(header_bytes)
                out.write(b"\x00" * (base - len(MAGIC) - 4
                                     - len(header_bytes)))
                for name, _, _, nbytes in column_meta:
                    with open(os.path.join(self._dir, f"{name}.col"),
                              "rb") as col:
                        shutil.copyfileobj(col, out, 1 << 20)
                    out.write(b"\x00" * (_pad(nbytes) - nbytes))
                for (name, _, nbytes), blob in zip(json_meta, json_blobs):
                    out.write(blob)
                    out.write(b"\x00" * (_pad(nbytes) - nbytes))
            os.replace(tmp, target)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            self._cleanup()
            raise
        mapping = SegmentMapping(target)
        try:
            if path is None:
                # POSIX: the mapped pages outlive the directory entry, so
                # the transient merge segment frees itself with the
                # dataset.
                os.remove(target)
            self._cleanup()
            columns = decode_shard(mapping.buffer)
        except BaseException:
            mapping.close()
            raise
        return ScanDataset.from_columns(columns, source=mapping)

    def abort(self) -> None:
        """Discard everything without writing a segment (error paths)."""
        if self._closed:
            return
        self._closed = True
        self._cleanup()

    def _cleanup(self) -> None:
        for name, _ in COLUMN_DTYPES:
            handle = self._files[name]
            if not handle.closed:
                handle.close()
        shutil.rmtree(self._dir, ignore_errors=True)


# --------------------------------------------------------------------- #
# Manifests: multi-segment logical datasets (format LSHM v1)

MANIFEST_MAGIC = b"LSHM"
MANIFEST_VERSION = 1

#: Canonical manifest file suffix (sniffing is by magic, never suffix).
MANIFEST_SUFFIX = ".lshm"


@dataclass(frozen=True)
class SegmentEntry:
    """One segment of a manifest-backed logical dataset.

    ``file`` is the segment's name relative to the manifest's directory,
    so a checkpoint directory can be moved or copied wholesale.
    """

    file: str          # segment filename, relative to the manifest
    rows: int          # row count (the segment header's ``n``)
    fingerprint: str   # the segment header's blake2b-128 fingerprint


@dataclass(frozen=True)
class Manifest:
    """A decoded ``.lshm`` manifest: an ordered list of segment entries.

    Segment order is load order — appending a rescan adds an entry at
    the end, so the logical row order is history order.  The manifest
    fingerprint is a pure function of the entry fingerprints (in order),
    which makes it a content key for the whole logical dataset without
    rehashing any payload bytes.
    """

    path: str
    entries: Tuple[SegmentEntry, ...]

    @property
    def rows(self) -> int:
        """Total logical row count across all segments."""
        return sum(entry.rows for entry in self.entries)

    @property
    def fingerprint(self) -> str:
        """Combined fingerprint over the entry fingerprints, in order."""
        return manifest_fingerprint(self.entries)

    def segment_paths(self) -> List[str]:
        """Absolute segment paths, in manifest (load) order."""
        base = os.path.dirname(os.path.abspath(self.path))
        return [os.path.join(base, entry.file) for entry in self.entries]


def manifest_fingerprint(entries) -> str:
    """Fold per-segment fingerprints into the manifest fingerprint.

    Mirrors :func:`_combine_digests`: the outer hash runs over the
    segments' digest bytes in manifest order, so the value changes iff a
    segment's content, count, or order changes.
    """
    outer = hashlib.blake2b(digest_size=FINGERPRINT_BYTES)
    for entry in entries:
        outer.update(bytes.fromhex(entry.fingerprint))
    return outer.hexdigest()


def write_manifest(path, entries) -> Manifest:
    """Write an ``.lshm`` manifest atomically; returns the manifest.

    Layout: ``b"LSHM"`` followed by canonical JSON (sorted keys, no
    whitespace) — every byte a pure function of the entry list, so the
    writer is a ``repro.lint`` serialization sink.  Entry order is
    preserved (it *is* the logical row order).
    """
    entries = tuple(entries)
    doc = {
        "version": MANIFEST_VERSION,
        "fingerprint": manifest_fingerprint(entries),
        "rows": sum(entry.rows for entry in entries),
        "segments": [[entry.file, int(entry.rows), entry.fingerprint]
                     for entry in entries],
    }
    blob = MANIFEST_MAGIC + json.dumps(
        doc, sort_keys=True, separators=(",", ":")).encode("utf-8")
    target = os.fspath(path)
    tmp = f"{target}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return Manifest(path=target, entries=entries)


def read_manifest(path) -> Manifest:
    """Read and validate an ``.lshm`` manifest."""
    name = os.fspath(path)
    with open(name, "rb") as handle:
        blob = handle.read()
    if blob[: len(MANIFEST_MAGIC)] != MANIFEST_MAGIC:
        raise ValueError(f"{name}: not an LSHM manifest (bad magic)")
    doc = json.loads(blob[len(MANIFEST_MAGIC):].decode("utf-8"))
    if doc.get("version") != MANIFEST_VERSION:
        raise ValueError(f"{name}: unsupported manifest version "
                         f"{doc.get('version')!r}")
    entries = tuple(SegmentEntry(file=file, rows=int(rows), fingerprint=fp)
                    for file, rows, fp in doc["segments"])
    recorded = doc.get("fingerprint")
    if recorded != manifest_fingerprint(entries):
        raise ValueError(f"{name}: manifest fingerprint mismatch")
    total = sum(entry.rows for entry in entries)
    if doc.get("rows") != total:
        raise ValueError(f"{name}: manifest row count mismatch "
                         f"(recorded {doc.get('rows')!r}, "
                         f"entries sum to {total})")
    return Manifest(path=name, entries=entries)


def segment_file_name(stem: str, fingerprint: str) -> str:
    """Content-addressed segment file name under a manifest stem."""
    return f"{stem}.seg-{fingerprint}.lshd"


def manifest_stem(manifest_path: str) -> str:
    stem = os.path.basename(manifest_path)
    if stem.endswith(MANIFEST_SUFFIX):
        stem = stem[: -len(MANIFEST_SUFFIX)]
    return stem


def store_segment(columns: ShardColumns, manifest_path) -> SegmentEntry:
    """Write ``columns`` as a content-addressed segment beside a manifest.

    The segment is written to a temp name, its fingerprint read back
    from the header, and the file renamed to
    ``<stem>.seg-<fingerprint>.lshd`` — so identical row sets land on
    the identical file (idempotent re-writes) and the entry records
    exactly what the header says.  The manifest itself is not touched.
    """
    target = os.fspath(manifest_path)
    base = os.path.dirname(os.path.abspath(target))
    tmp = os.path.join(base, f".{manifest_stem(target)}.seg.{os.getpid()}.tmp")
    write_segment_file(columns, tmp, fingerprint=True)
    try:
        header = read_segment_header(tmp)
        name = segment_file_name(manifest_stem(target),
                                 str(header["fingerprint"]))
        os.replace(tmp, os.path.join(base, name))
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return SegmentEntry(file=name, rows=int(header["n"]),
                        fingerprint=str(header["fingerprint"]))


def adopt_segment(manifest_path, segment_path) -> Manifest:
    """Move an existing segment file under a manifest and append it.

    The spill-merge counterpart of :func:`append_segment`: the segment
    was already finalized on disk (e.g. by :class:`SpillDatasetBuilder`),
    so it is renamed into its content-addressed name — never re-written —
    and the manifest gains one entry.  Cost is O(header + rename),
    independent of segment size.
    """
    target = os.fspath(manifest_path)
    base = os.path.dirname(os.path.abspath(target))
    header = read_segment_header(segment_path)
    fingerprint = header.get("fingerprint")
    if not fingerprint:
        raise ValueError(f"{os.fspath(segment_path)}: segment carries no "
                         f"fingerprint; re-write it with fingerprint=True")
    name = segment_file_name(manifest_stem(target), str(fingerprint))
    final = os.path.join(base, name)
    if os.path.abspath(os.fspath(segment_path)) != os.path.abspath(final):
        os.replace(segment_path, final)
    entry = SegmentEntry(file=name, rows=int(header["n"]),
                         fingerprint=str(fingerprint))
    entries = read_manifest(target).entries if os.path.exists(target) else ()
    return write_manifest(target, entries + (entry,))


def append_segment(manifest_path, columns: ShardColumns) -> Manifest:
    """Append ``columns`` as one new segment of a manifest.

    Creates the manifest when it does not exist.  Cost is O(new rows):
    prior segments are never read or rewritten — only the (tiny)
    manifest file is replaced, atomically, after the new segment is
    fully on disk.  A crash between the two leaves an unreferenced
    segment file and a still-valid manifest.
    """
    target = os.fspath(manifest_path)
    entry = store_segment(columns, target)
    entries = read_manifest(target).entries if os.path.exists(target) else ()
    return write_manifest(target, entries + (entry,))


def compact_manifest(manifest_path,
                     spill_dir: Optional[str] = None) -> Manifest:
    """Merge all of a manifest's segments into one.

    Streams every segment through :class:`SpillDatasetBuilder` in
    manifest order — identical first-seen interning to an in-memory
    merge, so the compacted segment is **byte-identical** to writing the
    merged rows with the sequential :func:`write_segment_file` — then
    rewrites the manifest to the single new entry and unlinks the old
    segment files.  Live mappings over the old segments stay readable
    (POSIX unlink semantics).
    """
    target = os.fspath(manifest_path)
    base = os.path.dirname(os.path.abspath(target))
    manifest = read_manifest(target)
    tmp = os.path.join(base, f".{manifest_stem(target)}.compact."
                             f"{os.getpid()}.tmp")
    builder = SpillDatasetBuilder(spill_dir or base)
    try:
        for entry in manifest.entries:
            mapping = SegmentMapping(os.path.join(base, entry.file))
            try:
                builder.extend_columns(decode_shard(mapping.buffer))
            finally:
                mapping.close()
        merged = builder.finalize(path=tmp)
    except BaseException:
        builder.abort()
        raise
    merged.close()
    try:
        header = read_segment_header(tmp)
        name = segment_file_name(manifest_stem(target),
                                 str(header["fingerprint"]))
        os.replace(tmp, os.path.join(base, name))
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    entry = SegmentEntry(file=name, rows=int(header["n"]),
                         fingerprint=str(header["fingerprint"]))
    compacted = write_manifest(target, (entry,))
    for old in manifest.entries:
        if old.file != name:
            try:
                os.remove(os.path.join(base, old.file))
            except FileNotFoundError:
                pass
    return compacted
