"""Lumscan: the reliability-hardened Luminati scanning tool (§3.2)."""

from repro.lumscan.base import Scanner
from repro.lumscan.engine import ProbeTask, ScanEngine
from repro.lumscan.records import Sample, ScanDataset
from repro.lumscan.scanner import Lumscan, LumscanConfig
from repro.lumscan.serialize import dump_dataset, load_dataset

__all__ = ["ProbeTask", "ScanEngine", "Sample", "ScanDataset", "Scanner",
           "Lumscan", "LumscanConfig", "dump_dataset", "load_dataset"]
