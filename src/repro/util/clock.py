"""The sanctioned boundary between the repo and real time.

Everything downstream of a study must be a pure function of
``(seed, config)``; reading the process clock anywhere else makes output
depend on *when* the code ran.  The ``wall-clock`` lint rule therefore
bans direct ``time.*``/``datetime.*`` reads across ``src/repro`` — this
module is the single exemption, and every consumer takes an injectable
:class:`Clock` so tests can freeze time and replayed runs stay
byte-comparable.

:class:`SystemClock` reads the monotonic performance counter (elapsed
time can never go backwards across NTP steps); :class:`ManualClock` is
the frozen test double — it only moves when :meth:`ManualClock.advance`
is called.
"""

from __future__ import annotations

import time


class Clock:
    """Injectable monotonic clock (base implementation reads the OS)."""

    def monotonic(self) -> float:
        """Current monotonic reading, in seconds."""
        return time.perf_counter()

    def stopwatch(self) -> "Stopwatch":
        """Start a stopwatch at the current reading."""
        return Stopwatch(self)


class SystemClock(Clock):
    """The real process clock (alias of the base for explicit naming)."""


class ManualClock(Clock):
    """A frozen clock for tests: advances only when told to.

    Timing code driven by a ManualClock is fully deterministic — stage
    stats, report footers, and benchmark plumbing can be asserted
    byte-for-byte.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def monotonic(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward (negative steps are rejected)."""
        if seconds < 0:
            raise ValueError(f"clock cannot move backwards ({seconds})")
        self._now += seconds


class Stopwatch:
    """Elapsed-seconds helper bound to a :class:`Clock`."""

    __slots__ = ("_clock", "_started")

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._started = clock.monotonic()

    def elapsed(self) -> float:
        """Seconds since construction (or the last restart)."""
        return self._clock.monotonic() - self._started

    def restart(self) -> float:
        """Reset the origin; returns the elapsed time that was discarded."""
        elapsed = self.elapsed()
        self._started = self._clock.monotonic()
        return elapsed


#: Shared default instance for call sites without an injected clock.
SYSTEM_CLOCK = SystemClock()
