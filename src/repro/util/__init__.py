"""Shared utilities: deterministic RNG derivation and small helpers."""

from repro.util.rng import derive_rng, derive_seed, stable_hash

__all__ = ["derive_rng", "derive_seed", "stable_hash"]
