"""Shared utilities: deterministic RNG derivation and small helpers."""

from repro.util.clock import Clock, ManualClock, Stopwatch, SystemClock
from repro.util.rng import derive_rng, derive_seed, stable_hash

__all__ = [
    "Clock",
    "ManualClock",
    "Stopwatch",
    "SystemClock",
    "derive_rng",
    "derive_seed",
    "stable_hash",
]
