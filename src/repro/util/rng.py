"""Deterministic random-number derivation.

Every stochastic component in the simulation derives its randomness from a
root integer seed plus a string *scope*.  Using a stable hash (not Python's
randomized ``hash``) guarantees that the whole study reproduces bit-for-bit
across processes and Python versions, and that adding a new consumer of
randomness in one module does not perturb the stream seen by another.
"""

from __future__ import annotations

import hashlib
import random


def stable_hash(*parts: object) -> int:
    """Return a stable 64-bit hash of the given parts.

    Parts are stringified and joined with an unlikely separator, then hashed
    with BLAKE2b.  Unlike the builtin ``hash``, the result does not depend on
    ``PYTHONHASHSEED`` or the process.
    """
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def derive_seed(root: int, *scope: object) -> int:
    """Derive a child seed from a root seed and a scope path."""
    return stable_hash(root, *scope)


def derive_rng(root: int, *scope: object) -> random.Random:
    """Return a fresh ``random.Random`` seeded from (root, scope)."""
    return random.Random(derive_seed(root, *scope))
