"""A small bounded LRU mapping for hot-path memoization.

Built for caches of *pure-function* results (e.g. the per-domain origin
page in :class:`~repro.websim.world.World`): a lost entry only costs a
recompute, never correctness.  That property lets the implementation rely
on the GIL-atomicity of the underlying ``OrderedDict`` operations instead
of taking a lock on every access — the whole point of the cache is to keep
locks off the per-fetch hot path.  Under concurrent mutation the worst
case is a double-compute or a slightly unfair eviction, both benign.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """A bounded mapping evicting the least-recently-used entry.

    Unlike the ``dict.clear()``-at-capacity pattern it replaces, hitting
    the bound evicts *one* cold entry instead of wiping the whole working
    set — a full-population scan with a matching capacity never recomputes
    an entry.
    """

    __slots__ = ("_data", "_capacity")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._capacity = capacity

    @property
    def capacity(self) -> int:
        """Maximum number of retained entries."""
        return self._capacity

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Return the cached value (marking it recently used), or default."""
        data = self._data
        try:
            value = data[key]
            data.move_to_end(key)
        except KeyError:
            # The key may also vanish between the two calls when another
            # thread evicts it; either way it is a miss.
            return default
        return value

    def put(self, key: K, value: V) -> None:
        """Insert/refresh an entry, evicting the LRU entry past capacity."""
        data = self._data
        data[key] = value
        data.move_to_end(key)
        while len(data) > self._capacity:
            try:
                data.popitem(last=False)
            except KeyError:  # concurrent eviction emptied the dict
                break

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data


class MemoDict(Dict[K, V]):
    """An unbounded memo table for pure-function results.

    A plain ``dict`` subclass, so reads/writes keep their GIL-atomicity
    and zero overhead.  The type exists as a *contract*: entries must be
    idempotent — ``memo[k] = f(k)`` for a pure ``f`` — so concurrent
    double-computes race benignly (both writers store the same value)
    and a worker mutating one never changes observable output.  The
    ``shared-mutation`` lint rule sanctions writes to a MemoDict on
    worker paths for exactly that reason; reach for it instead of a bare
    ``dict`` whenever a cache is touched from :class:`ScanEngine`
    workers, and for :class:`LRUCache` when the table must stay bounded.
    """

    __slots__ = ()

    def memoize(self, key: K, compute) -> V:
        """Return ``self[key]``, computing and storing it on a miss."""
        try:
            return self[key]
        except KeyError:
            value = compute()
            self[key] = value
            return value
