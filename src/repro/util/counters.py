"""Lock-free hot-path counters.

The simulated transport answers in microseconds, so a mutex around a
``count += 1`` is a real fraction of per-probe cost (and a serialization
point for the thread-pool scan engine).  :class:`ShardedCounter` keeps one
cell per thread — increments touch only thread-local state — and sums the
cells on read.  Reads are rare (stage stats, assertions), increments are
per-fetch.

Process workers cannot share cells, so they report per-chunk deltas back
to the parent, which folds them in via :meth:`ShardedCounter.add` — the
merged total therefore accounts for every fetch regardless of executor.
"""

from __future__ import annotations

import threading
from typing import List


class ShardedCounter:
    """A monotonic counter sharded per thread, aggregated on read."""

    __slots__ = ("_local", "_cells", "_register_lock", "_absorbed")

    def __init__(self) -> None:
        self._local = threading.local()
        self._cells: List[List[int]] = []
        self._register_lock = threading.Lock()  # first touch per thread only
        self._absorbed = 0

    def increment(self) -> None:
        """Add 1 (lock-free except the first call from a new thread)."""
        try:
            cell = self._local.cell
        except AttributeError:
            cell = [0]
            self._local.cell = cell
            with self._register_lock:
                self._cells.append(cell)
        cell[0] += 1

    def add(self, amount: int) -> None:
        """Fold in a batch counted elsewhere (e.g. a process worker)."""
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        with self._register_lock:
            self._absorbed += amount

    @property
    def value(self) -> int:
        """The aggregate count across all threads and absorbed batches."""
        return self._absorbed + sum(cell[0] for cell in list(self._cells))
