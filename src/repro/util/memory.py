"""Process-memory introspection without external dependencies.

Worker RSS is a measured quantity of the scan engine (the frozen-world
layer exists to keep N workers from holding N copies of the world), so
both the engine's worker initializer and the benchmark suite need a
resident-set reading.  ``/proc/self/status`` gives current RSS on Linux;
elsewhere ``resource.getrusage`` supplies the peak RSS as a usable
stand-in.  Platforms offering neither report 0 — callers treat the value
as a gauge, never a correctness input.
"""

from __future__ import annotations


def rss_bytes() -> int:
    """This process's resident set size in bytes (0 when unreadable)."""
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except (ImportError, OSError):
        return 0
    # ru_maxrss is KiB on Linux, bytes on macOS.
    import sys

    return peak if sys.platform == "darwin" else peak * 1024
