"""Stage, RunContext, and per-stage instrumentation records.

A :class:`Stage` is a named phase of a study with *declared* outputs: the
function receives the :class:`RunContext`, reads earlier stages' artifacts
from ``context.artifacts``, and returns a dict holding exactly the
artifacts it declared.  Declaring outputs (name + kind) up front is what
lets the runner checkpoint them without knowing anything about the study,
and lets a resumed run load them back without executing the stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

#: Artifact kinds understood by the store.
KIND_DATASET = "dataset"     # DatasetReader -> LSHD/LSHM (or legacy JSONL)
KIND_JSON = "json"           # derived values -> versioned, tagged JSON


@dataclass(frozen=True)
class ArtifactSpec:
    """One declared stage output."""

    name: str
    kind: str = KIND_JSON

    def __post_init__(self) -> None:
        if self.kind not in (KIND_DATASET, KIND_JSON):
            raise ValueError(f"unknown artifact kind {self.kind!r}")


@dataclass(frozen=True)
class Stage:
    """One named study phase with declared output artifacts."""

    name: str
    outputs: Tuple[ArtifactSpec, ...]
    run: Callable[["RunContext"], Dict[str, object]]

    def output_names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.outputs)


@dataclass
class StageStats:
    """Wall-time / probe-count / cache-hit counters for one stage run."""

    stage: str
    seconds: float = 0.0
    probes: int = 0              # probes issued while the stage executed
    cache_hit: bool = False      # True when loaded from a checkpoint
    artifacts: int = 0           # number of artifacts produced/loaded
    records: int = 0             # total ScanDataset rows produced/loaded
    workers_spawned: int = 0     # worker processes initialized this stage
    worker_spawn_seconds: float = 0.0   # summed worker initializer time
    world_build_seconds: float = 0.0    # world rebuild/pack-load portion
    worker_pack_loads: int = 0   # workers that mapped a frozen worldpack

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for logs and the experiment report."""
        return {
            "stage": self.stage,
            "seconds": round(self.seconds, 3),
            "probes": self.probes,
            "cache_hit": self.cache_hit,
            "artifacts": self.artifacts,
            "records": self.records,
            "workers_spawned": self.workers_spawned,
            "worker_spawn_seconds": round(self.worker_spawn_seconds, 3),
            "world_build_seconds": round(self.world_build_seconds, 3),
            "worker_pack_loads": self.worker_pack_loads,
        }


@dataclass
class RunContext:
    """Shared state threaded through a study's stages.

    ``scanner`` satisfies the :class:`repro.lumscan.base.Scanner` protocol
    (a :class:`~repro.lumscan.scanner.Lumscan` or the parallel
    :class:`~repro.lumscan.engine.ScanEngine`).  ``extras`` carries study
    inputs that are not artifacts (clients, catalogs); ``artifacts``
    accumulates every completed stage's outputs; ``stats`` records one
    entry per executed (or checkpoint-loaded) stage.
    """

    world: object
    config: object
    scanner: object = None
    extras: Dict[str, object] = field(default_factory=dict)
    artifacts: Dict[str, object] = field(default_factory=dict)
    stats: List[StageStats] = field(default_factory=list)
    probe_counter: Optional[Callable[[], int]] = None

    def artifact(self, name: str) -> object:
        """A completed stage's output (raises KeyError when absent)."""
        try:
            return self.artifacts[name]
        except KeyError:
            raise KeyError(
                f"artifact {name!r} not produced yet; completed artifacts: "
                f"{sorted(self.artifacts)}") from None

    def probes_issued(self) -> int:
        """Current probe count (0 when no counter is wired)."""
        return self.probe_counter() if self.probe_counter is not None else 0
