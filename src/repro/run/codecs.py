"""Tagged JSON encoding for derived study artifacts.

Checkpointed stage outputs must survive a process boundary *exactly*: a
resumed run re-materializes them from disk and must behave bit-identically
to the run that produced them.  JSON alone can't carry tuples, sets,
Counters, tuple-keyed dicts, or the study dataclasses, so values are
encoded into a small tagged form::

    {"__repro__": "<tag>", ...payload...}

Dict insertion order (which :class:`collections.Counter` tie-breaking and
several downstream consumers observe) is preserved by encoding mappings as
ordered item lists.  Floats round-trip exactly — ``json`` serializes them
via ``repr`` and parses back the same IEEE value.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List

from repro.core.consistency import DomainConsistency
from repro.core.discovery import DiscoveredCluster
from repro.core.fingerprints import Fingerprint, FingerprintRegistry
from repro.core.identify import CDNPopulation
from repro.core.lengths import Outlier
from repro.core.resample import ConfirmedBlock
from repro.lumscan.records import Sample

_TAG = "__repro__"


def encode_artifact(value: Any) -> Any:
    """Encode a derived artifact into JSON-safe tagged form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, list):
        return [encode_artifact(item) for item in value]
    if isinstance(value, tuple):
        return {_TAG: "tuple", "items": [encode_artifact(i) for i in value]}
    if isinstance(value, Counter):
        return {_TAG: "counter",
                "items": [[encode_artifact(k), v]
                          for k, v in value.items()]}  # lint: ordered(Counter tie-breaking observes insertion order; decode rebuilds it from item order, so sorting would break fresh-vs-resumed byte identity)
    if isinstance(value, (set, frozenset)):
        return {_TAG: "set",
                "items": sorted(encode_artifact(i) for i in value)}
    if isinstance(value, dict):
        return {_TAG: "dict",
                "items": [[encode_artifact(k), encode_artifact(v)]
                          for k, v in value.items()]}  # lint: ordered(dict insertion order is part of the artifact contract — decode rebuilds it from encoded item order)
    if isinstance(value, Sample):
        return {_TAG: "sample", "domain": value.domain,
                "country": value.country, "status": value.status,
                "length": value.length, "body": value.body,
                "error": value.error, "interfered": value.interfered}
    if isinstance(value, Outlier):
        return {_TAG: "outlier", "index": value.index,
                "sample": encode_artifact(value.sample),
                "representative": value.representative,
                "relative_difference": value.relative_difference}
    if isinstance(value, ConfirmedBlock):
        return {_TAG: "confirmed-block", "domain": value.domain,
                "country": value.country, "page_type": value.page_type,
                "provider": value.provider, "agreement": value.agreement,
                "total_samples": value.total_samples}
    if isinstance(value, DiscoveredCluster):
        return {_TAG: "cluster", "label": value.label, "size": value.size,
                "exemplar": value.exemplar,
                "markers": list(value.markers),
                "page_type": value.page_type}
    if isinstance(value, Fingerprint):
        return {_TAG: "fingerprint", "page_type": value.page_type,
                "markers": list(value.markers), "priority": value.priority}
    if isinstance(value, FingerprintRegistry):
        return {_TAG: "registry",
                "fingerprints": [encode_artifact(f) for f in value]}
    if isinstance(value, CDNPopulation):
        return {_TAG: "population", "tested": value.tested,
                "customers": [[provider, sorted(domains)]
                              for provider, domains
                              in value.customers.items()]}  # lint: ordered(provider insertion order is deterministic discovery order and is rebuilt by decode; domain sets are sorted)
    if isinstance(value, DomainConsistency):
        return {_TAG: "consistency", "domain": value.domain,
                "page_type": value.page_type,
                "country_rates": [[c, r]
                                  for c, r in value.country_rates.items()],  # lint: ordered(rate-map insertion order is deterministic scan order and round-trips through decode)
                "countries_tested": value.countries_tested}
    raise TypeError(f"cannot encode artifact of type {type(value).__name__}")


def decode_artifact(value: Any) -> Any:
    """Invert :func:`encode_artifact`."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [decode_artifact(item) for item in value]
    if not isinstance(value, dict):
        raise TypeError(f"cannot decode artifact of type {type(value).__name__}")
    tag = value.get(_TAG)
    if tag == "tuple":
        return tuple(decode_artifact(i) for i in value["items"])
    if tag == "counter":
        out: Counter = Counter()
        for key, count in value["items"]:
            out[decode_artifact(key)] = count
        return out
    if tag == "set":
        return {decode_artifact(i) for i in value["items"]}
    if tag == "dict":
        return {decode_artifact(k): decode_artifact(v)
                for k, v in value["items"]}
    if tag == "sample":
        return Sample(domain=value["domain"], country=value["country"],
                      status=value["status"], length=value["length"],
                      body=value["body"], error=value["error"],
                      interfered=value["interfered"])
    if tag == "outlier":
        return Outlier(index=value["index"],
                       sample=decode_artifact(value["sample"]),
                       representative=value["representative"],
                       relative_difference=value["relative_difference"])
    if tag == "confirmed-block":
        return ConfirmedBlock(domain=value["domain"],
                              country=value["country"],
                              page_type=value["page_type"],
                              provider=value["provider"],
                              agreement=value["agreement"],
                              total_samples=value["total_samples"])
    if tag == "cluster":
        return DiscoveredCluster(label=value["label"], size=value["size"],
                                 exemplar=value["exemplar"],
                                 markers=tuple(value["markers"]),
                                 page_type=value["page_type"])
    if tag == "fingerprint":
        return Fingerprint(page_type=value["page_type"],
                           markers=tuple(value["markers"]),
                           priority=value["priority"])
    if tag == "registry":
        return FingerprintRegistry(
            fingerprints=[decode_artifact(f) for f in value["fingerprints"]])
    if tag == "population":
        population = CDNPopulation(tested=value["tested"])
        for provider, domains in value["customers"]:
            population.customers[provider] = set(domains)
        return population
    if tag == "consistency":
        return DomainConsistency(
            domain=value["domain"], page_type=value["page_type"],
            country_rates={c: r for c, r in value["country_rates"]},
            countries_tested=value["countries_tested"])
    raise ValueError(f"unknown artifact tag {tag!r}")
