"""StudyRunner: ordered stage execution with checkpoint skip-and-load.

The runner walks a study's stage list in order.  For each stage it either

* **loads** the stage's artifacts from a complete, fingerprint-matching
  checkpoint (``resume=True`` and the store has one), or
* **executes** the stage function and, when a store is attached,
  checkpoints the declared outputs before moving on.

Either way the artifacts land in ``context.artifacts`` for downstream
stages, and a :class:`~repro.run.stage.StageStats` entry (wall-time,
probes issued, cache hit, dataset rows) is appended to ``context.stats``
and logged.  Because probe outcomes are pure functions of task identity
(the :class:`~repro.lumscan.engine.ScanEngine` contract), a resumed run
is bit-identical to a fresh one — skipped stages contribute exactly the
artifacts they would have recomputed.
"""

from __future__ import annotations

import logging
from typing import Dict, Optional, Sequence

from repro.lumscan.records import ScanDataset, SegmentedScanDataset
from repro.run.artifacts import ArtifactStore
from repro.run.stage import RunContext, Stage, StageStats
from repro.util.clock import SYSTEM_CLOCK, Clock

logger = logging.getLogger("repro.run")


class StudyRunner:
    """Executes one study's stage graph over a :class:`RunContext`."""

    def __init__(self, study: str, stages: Sequence[Stage],
                 store: Optional[ArtifactStore] = None,
                 resume: bool = False,
                 clock: Optional[Clock] = None) -> None:
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in {names}")
        self._study = study
        self._stages = list(stages)
        self._store = store
        self._resume = resume and store is not None
        self._clock = clock if clock is not None else SYSTEM_CLOCK

    @property
    def stages(self) -> Sequence[Stage]:
        return tuple(self._stages)

    def run(self, context: RunContext) -> RunContext:
        """Run every stage in order, skipping complete checkpoints."""
        for stage in self._stages:
            stopwatch = self._clock.stopwatch()
            probes_before = context.probes_issued()
            manifest = self._store.manifest(stage) if self._resume else None
            if manifest is not None:
                outputs = self._store.load_stage(stage, manifest)
                cache_hit = True
            else:
                outputs = stage.run(context)
                missing = set(stage.output_names()) - set(outputs)
                if missing:
                    raise RuntimeError(
                        f"stage {stage.name!r} did not produce declared "
                        f"artifacts: {sorted(missing)}")
                cache_hit = False
            seconds = stopwatch.elapsed()
            probes = context.probes_issued() - probes_before
            if self._store is not None and not cache_hit:
                self._store.save_stage(stage, outputs,
                                       probes=probes, seconds=seconds)
            context.artifacts.update(outputs)
            stats = StageStats(
                stage=stage.name,
                seconds=seconds,
                probes=probes,
                cache_hit=cache_hit,
                artifacts=len(stage.outputs),
                records=sum(len(value) for value in outputs.values()
                            if isinstance(value, (ScanDataset,
                                                  SegmentedScanDataset))),
            )
            context.stats.append(stats)
            logger.info(
                "%s/%s: %s in %.2fs (probes=%d, records=%d)",
                self._study, stage.name,
                "checkpoint hit" if cache_hit else "executed",
                seconds, probes, stats.records)
        return context

    def stats_by_stage(self, context: RunContext) -> Dict[str, StageStats]:
        """The context's stats keyed by stage name (convenience)."""
        return {stats.stage: stats for stats in context.stats}
