"""StudyRunner: ordered stage execution with checkpoint skip-and-load.

The runner walks a study's stage list in order.  For each stage it either

* **loads** the stage's artifacts from a complete, fingerprint-matching
  checkpoint (``resume=True`` and the store has one), or
* **executes** the stage function and, when a store is attached,
  checkpoints the declared outputs before moving on.

Either way the artifacts land in ``context.artifacts`` for downstream
stages, and a :class:`~repro.run.stage.StageStats` entry (wall-time,
probes issued, cache hit, dataset rows) is appended to ``context.stats``
and logged.  Because probe outcomes are pure functions of task identity
(the :class:`~repro.lumscan.engine.ScanEngine` contract), a resumed run
is bit-identical to a fresh one — skipped stages contribute exactly the
artifacts they would have recomputed.
"""

from __future__ import annotations

import logging
from typing import Dict, Optional, Sequence

from repro.lumscan.records import ScanDataset, SegmentedScanDataset
from repro.run.artifacts import ArtifactStore
from repro.run.stage import RunContext, Stage, StageStats
from repro.util.clock import SYSTEM_CLOCK, Clock

logger = logging.getLogger("repro.run")


class StudyRunner:
    """Executes one study's stage graph over a :class:`RunContext`."""

    def __init__(self, study: str, stages: Sequence[Stage],
                 store: Optional[ArtifactStore] = None,
                 resume: bool = False,
                 clock: Optional[Clock] = None) -> None:
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in {names}")
        self._study = study
        self._stages = list(stages)
        self._store = store
        self._resume = resume and store is not None
        self._clock = clock if clock is not None else SYSTEM_CLOCK

    @property
    def stages(self) -> Sequence[Stage]:
        return tuple(self._stages)

    def run(self, context: RunContext) -> RunContext:
        """Run every stage in order, skipping complete checkpoints."""
        for stage in self._stages:
            stopwatch = self._clock.stopwatch()
            probes_before = context.probes_issued()
            init_before = self._worker_init_snapshot(context)
            manifest = self._store.manifest(stage) if self._resume else None
            if manifest is not None:
                outputs = self._store.load_stage(stage, manifest)
                cache_hit = True
            else:
                outputs = stage.run(context)
                missing = set(stage.output_names()) - set(outputs)
                if missing:
                    raise RuntimeError(
                        f"stage {stage.name!r} did not produce declared "
                        f"artifacts: {sorted(missing)}")
                cache_hit = False
            seconds = stopwatch.elapsed()
            probes = context.probes_issued() - probes_before
            if self._store is not None and not cache_hit:
                self._store.save_stage(stage, outputs,
                                       probes=probes, seconds=seconds)
            context.artifacts.update(outputs)
            init_after = self._worker_init_snapshot(context)
            stats = StageStats(
                stage=stage.name,
                seconds=seconds,
                probes=probes,
                cache_hit=cache_hit,
                artifacts=len(stage.outputs),
                records=sum(len(value) for value in outputs.values()
                            if isinstance(value, (ScanDataset,
                                                  SegmentedScanDataset))),
                workers_spawned=init_after[0] - init_before[0],
                worker_spawn_seconds=init_after[1] - init_before[1],
                world_build_seconds=init_after[2] - init_before[2],
                worker_pack_loads=init_after[3] - init_before[3],
            )
            context.stats.append(stats)
            if stats.workers_spawned:
                logger.info(
                    "%s/%s: %s in %.2fs (probes=%d, records=%d, "
                    "workers=%d, spawn=%.2fs, world=%.2fs, pack_loads=%d)",
                    self._study, stage.name,
                    "checkpoint hit" if cache_hit else "executed",
                    seconds, probes, stats.records,
                    stats.workers_spawned, stats.worker_spawn_seconds,
                    stats.world_build_seconds, stats.worker_pack_loads)
            else:
                logger.info(
                    "%s/%s: %s in %.2fs (probes=%d, records=%d)",
                    self._study, stage.name,
                    "checkpoint hit" if cache_hit else "executed",
                    seconds, probes, stats.records)
        return context

    @staticmethod
    def _worker_init_snapshot(context: RunContext):
        """(spawned, spawn_s, build_s, pack_loads) totals so far, or zeros.

        Scanners without worker processes (plain :class:`Lumscan`, test
        doubles) simply lack ``worker_init_stats`` and report all-zero
        deltas, so the stage log line stays in its compact form for them.
        """
        source = getattr(context.scanner, "worker_init_stats", None)
        stats = source() if source is not None else None
        if stats is None:
            return (0, 0.0, 0.0, 0)
        return (stats.spawned, stats.spawn_seconds,
                stats.build_seconds, stats.pack_loads)

    def stats_by_stage(self, context: RunContext) -> Dict[str, StageStats]:
        """The context's stats keyed by stage name (convenience)."""
        return {stats.stage: stats for stats in context.stats}
