"""Fingerprint-keyed, crash-safe checkpointing of stage artifacts.

Layout under the checkpoint root::

    <root>/<study>/<stage>.manifest.json        stage completion record
    <root>/<study>/<stage>.<artifact>.json      derived artifacts (tagged JSON)
    <root>/<study>/<stage>.<artifact>.lshd      scan datasets (columnar
                                                segments, mmap-loaded;
                                                ``dataset_format`` selects
                                                the legacy JSONL flavors)
    <root>/<study>/<stage>.<artifact>.lshm      manifest-backed datasets:
                                                a canonical-JSON list of
                                                content-addressed segment
                                                files beside it — rescans
                                                append a segment instead
                                                of rewriting history

Every stage is keyed by a **fingerprint**: a SHA-256 over the canonical
JSON of ``(StudyConfig, WorldConfig, study name, stage name)`` plus an
optional salt for non-config inputs (e.g. the fingerprint registry a
Top-1M run inherits from Top-10K discovery).  A checkpoint is only reused
when its fingerprint matches the requesting run exactly — change any
methodology knob, world parameter, or seed and every stage re-executes.

Crash safety is ordering + atomicity: artifact files are written first
(each atomically, via temp + ``os.replace``), the manifest last.  A stage
is *complete* only when a manifest with a matching fingerprint exists and
every artifact file it lists is present — an interrupted run can never
leave a checkpoint that loads as complete but is truncated.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, Optional, Sequence

from repro.lumscan.records import DatasetReader, ScanDataset, \
    SegmentedScanDataset
from repro.lumscan.serialize import (
    dump_dataset,
    dump_dataset_lshd,
    dump_dataset_manifest,
    load_dataset,
)
from repro.lumscan.shards import read_manifest
from repro.run.codecs import decode_artifact, encode_artifact
from repro.run.stage import KIND_DATASET, KIND_JSON, Stage

#: Version of the on-disk checkpoint format (manifest + JSON envelopes).
FORMAT_VERSION = 1

#: Dataset codecs a store can write (suffix doubles as the format name).
#: Loading always sniffs magic bytes, so checkpoints in any format —
#: including pre-columnar ``.jsonl.gz`` ones — stay loadable.
DATASET_FORMATS = ("lshd", "lshm", "jsonl.gz", "jsonl")

#: Resource-lifetime contract enforced by ``repro.lint``: the store
#: manifest is only ever written through the atomic JSON writer below.
LINT_RESOURCE_CONTRACT = {
    "codec": "store",
    "atomic": {
        "suffixes": [".manifest.json"],
        "writers": ["_atomic_write_json"],
    },
}


def _jsonable_config(config: object) -> object:
    """A canonical JSON-safe view of a (possibly nested) config object."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return {f.name: _jsonable_config(getattr(config, f.name))
                for f in dataclasses.fields(config)}
    if isinstance(config, dict):
        return {str(k): _jsonable_config(v) for k, v in config.items()}
    if isinstance(config, (list, tuple)):
        return [_jsonable_config(v) for v in config]
    if config is None or isinstance(config, (bool, int, float, str)):
        return config
    return repr(config)


def run_fingerprint(study_config: object, world_config: object,
                    study: str, stage: str, salt: str = "") -> str:
    """SHA-256 key of one stage's checkpoint."""
    payload = {
        "study_config": _jsonable_config(study_config),
        "world_config": _jsonable_config(world_config),
        "study": study,
        "stage": stage,
        "salt": salt,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _atomic_write_json(path: str, payload: object) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


class ArtifactStore:
    """Checkpoint directory for one study run.

    ``salt`` folds non-config stage inputs into every fingerprint (pass a
    digest of e.g. an inherited registry); ``dataset_format`` selects the
    dataset codec — ``"lshd"`` (the default) writes mmap-loadable
    columnar segments, ``"lshm"`` writes manifest-backed multi-segment
    datasets keyed by manifest fingerprint (a re-checkpoint of a logical
    dataset that grew by one rescan segment reuses the existing segment
    files and costs O(new rows)), ``"jsonl.gz"`` / ``"jsonl"`` keep the
    row-oriented JSONL export format.  Loads sniff the actual bytes, so
    a store reads checkpoints written under any format.
    """

    def __init__(self, root: str, study: str, study_config: object,
                 world_config: object, salt: str = "",
                 dataset_format: str = "lshd") -> None:
        if dataset_format not in DATASET_FORMATS:
            raise ValueError(
                f"dataset_format must be one of {DATASET_FORMATS}, "
                f"got {dataset_format!r}")
        self._dir = os.path.join(os.fspath(root), study)
        self._study = study
        self._study_config = study_config
        self._world_config = world_config
        self._salt = salt
        self._dataset_format = dataset_format

    @property
    def directory(self) -> str:
        """The study's checkpoint directory."""
        return self._dir

    def fingerprint(self, stage: str) -> str:
        """The checkpoint key of one stage under this run's configs."""
        return run_fingerprint(self._study_config, self._world_config,
                               self._study, stage, salt=self._salt)

    # ------------------------------------------------------------------ #

    def _manifest_path(self, stage: str) -> str:
        return os.path.join(self._dir, f"{stage}.manifest.json")

    def _artifact_file(self, stage: str, name: str, kind: str) -> str:
        suffix = self._dataset_format if kind == KIND_DATASET else "json"
        return f"{stage}.{name}.{suffix}"

    def manifest(self, stage: Stage) -> Optional[Dict[str, object]]:
        """The stage's manifest when its checkpoint is complete and valid.

        Returns None when the manifest is missing, unreadable, written by
        a different format version, fingerprint-mismatched (stale configs),
        missing a declared artifact, or missing an artifact file.
        """
        path = self._manifest_path(stage.name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        if manifest.get("version") != FORMAT_VERSION:
            return None
        if manifest.get("fingerprint") != self.fingerprint(stage.name):
            return None
        listed = {entry.get("name"): entry
                  for entry in manifest.get("artifacts", [])}
        for spec in stage.outputs:
            entry = listed.get(spec.name)
            if entry is None or entry.get("kind") != spec.kind:
                return None
            if not os.path.exists(os.path.join(self._dir, entry["file"])):
                return None
        return manifest

    # ------------------------------------------------------------------ #

    def save_stage(self, stage: Stage, artifacts: Dict[str, object],
                   probes: int = 0, seconds: float = 0.0) -> None:
        """Checkpoint one executed stage (artifacts first, manifest last)."""
        os.makedirs(self._dir, exist_ok=True)
        entries = []
        for spec in stage.outputs:
            value = artifacts[spec.name]
            filename = self._artifact_file(stage.name, spec.name, spec.kind)
            path = os.path.join(self._dir, filename)
            entry: Dict[str, object] = {"name": spec.name, "kind": spec.kind,
                                        "file": filename}
            if spec.kind == KIND_DATASET:
                if not isinstance(value, (ScanDataset, SegmentedScanDataset)):
                    raise TypeError(
                        f"stage {stage.name!r} artifact {spec.name!r} "
                        f"declared as dataset but is {type(value).__name__}")
                if self._dataset_format == "lshd":
                    entry["records"] = dump_dataset_lshd(value, path)
                elif self._dataset_format == "lshm":
                    entry["records"] = dump_dataset_manifest(value, path)
                    entry["manifest_fingerprint"] = \
                        read_manifest(path).fingerprint
                else:
                    entry["records"] = dump_dataset(value, path)
            else:
                _atomic_write_json(path, {
                    "version": FORMAT_VERSION,
                    "artifact": spec.name,
                    "payload": encode_artifact(value),
                })
            entries.append(entry)
        _atomic_write_json(self._manifest_path(stage.name), {
            "version": FORMAT_VERSION,
            "study": self._study,
            "stage": stage.name,
            "fingerprint": self.fingerprint(stage.name),
            "artifacts": entries,
            "stats": {"probes": probes, "seconds": round(seconds, 3)},
        })

    def load_stage(self, stage: Stage,
                   manifest: Optional[Dict[str, object]] = None
                   ) -> Dict[str, object]:
        """Load a complete stage's artifacts (raises when incomplete)."""
        manifest = manifest if manifest is not None else self.manifest(stage)
        if manifest is None:
            raise FileNotFoundError(
                f"no complete checkpoint for stage {stage.name!r} "
                f"in {self._dir}")
        listed = {entry["name"]: entry for entry in manifest["artifacts"]}
        artifacts: Dict[str, object] = {}
        for spec in stage.outputs:
            path = os.path.join(self._dir, listed[spec.name]["file"])
            if spec.kind == KIND_DATASET:
                artifacts[spec.name] = load_dataset(path)
            else:
                with open(path, "r", encoding="utf-8") as handle:
                    envelope = json.load(handle)
                if envelope.get("version") != FORMAT_VERSION:
                    raise ValueError(
                        f"{path}: unsupported artifact version "
                        f"{envelope.get('version')!r}")
                artifacts[spec.name] = decode_artifact(envelope["payload"])
        return artifacts

    # ------------------------------------------------------------------ #

    def invalidate(self, stages: Sequence[Stage],
                   remove_artifacts: bool = False) -> None:
        """Drop the manifests of the given stages (testing / forced rerun).

        ``remove_artifacts=True`` also unlinks the stages' artifact
        files, in any format a previous run may have written them; a
        ``.lshm`` manifest takes its referenced segment files with it
        (they are content-addressed per artifact, never shared across
        stages).  A reader holding a mapped dataset keeps reading its
        now-unlinked segments — POSIX keeps the pages alive until the
        mapping closes.
        """
        for stage in stages:
            try:
                os.remove(self._manifest_path(stage.name))
            except OSError:
                pass
            if not remove_artifacts:
                continue
            for spec in stage.outputs:
                suffixes = DATASET_FORMATS if spec.kind == KIND_DATASET \
                    else ("json",)
                for suffix in suffixes:
                    path = os.path.join(
                        self._dir, f"{stage.name}.{spec.name}.{suffix}")
                    if suffix == "lshm":
                        self._remove_manifest_artifact(path)
                        continue
                    try:
                        os.remove(path)
                    except OSError:
                        pass

    @staticmethod
    def _remove_manifest_artifact(path: str) -> None:
        """Unlink a ``.lshm`` artifact and every segment it references."""
        try:
            manifest = read_manifest(path)
        except (OSError, ValueError):
            return
        for segment in manifest.segment_paths():
            try:
                os.remove(segment)
            except OSError:
                pass
        try:
            os.remove(path)
        except OSError:
            pass
