"""Staged study execution: composable stages with checkpointed artifacts.

The studies in :mod:`repro.core.pipeline` are paper-scale measurement
campaigns (~4.2M probes); a failure near the end used to mean recomputing
every phase.  This package turns each study into an explicit stage graph:

* :class:`Stage` — one named phase with declared output artifacts;
* :class:`RunContext` — the shared state a stage reads from and writes to;
* :class:`ArtifactStore` — fingerprint-keyed, crash-safe checkpointing of
  stage outputs (scan datasets as JSONL/gzip, derived artifacts as
  versioned JSON);
* :class:`StudyRunner` — executes a stage list in order, skipping stages
  whose checkpoints are complete and loading their artifacts instead.

The resume contract mirrors the determinism contract of
:class:`repro.lumscan.engine.ScanEngine`: because every probe's outcome is
a pure function of its task identity, a resumed run that loads completed
stages from disk produces **bit-identical** results to a fresh end-to-end
run at the same seed.
"""

from repro.run.artifacts import ArtifactStore, run_fingerprint
from repro.run.codecs import decode_artifact, encode_artifact
from repro.run.runner import StudyRunner
from repro.run.stage import (
    KIND_DATASET,
    KIND_JSON,
    ArtifactSpec,
    RunContext,
    Stage,
    StageStats,
)

__all__ = [
    "ArtifactSpec",
    "ArtifactStore",
    "KIND_DATASET",
    "KIND_JSON",
    "RunContext",
    "Stage",
    "StageStats",
    "StudyRunner",
    "decode_artifact",
    "encode_artifact",
    "run_fingerprint",
]
