"""Autonomous-system modelling.

Cloudflare's Firewall Access Rules can target AS numbers as well as
countries and IP addresses (§6).  This module assigns AS numbers to the
simulated address space: each country's residential space belongs to a
handful of national ISP ASes, each VPS provider and CDN edge to its own
AS, giving rule engines something real to match on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.netsim.ip import AddressAllocator, Netblock
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class ASRecord:
    """One autonomous system."""

    asn: int
    name: str
    country: Optional[str] = None    # None for global networks
    kind: str = "isp"                # isp | hosting | cdn


class ASRegistry:
    """Maps netblocks (and therefore addresses) to AS numbers."""

    def __init__(self) -> None:
        self._records: Dict[int, ASRecord] = {}
        self._block_to_asn: List = []

    def register_as(self, record: ASRecord) -> None:
        """Add an AS; re-registration of the same ASN is rejected."""
        if record.asn in self._records:
            raise ValueError(f"AS{record.asn} already registered")
        self._records[record.asn] = record

    def assign_block(self, block: Netblock, asn: int) -> None:
        """Attach a netblock to an AS."""
        if asn not in self._records:
            raise KeyError(f"unknown AS{asn}")
        self._block_to_asn.append((block, asn))

    def lookup(self, address: str) -> Optional[ASRecord]:
        """The AS owning an address, if any."""
        for block, asn in self._block_to_asn:
            if address in block:
                return self._records[asn]
        return None

    def get(self, asn: int) -> ASRecord:
        """AS record by number."""
        return self._records[asn]

    def ases(self, country: Optional[str] = None,
             kind: Optional[str] = None) -> List[ASRecord]:
        """All ASes, optionally filtered by country and kind."""
        out = []
        for record in self._records.values():
            if country is not None and record.country != country:
                continue
            if kind is not None and record.kind != kind:
                continue
            out.append(record)
        return sorted(out, key=lambda r: r.asn)

    @classmethod
    def build_for_world(cls, allocator: AddressAllocator,
                        seed: int = 0) -> "ASRegistry":
        """Derive an AS plan from an allocator's ownership map.

        Residential blocks of a country are split across 1–3 national
        ISP ASes; VPS/hosting/edge owners each get a single AS.
        """
        registry = cls()
        rng = derive_rng(seed, "asn-plan")
        next_asn = 64512  # private-use range, fitting for a simulation
        country_ases: Dict[str, List[int]] = {}
        for owner in sorted(allocator.owners()):
            blocks = allocator.blocks_of(owner)
            if owner.startswith("res:"):
                country = owner.split(":")[1]
                asns = country_ases.get(country)
                if asns is None:
                    n_isps = rng.randint(1, 3)
                    asns = []
                    for i in range(n_isps):
                        registry.register_as(ASRecord(
                            asn=next_asn,
                            name=f"{country}-ISP-{i + 1}",
                            country=country, kind="isp"))
                        asns.append(next_asn)
                        next_asn += 1
                    country_ases[country] = asns
                for block in blocks:
                    registry.assign_block(block, rng.choice(asns))
            else:
                kind = "cdn" if owner.startswith("edge:") else "hosting"
                registry.register_as(ASRecord(
                    asn=next_asn, name=owner.upper(), country=None,
                    kind=kind))
                for block in blocks:
                    registry.assign_block(block, next_asn)
                next_asn += 1
        return registry
