"""A small authoritative DNS model.

The study uses DNS three ways:

* **NS-record inspection** identifies Akamai/Cloudflare customers among the
  Alexa Top 1M (§3.1): domains whose nameservers live under
  ``*.ns.cloudflare.com`` or ``*.akam.net``.
* **A-record resolution** maps a domain to the serving IP, which for
  AppEngine-hosted domains falls inside Google serving netblocks.
* **TXT netblock discovery** mirrors the recursive
  ``_cloud-netblocks.googleusercontent.com`` SPF walk the paper used to
  enumerate AppEngine IP space (§5.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple


class DNSError(Exception):
    """Base class for resolution failures."""


class NXDOMAIN(DNSError):
    """The queried name does not exist."""


@dataclass(frozen=True)
class Record:
    """A single resource record."""

    rtype: str
    value: str


@dataclass
class Zone:
    """All records for one fully-qualified name."""

    name: str
    records: List[Record] = field(default_factory=list)

    def values(self, rtype: str) -> List[str]:
        """Record data of the given type, in insertion order."""
        return [r.value for r in self.records if r.rtype == rtype]


class DNSServer:
    """An authoritative store answering A/NS/TXT queries."""

    def __init__(self) -> None:
        self._zones: Dict[str, Zone] = {}

    def add_record(self, name: str, rtype: str, value: str) -> None:
        """Publish a record (names are case-insensitive)."""
        key = name.lower().rstrip(".")
        zone = self._zones.setdefault(key, Zone(name=key))
        zone.records.append(Record(rtype=rtype.upper(), value=value))

    def query(self, name: str, rtype: str) -> List[str]:
        """Answer a query; raises :class:`NXDOMAIN` for unknown names."""
        key = name.lower().rstrip(".")
        zone = self._zones.get(key)
        if zone is None:
            raise NXDOMAIN(name)
        return zone.values(rtype.upper())

    def try_query(self, name: str, rtype: str) -> List[str]:
        """Like :meth:`query` but returns [] instead of raising."""
        try:
            return self.query(name, rtype)
        except DNSError:
            return []

    def names(self) -> List[str]:
        """All published names."""
        return list(self._zones)


def expand_spf_netblocks(dns: DNSServer, root: str, max_depth: int = 8) -> List[str]:
    """Recursively expand an SPF-style TXT netblock listing.

    TXT records at ``root`` contain tokens of the form ``include:<name>``
    (follow recursively) and ``ip4:<cidr>`` (collect).  This reproduces the
    AppEngine netblock discovery: the paper found 65 IP blocks this way.
    Cycles and depth overruns terminate cleanly rather than recursing forever.
    """
    seen: Set[str] = set()
    blocks: List[str] = []

    def walk(name: str, depth: int) -> None:
        key = name.lower().rstrip(".")
        if key in seen or depth > max_depth:
            return
        seen.add(key)
        for txt in dns.try_query(key, "TXT"):
            for token in txt.split():
                if token.startswith("include:"):
                    walk(token[len("include:"):], depth + 1)
                elif token.startswith("ip4:"):
                    cidr = token[len("ip4:"):]
                    if cidr not in blocks:
                        blocks.append(cidr)

    walk(root, 0)
    return blocks
