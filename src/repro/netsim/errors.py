"""Failure taxonomy for simulated fetches.

Section 4.1 of the paper defines "error" as *unable to get a response from
the site, either due to proxy errors or errors such as timeouts and lengthy
redirect chains*.  These exception types let the measurement layer count and
categorize failures exactly the way the paper does.
"""

from __future__ import annotations


class FetchError(Exception):
    """Base class: the request produced no usable HTTP response."""

    kind = "error"


class ConnectionTimeout(FetchError):
    """The connection or response timed out."""

    kind = "timeout"


class ConnectionReset(FetchError):
    """The TCP connection was reset mid-request."""

    kind = "reset"


class TooManyRedirects(FetchError):
    """The redirect chain exceeded the configured limit (10 in the paper)."""

    kind = "redirect-loop"


class ProxyError(FetchError):
    """The proxy layer failed before reaching the target."""

    kind = "proxy"


class LuminatiRefusal(ProxyError):
    """Luminati refused to carry the request (``X-Luminati-Error``)."""

    kind = "luminati-refusal"


class NoExitAvailable(ProxyError):
    """No exit node is available in the requested country."""

    kind = "no-exit"
