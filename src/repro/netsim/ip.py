"""IPv4 address space carved into per-country and per-provider netblocks.

The simulation assigns each country a set of residential netblocks, each VPS
provider a datacenter netblock, and each cloud provider (notably Google
AppEngine) a set of serving netblocks discoverable through DNS — mirroring
the ``_cloud-netblocks.googleusercontent.com`` mechanism the paper used.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.util.rng import derive_rng

#: Module-level parse caches shared by all (frozen) Netblock instances.
_NETWORK_CACHE: Dict[str, ipaddress.IPv4Network] = {}
_RANGE_CACHE: Dict[str, "tuple[int, int]"] = {}


def _address_to_int(address: str) -> Optional[int]:
    """Parse a dotted-quad IPv4 address to an int (None when invalid)."""
    parts = address.split(".")
    if len(parts) != 4:
        return None
    value = 0
    for part in parts:
        if not part.isdigit():
            return None
        octet = int(part)
        if octet > 255:
            return None
        value = (value << 8) | octet
    return value


@dataclass(frozen=True)
class Netblock:
    """A CIDR netblock with an owner label (country code or provider)."""

    cidr: str
    owner: str

    @property
    def network(self) -> ipaddress.IPv4Network:
        """The parsed network object (cached after first use)."""
        cached = _NETWORK_CACHE.get(self.cidr)
        if cached is None:
            cached = ipaddress.IPv4Network(self.cidr)
            _NETWORK_CACHE[self.cidr] = cached
        return cached

    @property
    def int_range(self) -> "tuple[int, int]":
        """(first, last) address of the block as ints (cached)."""
        cached = _RANGE_CACHE.get(self.cidr)
        if cached is None:
            net = self.network
            first = int(net.network_address)
            cached = (first, first + net.num_addresses - 1)
            _RANGE_CACHE[self.cidr] = cached
        return cached

    def __contains__(self, address: str) -> bool:
        value = _address_to_int(address)
        if value is None:
            return False
        first, last = self.int_range
        return first <= value <= last

    def address_at(self, index: int) -> str:
        """Return the host address at ``index`` within the block."""
        net = self.network
        size = net.num_addresses
        if size <= 2:
            host_index = index % size
        else:
            host_index = 1 + (index % (size - 2))
        return str(net.network_address + host_index)


class AddressAllocator:
    """Deterministically allocates disjoint /16 netblocks to owners.

    Allocation walks the 10.0.0.0/8 through 126.0.0.0/8 unicast space in
    /16 steps; the order of ``allocate`` calls fully determines the layout,
    so a given world seed always yields the same address plan.
    """

    def __init__(self, seed: int = 0) -> None:
        self._next = 0
        self._blocks: Dict[str, List[Netblock]] = {}
        self._rng = derive_rng(seed, "ip-allocator")

    def allocate(self, owner: str, count: int = 1) -> List[Netblock]:
        """Allocate ``count`` fresh /16 blocks to ``owner``."""
        if count < 1:
            raise ValueError("count must be >= 1")
        blocks = []
        for _ in range(count):
            first_octet = 10 + (self._next // 256) % 117
            second_octet = self._next % 256
            self._next += 1
            block = Netblock(cidr=f"{first_octet}.{second_octet}.0.0/16", owner=owner)
            blocks.append(block)
        self._blocks.setdefault(owner, []).extend(blocks)
        return blocks

    def blocks_of(self, owner: str) -> List[Netblock]:
        """All blocks allocated to ``owner`` so far."""
        return list(self._blocks.get(owner, ()))

    def owner_of(self, address: str) -> Optional[str]:
        """Return the owner of the block containing ``address``, if any."""
        for owner, blocks in self._blocks.items():
            for block in blocks:
                if address in block:
                    return owner
        return None

    def random_address(self, owner: str, rng=None) -> str:
        """A uniformly random host address within one of ``owner``'s blocks."""
        blocks = self._blocks.get(owner)
        if not blocks:
            raise KeyError(f"no netblocks allocated to {owner!r}")
        r = rng if rng is not None else self._rng
        block = r.choice(blocks)
        return block.address_at(r.randrange(1, 65534))

    def owners(self) -> Iterator[str]:
        """All owners with at least one allocation."""
        return iter(self._blocks)
