"""Network substrate: IP address space, geolocation, DNS, failure processes."""

from repro.netsim.asn import ASRecord, ASRegistry
from repro.netsim.dns import DNSError, DNSServer, NXDOMAIN, Record, Zone
from repro.netsim.geoip import GeoIPDatabase
from repro.netsim.ip import AddressAllocator, Netblock

__all__ = [
    "AddressAllocator",
    "Netblock",
    "GeoIPDatabase",
    "DNSServer",
    "DNSError",
    "NXDOMAIN",
    "Record",
    "Zone",
    "ASRecord",
    "ASRegistry",
]
