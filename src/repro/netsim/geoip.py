"""Geolocation database used by CDN edges to make geoblocking decisions.

CDNs geolocate the *client IP* to decide whether a country rule applies.
Real geolocation databases have errors; the paper attributes some residual
measurement discrepancies to exactly this (§4.2).  ``GeoIPDatabase``
therefore supports a configurable per-lookup error rate: a small fraction of
addresses are mislocated to a stable (per-address) wrong country, modelling
stale WHOIS records rather than per-request noise.

The database also models *subnational regions*: the paper observed Google
AppEngine blocking Crimea specifically (finer than country granularity), so
netblocks may carry a region tag that CDNs can match on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.netsim.ip import Netblock
from repro.util.cache import MemoDict
from repro.util.rng import derive_rng, stable_hash


@dataclass(frozen=True)
class GeoEntry:
    """Resolution result: ISO country code plus optional region tag."""

    country: str
    region: Optional[str] = None


class GeoIPDatabase:
    """Maps IPv4 addresses to countries (and regions) with modelled error."""

    def __init__(self, seed: int = 0, error_rate: float = 0.0) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        self._entries: List[Tuple[Netblock, GeoEntry]] = []
        self._by_owner: Dict[str, GeoEntry] = {}
        self._seed = seed
        self._error_rate = error_rate
        self._countries: List[str] = []
        # Lookups are deterministic per address (including error modelling),
        # so results are memoized; registering new space invalidates them.
        # Registration only happens at world build time, before any worker
        # runs, so the memo tables only fill (idempotently) under scans.
        self._lookup_cache: MemoDict[str, Optional[GeoEntry]] = MemoDict()
        self._true_cache: MemoDict[str, Optional[GeoEntry]] = MemoDict()

    def register(self, block: Netblock, country: str, region: Optional[str] = None) -> None:
        """Record that ``block`` geolocates to ``country`` (and ``region``)."""
        entry = GeoEntry(country=country, region=region)
        self._entries.append((block, entry))
        if country not in self._countries:
            self._countries.append(country)
        self._lookup_cache.clear()
        self._true_cache.clear()

    def lookup(self, address: str) -> Optional[GeoEntry]:
        """Geolocate ``address``; returns None for unregistered space.

        With probability ``error_rate`` (deterministic per address), the
        true country is replaced by a stable wrong one.
        """
        if address in self._lookup_cache:
            return self._lookup_cache[address]
        true_entry = self._true_lookup(address)
        result = true_entry
        if (true_entry is not None and self._error_rate > 0.0
                and len(self._countries) > 1):
            rng = derive_rng(self._seed, "geoip-error", address)
            if rng.random() < self._error_rate:
                wrong = rng.choice(
                    [c for c in self._countries if c != true_entry.country]
                )
                result = GeoEntry(country=wrong, region=None)
        self._lookup_cache[address] = result
        return result

    def _true_lookup(self, address: str) -> Optional[GeoEntry]:
        if address in self._true_cache:
            return self._true_cache[address]
        result = None
        for block, entry in self._entries:
            if address in block:
                result = entry
                break
        self._true_cache[address] = result
        return result

    def true_country(self, address: str) -> Optional[str]:
        """The ground-truth country for ``address`` (no error applied)."""
        entry = self._true_lookup(address)
        return entry.country if entry else None

    @property
    def error_rate(self) -> float:
        """The configured mislocation probability."""
        return self._error_rate

    def countries(self) -> List[str]:
        """All country codes with registered space, in registration order."""
        return list(self._countries)

    def is_mislocated(self, address: str) -> bool:
        """True when error modelling will mislocate this address."""
        if self._error_rate <= 0.0 or len(self._countries) < 2:
            return False
        if self._true_lookup(address) is None:
            return False
        rng = derive_rng(self._seed, "geoip-error", address)
        return rng.random() < self._error_rate

    def fingerprint(self) -> int:
        """A stable hash of the registered entries, for cache keys."""
        return stable_hash(*[(b.cidr, e.country, e.region) for b, e in self._entries])
