"""JSON persistence for experiment reports.

Paper-scale runs take tens of minutes; saving the resulting report lets
later sessions re-render tables, validate shapes, or compare seeds
without re-running anything.
"""

from __future__ import annotations

import json
import os
from typing import Union

from repro.analysis.experiments import ExperimentReport
from repro.analysis.figures import FigureData
from repro.analysis.tables import TableData

_FORMAT_VERSION = 1


def save_report(report: ExperimentReport, path: Union[str, os.PathLike]) -> None:
    """Serialize a report (tables, figures, findings) to JSON."""
    payload = {
        "version": _FORMAT_VERSION,
        "tables": {
            key: {
                "title": table.title,
                "columns": table.columns,
                "rows": table.rows,
            }
            for key, table in report.tables.items()  # lint: ordered(tables land in deterministic suite order; load_report rebuilds the same order, so sorting would break saved-vs-fresh comparison)
        },
        "figures": {
            key: {
                "title": figure.title,
                "x_label": figure.x_label,
                "y_label": figure.y_label,
                "series": {name: list(points)
                           for name, points in figure.series.items()},  # lint: ordered(series order is the deterministic add_series order and is legend order on render)
            }
            for key, figure in report.figures.items()  # lint: ordered(figures land in deterministic suite order, mirrored by load_report)
        },
        "findings": dict(report.findings),
        "stage_stats": {study: [dict(entry) for entry in entries]
                        for study, entries in report.stage_stats.items()},  # lint: ordered(stage stats are keyed by deterministic study execution order)
    }
    # Write-to-temp + rename: a crash mid-dump can never truncate an
    # existing report, and readers only ever see complete files.
    target = os.fspath(path)
    tmp = f"{target}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def load_report(path: Union[str, os.PathLike]) -> ExperimentReport:
    """Load a report written by :func:`save_report`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported report format version: {version!r}")
    report = ExperimentReport()
    for key, data in payload.get("tables", {}).items():
        report.tables[key] = TableData(
            title=data["title"],
            columns=list(data["columns"]),
            rows=[list(row) for row in data["rows"]],
        )
    for key, data in payload.get("figures", {}).items():
        figure = FigureData(title=data["title"], x_label=data["x_label"],
                            y_label=data["y_label"])
        for name, points in data.get("series", {}).items():
            figure.add_series(name, [tuple(p) for p in points])
        report.figures[key] = figure
    report.findings.update(payload.get("findings", {}))
    report.stage_stats.update(payload.get("stage_stats", {}))
    return report
