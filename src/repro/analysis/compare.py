"""Seed-robustness comparison of experiment reports.

A reproduction claim is only as good as its stability: if the measured
shapes flip when the world seed changes, the "reproduction" is noise.
This module compares findings across runs with different seeds and
reports which shape properties held in all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.analysis.validation import CheckResult, validate_findings


@dataclass
class StabilityReport:
    """Cross-seed stability of every shape check."""

    seeds: List[int] = field(default_factory=list)
    per_check: Dict[str, List[bool]] = field(default_factory=dict)

    def stable_checks(self) -> List[str]:
        """Checks that passed under every seed."""
        return sorted(name for name, results in self.per_check.items()
                      if results and all(results))

    def unstable_checks(self) -> List[str]:
        """Checks that passed under some seeds but not others."""
        return sorted(name for name, results in self.per_check.items()
                      if any(results) and not all(results))

    def stability_rate(self) -> float:
        """Fraction of checks stable across all seeds."""
        if not self.per_check:
            return 1.0
        return len(self.stable_checks()) / len(self.per_check)


def compare_findings(findings_by_seed: Mapping[int, Mapping[str, object]]
                     ) -> StabilityReport:
    """Validate every seed's findings and align the checks."""
    report = StabilityReport(seeds=sorted(findings_by_seed))
    for seed in report.seeds:
        results: List[CheckResult] = validate_findings(findings_by_seed[seed])
        for check in results:
            report.per_check.setdefault(check.name, []).append(check.passed)
    return report


def numeric_drift(findings_by_seed: Mapping[int, Mapping[str, object]],
                  keys: Sequence[str]) -> Dict[str, Dict[str, float]]:
    """Min/max/spread of numeric findings across seeds."""
    out: Dict[str, Dict[str, float]] = {}
    for key in keys:
        values = []
        for findings in findings_by_seed.values():
            value = findings.get(key)
            if isinstance(value, (int, float)):
                values.append(float(value))
        if not values:
            continue
        low, high = min(values), max(values)
        out[key] = {
            "min": low,
            "max": high,
            "spread": (high - low) / high if high else 0.0,
        }
    return out
