"""Shape validation: does a measured report reproduce the paper?

Absolute counts depend on world scale, so validation checks the *shape*
claims of the paper — orderings, rate regimes, and curve behaviour:

* sanctioned countries (IR/SY/SD/CU) dominate both studies' country
  rankings;
* AppEngine customers geoblock at a far higher rate than Cloudflare or
  CloudFront customers, in both the Top 10K and the Top 1M;
* the length heuristic is useful but lossy; small initial samples have a
  small false-negative rate; 20 confirmation samples concentrate;
* Cloudflare's Enterprise tier geoblocks an order of magnitude more than
  the free tier, with the baseline near the published 37.07%;
* geoblocking contaminates a nontrivial fraction of the censorship test
  list; and Iran yields far more 403s than the US control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional

SANCTIONED_TOP = {"IR", "SY", "SD", "CU"}


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one shape check."""

    name: str
    passed: bool
    detail: str


def _check(results: List[CheckResult], name: str,
           predicate: Callable[[], bool], detail_fn: Callable[[], str]) -> None:
    try:
        passed = bool(predicate())
        detail = detail_fn()
    except (KeyError, TypeError, ZeroDivisionError) as exc:
        passed = False
        detail = f"missing data: {exc!r}"
    results.append(CheckResult(name=name, passed=passed, detail=detail))


def validate_findings(findings: Mapping[str, object]) -> List[CheckResult]:
    """Run every applicable shape check against a findings mapping."""
    results: List[CheckResult] = []
    f = findings

    if "top10k.top_countries" in f:
        top = list(f["top10k.top_countries"])  # type: ignore[arg-type]
        _check(results, "top10k: sanctioned countries dominate",
               lambda: len(set(top[:4]) & SANCTIONED_TOP) >= 3,
               lambda: f"top4={top[:4]}")
    if "top10k.appengine_rate" in f:
        _check(results, "top10k: AppEngine rate >> Cloudflare/CloudFront",
               lambda: (f["top10k.appengine_rate"] > f["top10k.cloudflare_rate"]
                        and f["top10k.appengine_rate"] > f["top10k.cloudfront_rate"]),
               lambda: (f"gae={f['top10k.appengine_rate']} "
                        f"cf={f['top10k.cloudflare_rate']} "
                        f"cfr={f['top10k.cloudfront_rate']}"))
    if "top10k.length_recall" in f:
        _check(results, "top10k: length heuristic useful but lossy regime",
               lambda: 0.3 < f["top10k.length_recall"] <= 1.0,  # type: ignore
               lambda: f"recall={f['top10k.length_recall']}")
    if "top10k.gt_precision" in f:
        _check(results, "top10k: ground-truth precision high",
               lambda: f["top10k.gt_precision"] >= 0.9,  # type: ignore
               lambda: f"precision={f['top10k.gt_precision']}")
    if "top10k.median_blocked_per_country" in f:
        _check(results, "top10k: most countries see some geoblocking",
               lambda: f["top10k.median_blocked_per_country"] >= 1,  # type: ignore
               lambda: f"median={f['top10k.median_blocked_per_country']}")

    if "fig1.frac_below_80_at_20" in f:
        _check(results, "fig1: 20 samples concentrate above 80%",
               lambda: f["fig1.frac_below_80_at_20"] < 0.25,  # type: ignore
               lambda: f"frac={f['fig1.frac_below_80_at_20']}")
    if "fig3.fn_at_3" in f:
        _check(results, "fig3: 3 initial samples rarely miss",
               lambda: f["fig3.fn_at_3"] < 0.15,  # type: ignore
               lambda: f"fn={f['fig3.fn_at_3']}")

    if "top1m.top_countries" in f:
        top1m = list(f["top1m.top_countries"])  # type: ignore[arg-type]
        _check(results, "top1m: sanctioned countries dominate",
               lambda: len(set(top1m[:4]) & SANCTIONED_TOP) >= 3,
               lambda: f"top4={top1m[:4]}")
    if "top1m.appengine_rate" in f:
        _check(results, "top1m: AppEngine rate leads",
               lambda: (f["top1m.appengine_rate"] > f["top1m.cloudflare_rate"]
                        and f["top1m.appengine_rate"] > f["top1m.cloudfront_rate"]),
               lambda: (f"gae={f['top1m.appengine_rate']} "
                        f"cf={f['top1m.cloudflare_rate']} "
                        f"cfr={f['top1m.cloudfront_rate']}"))
    if "top1m.rate_any" in f:
        _check(results, "top1m: overall geoblock rate in low percents",
               lambda: 0.005 < f["top1m.rate_any"] < 0.15,  # type: ignore
               lambda: f"rate={f['top1m.rate_any']} (paper 4.4%)")

    if "table9.baseline_enterprise" in f:
        _check(results, "table9: enterprise baseline near 37%",
               lambda: 0.25 < f["table9.baseline_enterprise"] < 0.5,  # type: ignore
               lambda: f"baseline={f['table9.baseline_enterprise']}")
        _check(results, "table9: enterprise >> free",
               lambda: (f["table9.baseline_enterprise"]
                        / max(f["table9.baseline_free"], 1e-9)) > 10,  # type: ignore
               lambda: (f"ent={f['table9.baseline_enterprise']} "
                        f"free={f['table9.baseline_free']}"))

    if "ooni.domain_fraction" in f:
        _check(results, "ooni: geoblocking contaminates the test list",
               lambda: 0.0 < f["ooni.domain_fraction"] < 0.5,  # type: ignore
               lambda: f"fraction={f['ooni.domain_fraction']} (paper 9%)")
    if "ooni.control_403" in f:
        _check(results, "ooni: control blocking dwarfs local-only signal",
               lambda: f["ooni.control_403"] >= f["ooni.local_blocked_control_ok"],
               lambda: (f"control403={f['ooni.control_403']} "
                        f"localonly={f['ooni.local_blocked_control_ok']}"))

    if "vps.iran_blockpage" in f:
        _check(results, "vps: Iran block pages exceed US control",
               lambda: f["vps.iran_blockpage"] > f["vps.us_blockpage"],
               lambda: (f"iran={f['vps.iran_blockpage']} "
                        f"us={f['vps.us_blockpage']}"))
    elif "vps.iran_403" in f:
        _check(results, "vps: Iran 403s exceed US control",
               lambda: f["vps.iran_403"] > f["vps.us_403"],  # type: ignore
               lambda: f"iran={f['vps.iran_403']} us={f['vps.us_403']}")
    if "vps.fp_rate" in f:
        _check(results, "vps: ZGrab shows nontrivial false positives",
               lambda: 0.0 < f["vps.fp_rate"] < 0.9,  # type: ignore
               lambda: f"fp_rate={f['vps.fp_rate']} (paper 27%)")

    return results


def render_validation(results: List[CheckResult]) -> str:
    """Human-readable PASS/FAIL listing."""
    lines = []
    for result in results:
        status = "PASS" if result.passed else "FAIL"
        lines.append(f"[{status}] {result.name} — {result.detail}")
    passed = sum(1 for r in results if r.passed)
    lines.append(f"{passed}/{len(results)} shape checks passed")
    return "\n".join(lines)
