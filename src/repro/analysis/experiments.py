"""One-stop experiment runner: every table, figure, and headline number.

:class:`ExperimentSuite` runs the full study stack over a world —
exploration (§3.1), Top-10K (§4), Top-1M (§5), Cloudflare rules (§6), and
OONI confounding (§7.1) — builds all nine tables and five figures, and
renders a markdown report with paper-vs-measured comparisons.

Paper reference values live in :data:`PAPER_REFERENCE`.  Absolute counts
are scale-dependent (the synthetic Top-1M is smaller than the real one);
the comparisons that must hold are *shapes*: orderings, rates, and ratios.
"""

from __future__ import annotations

import logging
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

logger = logging.getLogger("repro.experiments")

from repro.analysis import figures as figs
from repro.analysis import tables as tabs
from repro.analysis.report import render_figure, render_markdown_table, render_table
from repro.core.metrics import (
    overall_recall,
    recall_by_fingerprint,
    score_confirmed_blocks,
)
from repro.core.pipeline import (
    StudyConfig,
    Top10KResult,
    Top1MResult,
    VPSExplorationResult,
    build_observation_pools,
    run_top10k_study,
    run_top1m_study,
    run_vps_exploration,
)
from repro.datasets.citizenlab import CitizenLabList
from repro.datasets.cloudflare_rules import CloudflareRuleDataset
from repro.datasets.fortiguard import FortiGuardClient
from repro.datasets.ooni import (
    OONICorpus,
    control_blocking_stats,
    find_geoblock_confounding,
)
from repro.lumscan.engine import ScanEngine
from repro.lumscan.scanner import Lumscan
from repro.proxynet.luminati import LuminatiClient
from repro.websim.world import World

#: Published values used for the paper-vs-measured comparison.
PAPER_REFERENCE: Dict[str, object] = {
    "top10k.safe_domains": 8003,
    "top10k.instances": 596,
    "top10k.unique_domains": 100,
    "top10k.countries_blocked": 165,
    "top10k.median_blocked_per_country": 3,
    "top10k.max_blocked_syria": 71,
    "top10k.top_countries": ["SY", "IR", "SD", "CU"],
    "top10k.appengine_rate": 0.407,
    "top10k.cloudflare_rate": 0.031,
    "top10k.cloudfront_rate": 0.014,
    "top10k.length_recall": 0.583,
    "table1.clusters": 119,
    "table1.discovered_cdns": 7,
    "fig1.frac_below_80_at_20": 0.039,
    "fig3.fn_at_3": 0.017,
    "top1m.rate_any": 0.044,
    "top1m.appengine_rate": 0.168,
    "top1m.cloudflare_rate": 0.026,
    "top1m.cloudfront_rate": 0.031,
    "top1m.top_countries": ["IR", "SD", "SY", "CU"],
    "top1m.median_blocked_per_country": 4,
    "ooni.domain_fraction": 0.09,
    "vps.fp_rate": 0.27,
    "table9.baseline_enterprise": 0.3707,
    "table9.baseline_free": 0.0172,
}


@dataclass
class ExperimentReport:
    """All artifacts produced by a suite run."""

    tables: Dict[str, tabs.TableData] = field(default_factory=dict)
    figures: Dict[str, figs.FigureData] = field(default_factory=dict)
    findings: Dict[str, object] = field(default_factory=dict)
    #: Per-study stage instrumentation (wall time, probes, checkpoint
    #: hits), keyed by study name.  Diagnostics only — deliberately kept
    #: out of :meth:`to_text`/:meth:`to_markdown` so rendered reports stay
    #: byte-identical across fresh and resumed runs.
    stage_stats: Dict[str, List[Dict[str, object]]] = field(
        default_factory=dict)

    def to_text(self) -> str:
        """Render everything as plain text."""
        parts: List[str] = []
        for key in sorted(self.tables):
            parts.append(render_table(self.tables[key]))
            parts.append("")
        for key in sorted(self.figures):
            parts.append(render_figure(self.figures[key]))
            parts.append("")
        parts.append("Headline findings (measured vs paper):")
        for key in sorted(self.findings):
            paper = PAPER_REFERENCE.get(key, "-")
            parts.append(f"  {key}: measured={self.findings[key]} paper={paper}")
        return "\n".join(parts)

    def to_markdown(self) -> str:
        """Render everything as markdown (EXPERIMENTS.md body)."""
        parts: List[str] = []
        for key in sorted(self.tables):
            table = self.tables[key]
            parts.append(f"### {table.title}\n")
            parts.append(render_markdown_table(table))
            parts.append("")
        for key in sorted(self.figures):
            figure = self.figures[key]
            parts.append(f"### {figure.title}\n")
            parts.append("```")
            parts.append(render_figure(figure))
            parts.append("```")
            parts.append("")
        parts.append("### Headline findings (measured vs paper)\n")
        parts.append("| Metric | Measured | Paper |")
        parts.append("|---|---|---|")
        for key in sorted(self.findings):
            paper = PAPER_REFERENCE.get(key, "—")
            parts.append(f"| `{key}` | {self.findings[key]} | {paper} |")
        return "\n".join(parts)


class ExperimentSuite:
    """Runs the complete reproduction over one world."""

    def __init__(self, world: World,
                 study_config: Optional[StudyConfig] = None,
                 checkpoint_dir: Optional[str] = None,
                 resume: bool = False,
                 checkpoint_format: str = "lshd") -> None:
        self.world = world
        self.config = study_config or StudyConfig(seed=world.config.seed)
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.checkpoint_format = checkpoint_format
        self.luminati = LuminatiClient(world)
        self.fortiguard = FortiGuardClient(world.population, world.taxonomy,
                                           seed=world.config.seed)
        self.top10k: Optional[Top10KResult] = None
        self.top1m: Optional[Top1MResult] = None
        self.vps: Optional[VPSExplorationResult] = None

    # ------------------------------------------------------------------ #

    def run(self, include_top1m: bool = True, include_vps: bool = True,
            include_ooni: bool = True, include_pools: bool = True,
            pool_pairs: int = 60, pool_samples: int = 100,
            cf_rule_zones: int = 120_000) -> ExperimentReport:
        """Run every experiment and assemble the report."""
        report = ExperimentReport()
        world = self.world

        logger.info("suite: starting Top-10K study")
        self.top10k = run_top10k_study(world, self.luminati, self.config,
                                       checkpoint_dir=self.checkpoint_dir,
                                       resume=self.resume,
                                       checkpoint_format=self.checkpoint_format)
        result = self.top10k
        report.stage_stats["top10k"] = [s.as_dict()
                                        for s in result.stage_stats]
        top10k_size = min(10_000, len(world.population))

        report.tables["table1"] = tabs.table1(result, top10k_size)
        recall_rows = recall_by_fingerprint(
            result.initial, result.representatives,
            cutoff=self.config.length_cutoff,
            registry=result.registry,
            restrict_countries=result.top_blocking_countries[
                : self.config.top_k_countries])
        report.tables["table2"] = tabs.table2(recall_rows)
        report.tables["table3"] = tabs.table3(result, self.fortiguard)
        report.tables["table4"] = tabs.table4(result, self.fortiguard)
        report.tables["table5"] = tabs.table5(result)
        report.tables["table6"] = tabs.table6(result)

        report.figures["figure2"] = figs.figure2(
            result.initial,
            result.top_blocking_countries[: self.config.top_k_countries],
            result.registry)
        report.figures["figure4"] = figs.figure4(result)

        self._top10k_findings(report, result, recall_rows)

        if include_pools and result.confirmed:
            pairs = [(c.domain, c.country) for c in result.confirmed][:pool_pairs]
            scanner = ScanEngine(Lumscan(self.luminati, seed=self.config.seed),
                                 workers=self.config.workers,
                                 executor=self.config.executor)
            pools = build_observation_pools(world, scanner, pairs,
                                            result.registry,
                                            samples=pool_samples)
            report.figures["figure1"] = figs.figure1(pools)
            report.figures["figure3"] = figs.figure3(pools)
            report.findings["fig1.frac_below_80_at_20"] = round(
                figs.figure1_stat(report.figures["figure1"], size=20), 4)
            fn_curve = {int(x): y for x, y in
                        report.figures["figure3"].series["false negatives"]}
            report.findings["fig3.fn_at_3"] = round(fn_curve.get(3, 0.0), 4)

        if include_top1m:
            logger.info("suite: starting Top-1M study")
            self.top1m = run_top1m_study(world, self.luminati, self.config,
                                         registry=result.registry,
                                         checkpoint_dir=self.checkpoint_dir,
                                         resume=self.resume,
                                         checkpoint_format=self.checkpoint_format)
            report.stage_stats["top1m"] = [s.as_dict()
                                           for s in self.top1m.stage_stats]
            report.tables["table7"] = tabs.table7(self.top1m)
            report.tables["table8"] = tabs.table8(self.top1m, self.fortiguard)
            self._top1m_findings(report, self.top1m)

        if include_vps:
            logger.info("suite: starting VPS exploration")
            self.vps = run_vps_exploration(world, registry=result.registry)
            report.findings["vps.fp_rate"] = round(
                self.vps.false_positive_rate, 4)
            report.findings["vps.iran_403"] = self.vps.iran_403_count
            report.findings["vps.us_403"] = self.vps.us_403_count
            report.findings["vps.iran_blockpage"] = self.vps.iran_blockpage_count
            report.findings["vps.us_blockpage"] = self.vps.us_blockpage_count
            report.findings["vps.flagged_pairs"] = len(self.vps.flagged_pairs)
            report.findings["vps.genuine_pairs"] = len(self.vps.genuine_pairs)

        rules = CloudflareRuleDataset.generate(n_zones=cf_rule_zones,
                                               seed=world.config.seed)
        report.tables["table9"] = tabs.table9(rules)
        report.figures["figure5"] = figs.figure5(rules)
        baselines = rules.baseline_rates()
        report.findings["table9.baseline_enterprise"] = round(
            baselines["enterprise"], 4)
        report.findings["table9.baseline_free"] = round(baselines["free"], 4)

        logger.info("suite: starting timeout study")
        self._run_timeout_study(report, result)

        logger.info("suite: starting application-layer survey")
        self._run_appdiff_study(report, result)

        if include_ooni:
            logger.info("suite: starting OONI analysis")
            self._run_ooni(report, result)

        logger.info("suite: done")
        return report

    # ------------------------------------------------------------------ #

    def _top10k_findings(self, report: ExperimentReport,
                         result: Top10KResult, recall_rows) -> None:
        world = self.world
        per_country = result.instances_by_country()
        tested_countries = result.countries
        counts = [per_country.get(c, 0) for c in tested_countries]
        findings = report.findings
        findings["top10k.safe_domains"] = len(result.safe_domains)
        findings["top10k.instances"] = len(result.confirmed)
        findings["top10k.unique_domains"] = len(result.confirmed_domains)
        findings["top10k.countries_blocked"] = len(result.confirmed_countries)
        findings["top10k.median_blocked_per_country"] = (
            statistics.median(counts) if counts else 0)
        top = [c for c, _ in per_country.most_common(4)]
        findings["top10k.top_countries"] = top
        findings["top10k.length_recall"] = round(overall_recall(recall_rows), 4)
        findings["table1.clusters"] = report.tables["table1"].rows[0][4]
        findings["table1.discovered_cdns"] = report.tables["table1"].rows[0][5]

        # Per-provider adoption among Top-10K customers (§4.2.1), measured
        # the way the paper did: via the §5.1.1 identification methods.
        from repro.core.identify import identify_cdn_customers
        from repro.datasets.alexa import AlexaList
        population = identify_cdn_customers(
            world, AlexaList(world.population).top10k())
        blocked_by: Dict[str, set] = {}
        for c in result.confirmed:
            blocked_by.setdefault(c.provider, set()).add(c.domain)
        for provider in ("appengine", "cloudflare", "cloudfront"):
            customers = population.of(provider)
            blocked = blocked_by.get(provider, set()) & customers
            rate = len(blocked) / len(customers) if customers else 0.0
            findings[f"top10k.{provider}_rate"] = round(rate, 4)

        score = score_confirmed_blocks(world, result.confirmed,
                                       result.safe_domains, result.countries)
        findings["top10k.gt_precision"] = round(score.precision, 4)
        findings["top10k.gt_recall"] = round(score.recall, 4)

    def _top1m_findings(self, report: ExperimentReport,
                        result: Top1MResult) -> None:
        findings = report.findings
        rates = result.provider_rates()
        for provider in ("appengine", "cloudflare", "cloudfront"):
            blocked, tested = rates.get(provider, (0, 0))
            findings[f"top1m.{provider}_rate"] = round(
                blocked / tested, 4) if tested else 0.0
        sampled = len(result.sampled_domains)
        findings["top1m.rate_any"] = round(
            len(result.confirmed_domains) / sampled, 4) if sampled else 0.0
        per_country = result.instances_by_country()
        findings["top1m.top_countries"] = [c for c, _ in per_country.most_common(4)]
        counts = [per_country.get(c, 0) for c in result.countries]
        findings["top1m.median_blocked_per_country"] = (
            statistics.median(counts) if counts else 0)
        nonexp = result.confirmed_nonexplicit()
        findings["top1m.akamai_confirmed"] = len(nonexp.get("akamai", []))
        findings["top1m.incapsula_confirmed"] = len(nonexp.get("incapsula", []))

    def _run_timeout_study(self, report: ExperimentReport,
                           result: Top10KResult) -> None:
        """§7.3 extension: timeout-based geoblocking over the initial scan."""
        from repro.core.timeouts import run_timeout_study
        from repro.websim.policies import ACTION_DROP

        scanner = ScanEngine(Lumscan(self.luminati, seed=self.config.seed),
                             workers=self.config.workers,
                             executor=self.config.executor)
        study = run_timeout_study(scanner, result.initial)
        report.findings["timeout.candidates"] = len(study.candidates)
        report.findings["timeout.confirmed"] = len(study.confirmed)
        report.findings["timeout.unambiguous"] = len(study.unambiguous)
        drop_truth = {
            name for name, policy in self.world.policies.items()
            if policy.action == ACTION_DROP and policy.active(1)
        }

        def _is_drop(block) -> bool:
            return (block.domain in drop_truth
                    and self.world.is_geoblocked(block.domain, block.country,
                                                 epoch=1))

        def _is_censored(block) -> bool:
            domain = self.world.population.get(block.domain)
            return block.country in domain.censored_in

        # A detection is *correct* when the pair genuinely never answers —
        # an operator's drop policy or a censor's drops.  Attribution is a
        # separate question: only detections outside censoring countries
        # can be pinned on the operator.
        correct = sum(1 for c in study.confirmed
                      if _is_drop(c) or _is_censored(c))
        report.findings["timeout.detection_precision"] = (
            round(correct / len(study.confirmed), 4)
            if study.confirmed else 1.0)
        unambiguous = study.unambiguous
        attributable_hits = sum(1 for c in unambiguous if _is_drop(c))
        report.findings["timeout.attributable_precision"] = (
            round(attributable_hits / len(unambiguous), 4)
            if unambiguous else 1.0)

    def _run_appdiff_study(self, report: ExperimentReport,
                           result: Top10KResult,
                           max_domains: int = 250,
                           max_countries: int = 35) -> None:
        """§7.3 extension: feature/price discrimination survey."""
        from repro.core.appdiff import run_appdiff_study

        world = self.world
        commerce_categories = ("Shopping", "Travel", "Auctions",
                               "Personal Vehicles")
        commerce = [d for d in result.safe_domains
                    if self.fortiguard.categorize(d) in commerce_categories]
        commerce = commerce[:max_domains]
        # The survey set must mix price-raised rich markets with baseline
        # markets and cover the abuse-heavy countries feature removal
        # targets; the front of the registry does both.
        countries = [c for c in world.registry.luminati_codes()
                     ][:max_countries]
        survey = run_appdiff_study(self.luminati, commerce, countries,
                                   samples=2)
        report.findings["appdiff.surveyed"] = len(commerce)
        report.findings["appdiff.feature_findings"] = len(
            survey.by_kind("feature-removal"))
        report.findings["appdiff.price_findings"] = len(survey.by_kind("price"))
        from repro.core.appdiff import is_genuine
        genuine = sum(
            1 for finding in survey.findings
            if is_genuine(world.degradations.get(finding.domain), finding))
        report.findings["appdiff.gt_precision"] = (
            round(genuine / len(survey.findings), 4)
            if survey.findings else 1.0)

    def _run_ooni(self, report: ExperimentReport, result: Top10KResult) -> None:
        world = self.world
        citizenlab = CitizenLabList(world.population, world.taxonomy,
                                    seed=world.config.seed)
        test_list = citizenlab.domains()
        # OONI volunteers cluster in a subset of countries; survey a
        # representative set (all sanctioned + known censors + a mix)
        # rather than every Luminati country.
        preferred = ["IR", "SY", "SD", "CU", "CN", "RU", "TR", "PK", "SA",
                     "AE", "VN", "EG", "ID", "IN", "UA", "BY", "TH", "US",
                     "DE", "GB", "FR", "NL", "BR", "MX", "NG", "KE", "ZA",
                     "JP", "KR", "AU", "CA", "IT", "ES", "PL", "GR", "IL",
                     "AR", "CO", "MY", "RO"]
        countries = [c for c in preferred
                     if c in world.registry and world.registry.get(c).luminati]
        corpus = OONICorpus.generate(world, test_list, countries=countries,
                                     seed=world.config.seed,
                                     measurements_per_pair=1)
        ooni_findings = find_geoblock_confounding(corpus, len(test_list),
                                                  result.registry)
        report.findings["ooni.measurements"] = len(corpus)
        report.findings["ooni.geoblock_measurements"] = (
            ooni_findings.geoblock_measurements)
        report.findings["ooni.geoblock_domains"] = len(
            ooni_findings.geoblock_domains)
        report.findings["ooni.domain_fraction"] = round(
            ooni_findings.domain_fraction, 4)
        from repro.core.identify import identify_by_ns
        ns = identify_by_ns(world.dns, test_list)
        cdn_domains = ns["cloudflare"] | ns["akamai"]
        stats = control_blocking_stats(corpus, cdn_domains, result.registry)
        report.findings["ooni.control_403"] = stats.control_403
        report.findings["ooni.local_blocked_control_ok"] = (
            stats.local_blocked_control_ok)
        report.findings["ooni.blockpages_with_blocked_control"] = (
            stats.blockpages_with_blocked_control)
