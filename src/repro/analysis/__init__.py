"""Analysis: reproduce every table and figure of the paper's evaluation."""

from repro.analysis import figures, tables
from repro.analysis.report import render_table

__all__ = ["figures", "tables", "render_table"]
