"""Dependency-free SVG line charts for the reproduced figures.

Offline environments have no plotting stack, so this module renders
:class:`~repro.analysis.figures.FigureData` to standalone SVG: axes,
ticks, step/line series, and a legend.  Enough to eyeball every CDF and
time series the paper shows.
"""

from __future__ import annotations

import html
from typing import List, Optional, Sequence, Tuple

from repro.analysis.figures import FigureData

_PALETTE = ("#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
            "#ff8ab7", "#a463f2", "#97bbf5", "#9c6b4e", "#9498a0")

_WIDTH, _HEIGHT = 720, 440
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 160, 50, 55


def _nice_ticks(low: float, high: float, count: int = 5) -> List[float]:
    if high <= low:
        high = low + 1.0
    span = high - low
    step = span / max(count - 1, 1)
    return [low + i * step for i in range(count)]


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


def render_svg(figure: FigureData,
               width: int = _WIDTH, height: int = _HEIGHT) -> str:
    """Render a figure as an SVG document string."""
    series = {name: pts for name, pts in figure.series.items() if pts}
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_lo, x_hi = (min(xs), max(xs)) if xs else (0.0, 1.0)
    y_lo, y_hi = (min(ys), max(ys)) if ys else (0.0, 1.0)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    plot_w = width - _MARGIN_L - _MARGIN_R
    plot_h = height - _MARGIN_T - _MARGIN_B

    def px(x: float) -> float:
        return _MARGIN_L + (x - x_lo) / (x_hi - x_lo) * plot_w

    def py(y: float) -> float:
        return _MARGIN_T + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif" font-size="12">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="{_MARGIN_L}" y="24" font-size="15" font-weight="bold">'
        f'{html.escape(figure.title)}</text>',
    ]

    # Axes and gridlines.
    for tick in _nice_ticks(x_lo, x_hi):
        x = px(tick)
        parts.append(f'<line x1="{x:.1f}" y1="{_MARGIN_T}" x2="{x:.1f}" '
                     f'y2="{_MARGIN_T + plot_h}" stroke="#eee"/>')
        parts.append(f'<text x="{x:.1f}" y="{_MARGIN_T + plot_h + 18}" '
                     f'text-anchor="middle">{_fmt(tick)}</text>')
    for tick in _nice_ticks(y_lo, y_hi):
        y = py(tick)
        parts.append(f'<line x1="{_MARGIN_L}" y1="{y:.1f}" '
                     f'x2="{_MARGIN_L + plot_w}" y2="{y:.1f}" stroke="#eee"/>')
        parts.append(f'<text x="{_MARGIN_L - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{_fmt(tick)}</text>')
    parts.append(f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" '
                 f'height="{plot_h}" fill="none" stroke="#999"/>')
    parts.append(f'<text x="{_MARGIN_L + plot_w / 2:.0f}" '
                 f'y="{height - 12}" text-anchor="middle" fill="#444">'
                 f'{html.escape(figure.x_label)}</text>')
    parts.append(f'<text x="18" y="{_MARGIN_T + plot_h / 2:.0f}" '
                 f'text-anchor="middle" fill="#444" transform="rotate(-90 18 '
                 f'{_MARGIN_T + plot_h / 2:.0f})">'
                 f'{html.escape(figure.y_label)}</text>')

    # Series (decimated for very dense CDFs).
    for index, (name, points) in enumerate(series.items()):
        color = _PALETTE[index % len(_PALETTE)]
        pts = points
        if len(pts) > 600:
            step = len(pts) / 600
            pts = [pts[int(i * step)] for i in range(600)] + [pts[-1]]
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{px(x):.1f},{py(y):.1f}"
            for i, (x, y) in enumerate(pts))
        parts.append(f'<path d="{path}" fill="none" stroke="{color}" '
                     f'stroke-width="1.8"/>')
        legend_y = _MARGIN_T + 14 + index * 18
        legend_x = _MARGIN_L + plot_w + 12
        parts.append(f'<line x1="{legend_x}" y1="{legend_y - 4}" '
                     f'x2="{legend_x + 20}" y2="{legend_y - 4}" '
                     f'stroke="{color}" stroke-width="2.5"/>')
        parts.append(f'<text x="{legend_x + 26}" y="{legend_y}">'
                     f'{html.escape(name)}</text>')

    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(figure: FigureData, path: str, **kwargs) -> None:
    """Render a figure and write it to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_svg(figure, **kwargs))
