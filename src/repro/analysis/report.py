"""Plain-text rendering of tables and figures."""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.tables import TableData


def render_table(table: TableData) -> str:
    """Render a :class:`TableData` as an aligned plain-text table."""
    headers = [str(c) for c in table.columns]
    rows = [[str(v) for v in row] for row in table.rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if table.title:
        lines.append(table.title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_figure(figure, max_points: int = 12) -> str:
    """Render a :class:`FigureData` as a compact textual summary."""
    lines = [figure.title, f"  x: {figure.x_label} | y: {figure.y_label}"]
    for name, points in figure.series.items():
        if not points:
            lines.append(f"  {name}: (empty)")
            continue
        sampled = points
        if len(points) > max_points:
            step = len(points) / max_points
            sampled = [points[int(i * step)] for i in range(max_points)]
            if sampled[-1] != points[-1]:
                sampled.append(points[-1])
        rendered = ", ".join(f"({x:.3g}, {y:.3g})" for x, y in sampled)
        lines.append(f"  {name} [{len(points)} pts]: {rendered}")
    return "\n".join(lines)


def render_markdown_table(table: TableData) -> str:
    """Render a :class:`TableData` as GitHub-flavored markdown."""
    headers = [str(c) for c in table.columns]
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    for row in table.rows:
        lines.append("| " + " | ".join(str(v) for v in row) + " |")
    return "\n".join(lines)
