"""Builders for Tables 1–9.

Each function consumes study results (never ground truth) and returns a
:class:`TableData`: ordered column names plus rows, renderable with
:func:`repro.analysis.report.render_table` and comparable against the
paper's published values in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.metrics import RecallRow, overall_recall
from repro.core.pipeline import Top10KResult, Top1MResult
from repro.datasets.cloudflare_rules import (
    CloudflareRuleDataset,
    TABLE9_TARGETS,
    TIERS,
)
from repro.datasets.fortiguard import FortiGuardClient


@dataclass
class TableData:
    """A rendered-ready table."""

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def column(self, name: str) -> List[object]:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> List[Dict[str, object]]:
        """Rows as dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]


#: Providers whose block pages explicitly signal geoblocking (§4.1.3) and
#: that correspond to CDN / hosting services (Airbnb-like brands excluded).
EXPLICIT_CDN_PROVIDERS = ("cloudflare", "cloudfront", "appengine")


def table1(result: Top10KResult, initial_domains: int) -> TableData:
    """Table 1: data volumes at each pipeline step."""
    clustered_pages = sum(1 for o in result.outliers if o.sample.body is not None)
    providers = set()
    for cluster in result.clusters:
        if cluster.page_type is None:
            continue
        from repro.core.fingerprints import PAGE_PROVIDER
        provider = PAGE_PROVIDER.get(cluster.page_type)
        if provider in ("cloudflare", "akamai", "cloudfront", "appengine",
                        "incapsula", "baidu", "soasta"):
            providers.add(provider)
    table = TableData(
        title="Table 1: Overview of data at each step in Methods",
        columns=["Initial Domains", "Safe Domains", "Initial Samples",
                 "Clustered Pages", "Clusters", "Discovered CDNs"],
    )
    table.rows.append([
        initial_domains,
        len(result.safe_domains),
        len(result.initial),
        clustered_pages,
        len({c.label for c in result.clusters}),
        len(providers),
    ])
    return table


def table2(rows: Sequence[RecallRow]) -> TableData:
    """Table 2: recall of the 30%-length heuristic per page type."""
    table = TableData(
        title="Table 2: Recall for block pages (30% length metric)",
        columns=["Page", "Recalled", "Actual", "Recall"],
    )
    for row in sorted(rows, key=lambda r: r.display_name):
        table.rows.append([row.display_name, row.recalled, row.actual,
                           f"{row.recall:.1%}"])
    table.rows.append(["Total", sum(r.recalled for r in rows),
                       sum(r.actual for r in rows),
                       f"{overall_recall(list(rows)):.1%}"])
    return table


def _domains_by_provider_category(confirmed, fortiguard: FortiGuardClient
                                  ) -> Dict[Tuple[str, str], set]:
    cells: Dict[Tuple[str, str], set] = {}
    for block in confirmed:
        category = fortiguard.categorize(block.domain)
        cells.setdefault((category, block.provider), set()).add(block.domain)
    return cells


def table3(result: Top10KResult, fortiguard: FortiGuardClient,
           top_n: int = 10) -> TableData:
    """Table 3: most geoblocked categories by CDN (Top 10K)."""
    cells = _domains_by_provider_category(
        [c for c in result.confirmed if c.provider in EXPLICIT_CDN_PROVIDERS],
        fortiguard)
    categories: Counter = Counter()
    for (category, _), domains in cells.items():
        categories[category] += len(domains)
    table = TableData(
        title="Table 3: Most geoblocked categories by CDN (Top 10K)",
        columns=["Category", "Cloudflare", "AppEngine", "CloudFront", "Total"],
    )
    listed = [c for c, _ in categories.most_common(top_n)]
    other = [c for c in categories if c not in listed]
    for category in listed + (["Other"] if other else []):
        row_categories = other if category == "Other" else [category]
        counts = {p: 0 for p in EXPLICIT_CDN_PROVIDERS}
        for cat in row_categories:
            for provider in EXPLICIT_CDN_PROVIDERS:
                counts[provider] += len(cells.get((cat, provider), ()))
        total = sum(counts.values())
        table.rows.append([category, counts["cloudflare"], counts["appengine"],
                           counts["cloudfront"], total])
    totals = [sum(table.column(c)) for c in table.columns[1:]]
    table.rows.append(["Total"] + totals)
    return table


def table4(result: Top10KResult, fortiguard: FortiGuardClient) -> TableData:
    """Table 4: geoblocked sites by category (Top 10K)."""
    tested: Counter = Counter(
        fortiguard.categorize(d) for d in result.safe_domains)
    blocked_domains: Dict[str, set] = {}
    for block in result.confirmed:
        category = fortiguard.categorize(block.domain)
        blocked_domains.setdefault(category, set()).add(block.domain)
    table = TableData(
        title="Table 4: Geoblocked sites by category (Top 10K)",
        columns=["Category", "Tested", "Geoblocked", "Rate"],
    )
    rows = []
    for category, count in tested.items():
        blocked = len(blocked_domains.get(category, ()))
        rate = blocked / count if count else 0.0
        rows.append([category, count, blocked, rate])
    rows.sort(key=lambda r: (-r[3], -r[1]))
    for category, count, blocked, rate in rows:
        table.rows.append([category, count, blocked, f"{rate:.1%}"])
    total_tested = sum(tested.values())
    total_blocked = len({d for s in blocked_domains.values() for d in s})
    table.rows.append(["Total", total_tested, total_blocked,
                       f"{(total_blocked / total_tested if total_tested else 0):.1%}"])
    return table


def table5(result: Top10KResult, top_n: int = 10) -> TableData:
    """Table 5: top TLDs of geoblocking sites and most-blocked countries."""
    tlds: Counter = Counter(d.rsplit(".", 1)[-1] for d in result.confirmed_domains)
    countries = result.instances_by_country()
    table = TableData(
        title="Table 5: Top TLDs and geoblocked countries (Top 10K)",
        columns=["TLD", "TLD Count", "Country", "Country Count"],
    )
    tld_rows = tlds.most_common(top_n)
    tld_other = sum(tlds.values()) - sum(c for _, c in tld_rows)
    country_rows = countries.most_common(top_n)
    country_other = sum(countries.values()) - sum(c for _, c in country_rows)
    for i in range(top_n):
        tld, tcount = tld_rows[i] if i < len(tld_rows) else ("", "")
        country, ccount = country_rows[i] if i < len(country_rows) else ("", "")
        table.rows.append([f".{tld}" if tld else "", tcount, country, ccount])
    table.rows.append(["Other", tld_other, "Others", country_other])
    table.rows.append(["Total", sum(tlds.values()), "Total", sum(countries.values())])
    return table


def _country_by_provider(confirmed, top_n: int) -> TableData:
    by_country: Counter = Counter(c.country for c in confirmed
                                  if c.provider in EXPLICIT_CDN_PROVIDERS)
    cells: Dict[Tuple[str, str], int] = Counter()
    for block in confirmed:
        if block.provider in EXPLICIT_CDN_PROVIDERS:
            cells[(block.country, block.provider)] += 1
    table = TableData(
        title="",
        columns=["Country", "Cloudflare", "CloudFront", "AppEngine", "Total"],
    )
    listed = [c for c, _ in by_country.most_common(top_n)]
    other = [c for c in by_country if c not in listed]
    for country in listed + (["Other"] if other else []):
        group = other if country == "Other" else [country]
        counts = {p: 0 for p in EXPLICIT_CDN_PROVIDERS}
        for c in group:
            for provider in EXPLICIT_CDN_PROVIDERS:
                counts[provider] += cells.get((c, provider), 0)
        table.rows.append([country, counts["cloudflare"], counts["cloudfront"],
                           counts["appengine"], sum(counts.values())])
    totals = [sum(table.column(c)) for c in table.columns[1:]]
    table.rows.append(["Total"] + totals)
    return table


def table6(result: Top10KResult, top_n: int = 10) -> TableData:
    """Table 6: geoblocking among Top 10K sites, by country and CDN."""
    table = _country_by_provider(result.confirmed, top_n)
    table.title = "Table 6: Geoblocking among Top 10K sites, by country"
    return table


def table7(result: Top1MResult, top_n: int = 10) -> TableData:
    """Table 7: geoblocking among Top 1M sites, by country and CDN."""
    table = _country_by_provider(result.confirmed, top_n)
    table.title = "Table 7: Geoblocking among Top 1M sites, by country"
    return table


def table8(result: Top1MResult, fortiguard: FortiGuardClient,
           top_n: int = 15) -> TableData:
    """Table 8: geoblocked sites by category (Top 1M sample)."""
    tested: Counter = Counter(
        fortiguard.categorize(d) for d in result.sampled_domains)
    blocked_domains: Dict[str, set] = {}
    for block in result.confirmed:
        category = fortiguard.categorize(block.domain)
        blocked_domains.setdefault(category, set()).add(block.domain)
    ranked = sorted(blocked_domains,
                    key=lambda c: -len(blocked_domains[c]))[:top_n]
    table = TableData(
        title="Table 8: Geoblocked sites by top category (Top 1M)",
        columns=["Category", "Tested", "Geoblocked", "Rate"],
    )
    other_blocked: set = set()
    other_tested = 0
    for category, count in tested.items():
        if category not in ranked:
            other_tested += count
            other_blocked |= blocked_domains.get(category, set())
    for category in ranked:
        count = tested.get(category, 0)
        blocked = len(blocked_domains.get(category, ()))
        rate = blocked / count if count else 0.0
        table.rows.append([category, count, blocked, f"{rate:.1%}"])
    table.rows.append(["Other", other_tested, len(other_blocked),
                       f"{(len(other_blocked) / other_tested if other_tested else 0):.1%}"])
    total_tested = sum(tested.values())
    total_blocked = len({d for s in blocked_domains.values() for d in s})
    table.rows.append(["Total", total_tested, total_blocked,
                       f"{(total_blocked / total_tested if total_tested else 0):.1%}"])
    return table


def table9(dataset: CloudflareRuleDataset,
           countries: Optional[Sequence[str]] = None) -> TableData:
    """Table 9: Cloudflare country-rule rates by account tier."""
    selected = list(countries) if countries is not None else list(TABLE9_TARGETS)
    baselines = dataset.baseline_rates()
    rates = dataset.country_rates(selected)
    table = TableData(
        title="Table 9: Most geoblocked countries by Cloudflare customers",
        columns=["Country", "All", "Enterprise", "Business", "Pro", "Free"],
    )
    all_baseline = (sum(baselines[t] * dataset.zones(t) for t in TIERS)
                    / max(1, sum(dataset.zones(t) for t in TIERS)))
    table.rows.append(["Baseline", f"{all_baseline:.2%}"]
                      + [f"{baselines[t]:.2%}" for t in TIERS])
    ordered = sorted(selected, key=lambda c: -rates[c]["all"])
    for country in ordered:
        row = rates[country]
        table.rows.append([country, f"{row['all']:.2%}"]
                          + [f"{row[t]:.2%}" for t in TIERS])
    return table
