"""Builders for Figures 1–5 (data series; no plotting dependencies).

Each figure function returns a :class:`FigureData` holding named series of
(x, y) points, printable with :func:`repro.analysis.report.render_figure`
or exportable for any plotting tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.classify import VERDICT_EXPLICIT, classify_sample
from repro.core.fingerprints import FingerprintRegistry
from repro.core.lengths import representative_lengths
from repro.core.pipeline import Top10KResult
from repro.core.resample import (
    block_rates,
    consistency_cdf,
    false_negative_curve,
)
from repro.datasets.cloudflare_rules import CloudflareRuleDataset, SANCTIONS_BUNDLE
from repro.lumscan.records import DatasetReader


@dataclass
class FigureData:
    """Named (x, y) series for one figure."""

    title: str
    x_label: str
    y_label: str
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)

    def add_series(self, name: str, points: Sequence[Tuple[float, float]]) -> None:
        """Attach one named series."""
        self.series[name] = list(points)


def _cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return []
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def figure1(pools: Mapping[Tuple[str, str], Sequence[bool]],
            sizes: Sequence[int] = (1, 3, 5, 10, 20, 50),
            draws: int = 500, seed: int = 0) -> FigureData:
    """Figure 1: CDF of observed geoblocking rate per sample size."""
    figure = FigureData(
        title="Figure 1: Consistency for various sample rates",
        x_label="observed geoblocking rate",
        y_label="CDF over (pair, draw)",
    )
    combined = consistency_cdf(pools, sizes, draws=draws, seed=seed)
    for size in sizes:
        figure.add_series(f"samples={size}", _cdf_points(combined[size]))
    return figure


def figure1_stat(figure: FigureData, size: int = 20,
                 rate_threshold: float = 0.8) -> float:
    """The §4.1.4 headline: fraction of draws below an 80% block rate."""
    points = figure.series.get(f"samples={size}", [])
    if not points:
        return 0.0
    below = sum(1 for rate, _ in points if rate < rate_threshold)
    return below / len(points)


def figure2(dataset: DatasetReader,
            reference_countries: Optional[Sequence[str]] = None,
            registry: Optional[FingerprintRegistry] = None) -> FigureData:
    """Figure 2: CDF of relative length difference, blocked vs all pages."""
    reg = registry or FingerprintRegistry.default()
    reps = representative_lengths(dataset, reference_countries)
    # Vectorized: per-row representative lengths and relative differences
    # come from one mask expression; only rows with a retained body reach
    # the fingerprint matcher, memoized over distinct body texts.
    rep_rows = np.zeros(len(dataset.domains()), dtype=np.int64)
    for domain, rep in reps.items():
        code = dataset.domain_code(domain)
        if code is not None and rep:
            rep_rows[code] = rep
    per_row = rep_rows[dataset.domain_code_array()]
    valid = dataset.ok_array() & (per_row > 0)
    relative = np.zeros(len(dataset), dtype=np.float64)
    np.divide(per_row - dataset.length_array(), per_row,
              out=relative, where=per_row > 0)
    has_body = dataset.has_body_array()
    match_memo: Dict[str, bool] = {}
    blocked: List[float] = []
    everything: List[float] = []
    for index in np.flatnonzero(valid).tolist():
        diff = float(relative[index])
        everything.append(diff)
        if not has_body[index]:
            continue
        body = dataset.body(index)
        matched = match_memo.get(body)
        if matched is None:
            matched = reg.match(body) is not None
            match_memo[body] = matched
        if matched:
            blocked.append(diff)
    figure = FigureData(
        title="Figure 2: Relative sizes of block pages and representative pages",
        x_label="relative length difference vs representative",
        y_label="CDF",
    )
    figure.add_series("all pages", _cdf_points(everything))
    figure.add_series("blocked pages", _cdf_points(blocked))
    return figure


def figure3(pools: Mapping[Tuple[str, str], Sequence[bool]],
            sizes: Sequence[int] = (1, 2, 3, 4, 5, 6, 8, 10),
            draws: int = 500, seed: int = 0) -> FigureData:
    """Figure 3: false-negative rate of the initial sample size."""
    curve = false_negative_curve(pools, sizes, draws=draws, seed=seed)
    figure = FigureData(
        title="Figure 3: False negative rate for known geoblockers",
        x_label="samples per (domain, country) pair",
        y_label="false negative rate",
    )
    figure.add_series("false negatives",
                      [(float(size), curve[size]) for size in sizes])
    return figure


def figure4(result: Top10KResult,
            registry: Optional[FingerprintRegistry] = None) -> FigureData:
    """Figure 4: CDF of block-page agreement for confirmed pairs."""
    reg = registry or result.registry
    initial_rates = block_rates(result.initial, reg, explicit_only=True)
    resampled_rates = block_rates(result.resampled, reg, explicit_only=True)
    confirmed_pairs = {(c.domain, c.country) for c in result.confirmed}
    # Include all candidate pairs (what the paper's Figure 4 shows: just
    # under half of pairs do not reach 100% agreement).
    agreements: List[float] = []
    for pair in result.candidates:
        hits = 0
        total = 0
        for rates in (initial_rates, resampled_rates):
            if pair in rates:
                h, t, _ = rates[pair]
                hits += h
                total += t
        if total:
            agreements.append(hits / total)
    figure = FigureData(
        title="Figure 4: Consistency of geoblocking observations",
        x_label="fraction of probes returning the geoblock page",
        y_label="CDF over candidate pairs",
    )
    figure.add_series("agreement", _cdf_points(agreements))
    figure.add_series("confirmed-only", _cdf_points(
        [a for pair, a in zip(result.candidates, agreements)
         if pair in confirmed_pairs]))
    return figure


def figure5(dataset: CloudflareRuleDataset,
            countries: Sequence[str] = SANCTIONS_BUNDLE) -> FigureData:
    """Figure 5: Enterprise geoblock-rule activations over time."""
    series = dataset.activation_series(countries, tier="enterprise",
                                       action="block")
    figure = FigureData(
        title="Figure 5: Enterprise activation of geoblocking over time",
        x_label="days since 2016-01-01",
        y_label="active rules (cumulative)",
    )
    import datetime
    origin = datetime.date(2016, 1, 1)
    for country, points in series.items():
        figure.add_series(country, [((d - origin).days, c) for d, c in points])
    return figure
