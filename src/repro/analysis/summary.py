"""Executive summary: narrate a report's findings in plain language.

Turns the findings mapping into the short prose a reader wants first —
what was measured, who blocks whom, and how it compares to the paper.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.analysis.experiments import PAPER_REFERENCE


def _fmt_pct(value: object) -> str:
    if isinstance(value, (int, float)):
        return f"{value:.1%}"
    return str(value)


def executive_summary(findings: Mapping[str, object]) -> str:
    """Render a prose summary of a suite run's findings."""
    lines: List[str] = []
    f = findings

    if "top10k.instances" in f:
        lines.append(
            f"Across {f.get('top10k.safe_domains', '?')} probe-safe popular "
            f"domains, the pipeline confirmed {f['top10k.instances']} "
            f"geoblocking instances by {f.get('top10k.unique_domains', '?')} "
            f"unique domains in {f.get('top10k.countries_blocked', '?')} "
            "countries.")
    if "top10k.top_countries" in f:
        top = ", ".join(f["top10k.top_countries"])  # type: ignore[arg-type]
        lines.append(
            f"The most geoblocked countries are {top} — the U.S.-sanctioned "
            "set, as the paper found (Syria, Iran, Sudan, Cuba led Table 5).")
    if "top10k.appengine_rate" in f:
        lines.append(
            "Per-provider adoption among popular-site customers: AppEngine "
            f"{_fmt_pct(f['top10k.appengine_rate'])} (paper 40.7%), "
            f"Cloudflare {_fmt_pct(f['top10k.cloudflare_rate'])} (3.1%), "
            f"CloudFront {_fmt_pct(f['top10k.cloudfront_rate'])} (1.4%).")
    if "top1m.rate_any" in f:
        lines.append(
            f"In the long-tail study, {_fmt_pct(f['top1m.rate_any'])} of "
            "sampled CDN customers geoblock at least one country "
            "(paper: 4.4%).")
    if "top10k.gt_precision" in f:
        lines.append(
            "Against simulator ground truth the confirmed detections score "
            f"{_fmt_pct(f['top10k.gt_precision'])} precision / "
            f"{_fmt_pct(f.get('top10k.gt_recall', 0.0))} recall — the "
            "measurement the original study could only approximate by hand.")
    if "ooni.domain_fraction" in f:
        lines.append(
            f"{_fmt_pct(f['ooni.domain_fraction'])} of the censorship test "
            "list shows CDN geoblock pages somewhere (paper: 9%), so "
            "geoblocking materially confounds censorship measurement.")
    if "timeout.confirmed" in f:
        lines.append(
            f"The timeout-geoblocking detector (paper future work) confirmed "
            f"{f['timeout.confirmed']} persistent-drop pairs, "
            f"{f.get('timeout.unambiguous', 0)} of them outside censoring "
            "countries.")
    if "appdiff.feature_findings" in f:
        lines.append(
            "Application-layer discrimination (paper future work): "
            f"{f['appdiff.feature_findings']} feature-removal and "
            f"{f['appdiff.price_findings']} price findings at "
            f"{_fmt_pct(f.get('appdiff.gt_precision', 1.0))} precision.")

    if not lines:
        return "No findings recorded."
    return "\n".join(f"- {line}" for line in lines)


def paper_comparison_rows(findings: Mapping[str, object]) -> List[tuple]:
    """(key, measured, paper) rows for keys with published references."""
    rows = []
    for key in sorted(findings):
        if key in PAPER_REFERENCE:
            rows.append((key, findings[key], PAPER_REFERENCE[key]))
    return rows
