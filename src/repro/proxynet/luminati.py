"""Simulated Luminati residential proxy network.

Luminati (per Chung et al. and §2.2/§3.2 of the paper) routes customer
requests through a *superproxy* to residential *exit nodes* — machines of
Hola VPN users.  The measurement consequences the simulation reproduces:

* **Per-country exit pools.**  A client asks for a country; the superproxy
  picks an exit there.  North Korea (and a few microstates) have no exits.
* **Flaky paths.**  Residential connectivity is unreliable.  Each
  (domain, country) pair may be persistently flaky (bad peering, weak last
  mile), and every request has a small transient failure floor.  Rates are
  calibrated so that, with 3 samples per pair, 89–94% of domains yield at
  least one response per country — and Comoros lands near the paper's
  76.4% outlier.
* **Local interference.**  Some exits sit behind corporate or home
  firewalls that filter some domains locally; those exits return a local
  nginx 403 instead of the real page — a source of non-geoblocking block
  pages that the pipeline's 80% agreement threshold must absorb.
* **Luminati refusals.**  Luminati itself refuses to carry traffic to a
  small set of (popular) domains, signalled by an ``X-Luminati-Error``
  header; the Top-10K study saw 13 such domains, the Top-1M sample 3.
* **Geolocation metadata.**  Each probe reports the exit's IP and the
  geolocation Luminati believes, which the client uses for bookkeeping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.httpsim.messages import BodyPolicy, Headers, Request, Response
from repro.httpsim.url import URL, parse_url
from repro.httpsim.useragent import browser_headers
from repro.netsim.errors import (
    ConnectionTimeout,
    FetchError,
    LuminatiRefusal,
    NoExitAvailable,
    ProxyError,
)
from repro.proxynet.transport import DEFAULT_MAX_REDIRECTS, FetchResult, fetch_with_redirects
from repro.util.cache import MemoDict
from repro.util.counters import ShardedCounter
from repro.util.rng import derive_rng

#: Probability that a (domain, country) pair is persistently flaky, as a
#: function of the country's reliability score r: 0.02 + 1.1 * (1 - r).
_PAIR_FLAKY_BASE = 0.02
_PAIR_FLAKY_SLOPE = 1.1
#: Per-request failure probability on a flaky pair.
_FLAKY_FAIL = 0.9
#: Transient per-request failure floor on healthy pairs (scaled by country).
_HEALTHY_FAIL_SCALE = 1.0 / 3.0

#: Fraction of exits behind an interfering local firewall.
_FIREWALLED_EXIT_RATE = 0.03
#: Probability that a firewalled exit filters any particular domain.
_FIREWALL_DOMAIN_RATE = 0.05

#: Luminati refusal probability by rank bucket (Top-10K vs tail).
_REFUSAL_HEAD = 0.0018
_REFUSAL_TAIL = 0.0005

_LOCAL_FIREWALL_403 = (
    "<html>\r\n<head><title>403 Forbidden</title></head>\r\n"
    "<body bgcolor=\"white\">\r\n<center><h1>403 Forbidden</h1></center>\r\n"
    "<hr><center>nginx</center>\r\n</body>\r\n</html>\r\n"
)


@dataclass(frozen=True)
class ExitNode:
    """One residential exit machine."""

    country: str
    index: int
    ip: str
    firewalled: bool

    @property
    def node_id(self) -> str:
        """Stable identifier for rotation bookkeeping."""
        return f"{self.country}/{self.index}"


@dataclass
class ProbeResult:
    """One completed probe through Luminati.

    ``geo_country`` is the geolocation Luminati reported for the exit —
    the paper's analyses key measurements on this, *not* on ground truth.
    """

    url: str
    country: str                  # requested country
    response: Optional[Response]  # final response (None on failure)
    chain: List[Response] = field(default_factory=list)
    error: Optional[str] = None   # FetchError.kind on failure
    exit_ip: Optional[str] = None
    geo_country: Optional[str] = None
    interfered: bool = False      # served by a local firewall, not the site

    @property
    def ok(self) -> bool:
        """True when an HTTP response was obtained."""
        return self.response is not None

    @property
    def all_responses(self) -> List[Response]:
        """Every response in the redirect chain (final last)."""
        if self.response is None:
            return list(self.chain)
        return self.chain + [self.response]


class LuminatiClient:
    """The customer-facing API of the simulated proxy network."""

    def __init__(self, world, seed: Optional[int] = None,
                 exits_per_country: int = 400) -> None:
        self._world = world
        self._seed = world.config.seed if seed is None else seed
        self._exits_per_country = exits_per_country
        self._rng = derive_rng(self._seed, "luminati")
        self._exit_cache: MemoDict[str, List[ExitNode]] = MemoDict()
        self._request_count = ShardedCounter()
        # Absorption tokens already folded in (duplicate-batch guard).
        self._absorbed_tokens: Set[str] = set()
        # Hot-path memo tables: these predicates are deterministic
        # functions of (seed, domain[, country/exit]), so memoizing them
        # is semantics-preserving and avoids re-hashing on every probe.
        # parse_url is a pure function and probes revisit the same few
        # URLs per domain.  MemoDict marks the idempotent-write contract
        # that makes these safe to fill from scan workers.
        self._refusal_cache: MemoDict[str, bool] = MemoDict()
        self._flaky_cache: MemoDict[Tuple[str, str], bool] = MemoDict()
        self._fw_cache: MemoDict[Tuple[str, str], bool] = MemoDict()
        self._url_cache: MemoDict[str, URL] = MemoDict()

    # ------------------------------------------------------------------ #

    def countries(self) -> List[str]:
        """Countries with at least one residential exit."""
        return self._world.registry.luminati_codes()

    def exits(self, country: str) -> List[ExitNode]:
        """The exit pool for a country (built lazily, deterministic)."""
        pool = self._exit_cache.get(country)
        if pool is not None:
            return pool
        info = self._world.registry.get(country)
        if not info.luminati:
            raise NoExitAvailable(f"no Luminati exits in {country}")
        pool = []
        rng = derive_rng(self._seed, "exits", country)
        for index in range(self._exits_per_country):
            region = None
            if info.regions and rng.random() < 0.06:
                region = rng.choice(info.regions)
            ip = self._world.residential_address(country, rng, region=region)
            pool.append(ExitNode(
                country=country,
                index=index,
                ip=ip,
                firewalled=rng.random() < _FIREWALLED_EXIT_RATE,
            ))
        self._exit_cache[country] = pool
        return pool

    def pick_exit(self, country: str, rng: Optional[random.Random] = None) -> ExitNode:
        """Choose an exit node in a country."""
        pool = self.exits(country)
        r = rng if rng is not None else self._rng
        return r.choice(pool)

    def verify_connectivity(self, exit_node: ExitNode) -> Dict[str, str]:
        """Fetch the Luminati-controlled echo page through an exit.

        Returns the client IP and geolocation data the echo page reports —
        the connectivity pre-check Lumscan performs before real probes.
        """
        geo = self._world.geoip.lookup(exit_node.ip)
        return {
            "ip": exit_node.ip,
            "country": geo.country if geo else "ZZ",
            "region": (geo.region or "") if geo else "",
        }

    # ------------------------------------------------------------------ #

    def request(self, url: str, country: str,
                headers: Optional[Headers] = None,
                exit_node: Optional[ExitNode] = None,
                max_redirects: int = DEFAULT_MAX_REDIRECTS,
                epoch: int = 0,
                rng: Optional[random.Random] = None,
                body_policy: Optional[BodyPolicy] = None) -> ProbeResult:
        """Issue one probe from a residential exit in ``country``.

        ``rng``, when given, supplies every random draw the probe makes
        (path-failure rolls here, noise and render draws in the world), so
        the outcome is a pure function of the caller's rng state — the
        foundation of the scan engine's order-independent determinism.
        ``body_policy`` is forwarded to the world (see
        :meth:`repro.websim.world.World.fetch`).
        """
        self._request_count.increment()
        target = self._url_cache.get(url)
        if target is None:
            target = parse_url(url)
            self._url_cache[url] = target
        domain_name = self._registrable(target.host)

        if self._refused(domain_name):
            return ProbeResult(url=url, country=country, response=None,
                               error=LuminatiRefusal.kind)
        try:
            node = exit_node or self.pick_exit(country, rng=rng)
        except NoExitAvailable as exc:
            return ProbeResult(url=url, country=country, response=None,
                               error=exc.kind)

        geo = self._world.geoip.lookup(node.ip)
        geo_country = geo.country if geo else None

        if self._path_fails(domain_name, country, rng):
            return ProbeResult(url=url, country=country, response=None,
                               error=ConnectionTimeout.kind, exit_ip=node.ip,
                               geo_country=geo_country)

        if node.firewalled and self._locally_filtered(node, domain_name):
            response = Response(status=403, body=_LOCAL_FIREWALL_403, url=target)
            response.headers.add("Server", "nginx")
            return ProbeResult(url=url, country=country, response=response,
                               exit_ip=node.ip, geo_country=geo_country,
                               interfered=True)

        request = Request(url=target,
                          headers=(headers.copy() if headers else browser_headers()))
        try:
            result: FetchResult = fetch_with_redirects(
                self._world, request, node.ip,
                max_redirects=max_redirects, epoch=epoch, rng=rng,
                body_policy=body_policy)
        except FetchError as exc:
            return ProbeResult(url=url, country=country, response=None,
                               error=exc.kind, exit_ip=node.ip,
                               geo_country=geo_country)
        return ProbeResult(url=url, country=country, response=result.response,
                           chain=result.chain, exit_ip=node.ip,
                           geo_country=geo_country)

    @property
    def request_count(self) -> int:
        """Total probes issued through this client (workers included)."""
        return self._request_count.value

    @property
    def world(self):
        """The simulated world this client probes."""
        return self._world

    @property
    def seed(self) -> int:
        """The seed all client-side randomness derives from."""
        return self._seed

    @property
    def exits_per_country(self) -> int:
        """Size of each country's exit pool."""
        return self._exits_per_country

    def absorb_worker_counts(self, requests: int, fetches: int,
                             token: Optional[str] = None) -> None:
        """Fold in traffic stats reported by a worker process's replica.

        Process workers run their own client/world pair; their per-chunk
        deltas land here so ``request_count`` and ``world.fetch_count``
        stay accurate regardless of executor.  A ``token`` marks the
        batch: absorbing a token that was already absorbed raises
        ``ValueError`` before any counter moves, so a retried or
        replayed chunk cannot double-count totals.
        """
        if token is not None:
            if token in self._absorbed_tokens:
                raise ValueError(
                    f"worker stats batch {token!r} was already absorbed")
            self._absorbed_tokens.add(token)
        self._request_count.add(requests)
        self._world.add_external_fetches(fetches)

    # ------------------------------------------------------------------ #

    @staticmethod
    def _registrable(host: str) -> str:
        return host[4:] if host.startswith("www.") else host

    def _refused(self, domain_name: str) -> bool:
        cached = self._refusal_cache.get(domain_name)
        if cached is not None:
            return cached
        try:
            rank = self._world.population.get(domain_name).rank
        except KeyError:
            rank = 10 ** 9
        rate = _REFUSAL_HEAD if rank <= 10_000 else _REFUSAL_TAIL
        rng = derive_rng(self._seed, "lum-refusal", domain_name)
        refused = rng.random() < rate
        self._refusal_cache[domain_name] = refused
        return refused

    def _path_fails(self, domain_name: str, country: str,
                    rng: Optional[random.Random] = None) -> bool:
        info = self._world.registry.get(country)
        key = (domain_name, country)
        flaky = self._flaky_cache.get(key)
        if flaky is None:
            flaky_p = _PAIR_FLAKY_BASE + _PAIR_FLAKY_SLOPE * (1.0 - info.reliability)
            pair_rng = derive_rng(self._seed, "pair-flaky", domain_name, country)
            flaky = pair_rng.random() < flaky_p
            self._flaky_cache[key] = flaky
        draw = rng if rng is not None else self._rng
        if flaky:
            return draw.random() < _FLAKY_FAIL
        transient = (1.0 - info.reliability) * _HEALTHY_FAIL_SCALE
        return draw.random() < transient

    def _locally_filtered(self, node: ExitNode, domain_name: str) -> bool:
        key = (node.node_id, domain_name)
        cached = self._fw_cache.get(key)
        if cached is None:
            rng = derive_rng(self._seed, "fw", node.node_id, domain_name)
            cached = rng.random() < _FIREWALL_DOMAIN_RATE
            self._fw_cache[key] = cached
        return cached
