"""ZGrab-style crawling and its validation protocol (§3.1).

The paper validated ZGrab before trusting it: 50 random domains were
fetched both through ZGrab and interactively in a real browser proxied
through the same VPS, and the responses compared.  That check surfaced
the ~30% Akamai false-positive problem (UA-only requests flagged as
bots) that ultimately shaped Lumscan's full-header design.

:func:`validate_zgrab` reproduces the protocol and reports agreement;
:func:`false_positive_survey` quantifies the bot-detection gap per
provider.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.proxynet.vps import VPSClient
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class ZGrabComparison:
    """One domain's ZGrab-vs-browser comparison."""

    domain: str
    zgrab_status: Optional[int]     # None = no response
    browser_status: Optional[int]

    @property
    def agrees(self) -> bool:
        """True when both clients saw the same status."""
        return self.zgrab_status == self.browser_status

    @property
    def zgrab_false_positive(self) -> bool:
        """ZGrab saw a 4xx the browser did not — the §3.1 phenomenon."""
        return (self.zgrab_status is not None
                and self.zgrab_status >= 400
                and self.browser_status is not None
                and self.browser_status < 400)


@dataclass
class ZGrabValidation:
    """Outcome of the 50-domain validation protocol."""

    comparisons: List[ZGrabComparison] = field(default_factory=list)

    @property
    def agreement_rate(self) -> float:
        """Fraction of domains where both clients agreed."""
        if not self.comparisons:
            return 1.0
        return sum(1 for c in self.comparisons if c.agrees) / len(self.comparisons)

    @property
    def false_positives(self) -> List[ZGrabComparison]:
        """Domains ZGrab wrongly saw as blocked."""
        return [c for c in self.comparisons if c.zgrab_false_positive]


def validate_zgrab(vps: VPSClient, domains: Sequence[str],
                   sample_size: int = 50, seed: int = 0) -> ZGrabValidation:
    """Run the §3.1 validation: ZGrab vs interactive browser, same VPS."""
    rng = derive_rng(seed, "zgrab-validate", vps.country)
    selected = list(domains)
    if len(selected) > sample_size:
        selected = sorted(rng.sample(selected, sample_size))
    validation = ZGrabValidation()
    for domain in selected:
        url = f"http://{domain}/"
        zgrab = vps.fetch_zgrab(url)
        browser = vps.fetch_browser(url)
        validation.comparisons.append(ZGrabComparison(
            domain=domain,
            zgrab_status=zgrab.response.status if zgrab.ok else None,
            browser_status=browser.response.status if browser.ok else None,
        ))
    return validation


def false_positive_survey(vps: VPSClient, domains_by_provider: Dict[str, Sequence[str]],
                          samples: int = 2) -> Dict[str, float]:
    """Per provider: fraction of domains ZGrab flags that a browser loads.

    Quantifies the paper's "on the order of 30% of the Akamai 403s
    appeared to be false positives" finding, per provider.
    """
    rates: Dict[str, float] = {}
    for provider, domains in domains_by_provider.items():
        flagged = 0
        false_positive = 0
        for domain in domains:
            url = f"http://{domain}/"
            zgrab_403 = any(
                (r := vps.fetch_zgrab(url)).ok and r.response.status == 403
                for _ in range(samples))
            if not zgrab_403:
                continue
            flagged += 1
            browser = vps.fetch_browser(url)
            if browser.ok and browser.response.status < 400:
                false_positive += 1
        rates[provider] = (false_positive / flagged) if flagged else 0.0
    return rates
