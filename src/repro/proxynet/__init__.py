"""Vantage points: the Luminati residential proxy network and VPS fleet."""

from repro.proxynet.luminati import ExitNode, LuminatiClient, ProbeResult
from repro.proxynet.transport import fetch_with_redirects
from repro.proxynet.vps import VPSClient, VPSFleet

__all__ = [
    "ExitNode",
    "LuminatiClient",
    "ProbeResult",
    "fetch_with_redirects",
    "VPSClient",
    "VPSFleet",
]
