"""An interactive-browser client: executes challenges like a human would.

The measurement tools (Lumscan, ZGrab) record challenge pages as-is; a
*person* behind a real browser passes them — the browser runs the JS
challenge automatically, and a human can solve a captcha.  The paper
leans on exactly this distinction during manual verification (§3.1,
§7.3: "our technique does not provide access to verify our observation
through an interactive browser" for some services).

:class:`InteractiveBrowser` closes that gap in simulation: it keeps a
cookie jar, auto-solves Cloudflare JS challenges, optionally solves
captchas (``human=True``), and retries the original URL with the earned
clearance cookie.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional

from repro.httpsim.cookies import CookieJar
from repro.httpsim.messages import Request, Response
from repro.httpsim.url import URL, parse_url
from repro.httpsim.useragent import browser_headers
from repro.netsim.errors import FetchError
from repro.proxynet.transport import fetch_with_redirects

_JSCHL_VC_RE = re.compile(r'name="jschl_vc"\s+value="([0-9a-f]+)"')
_JSCHL_ANSWER_RE = re.compile(r'name="jschl_answer"\s+value="([0-9]+)"')
_CAPTCHA_ID_RE = re.compile(r'name="id"\s+value="([0-9a-f]+)"')

_JS_CHALLENGE_MARKER = "Checking your browser before accessing"
_CAPTCHA_MARKER = "complete the security check"


@dataclass
class BrowserResult:
    """Outcome of an interactive visit."""

    response: Optional[Response]
    error: Optional[str] = None
    challenges_solved: int = 0
    solved_kinds: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when a final HTTP response was obtained."""
        return self.response is not None


class InteractiveBrowser:
    """A cookie-keeping, challenge-solving client bound to one vantage IP."""

    def __init__(self, world, client_ip: str, human: bool = False) -> None:
        self._world = world
        self._ip = client_ip
        self._human = human
        self.cookies = CookieJar()

    def visit(self, url: str, epoch: int = 0,
              max_challenges: int = 2) -> BrowserResult:
        """Load a URL the way a person would, solving challenges en route."""
        target = parse_url(url)
        solved = 0
        kinds: List[str] = []
        for _ in range(max_challenges + 1):
            response = self._get(target, epoch)
            if response is None:
                return BrowserResult(response=None, error="fetch-error",
                                     challenges_solved=solved,
                                     solved_kinds=kinds)
            kind = self._challenge_kind(response.body)
            if kind is None or solved >= max_challenges:
                return BrowserResult(response=response,
                                     challenges_solved=solved,
                                     solved_kinds=kinds)
            if kind == "captcha" and not self._human:
                # Automated browsers cannot pass a captcha.
                return BrowserResult(response=response,
                                     challenges_solved=solved,
                                     solved_kinds=kinds)
            if not self._solve(target, response.body, kind, epoch):
                return BrowserResult(response=response,
                                     challenges_solved=solved,
                                     solved_kinds=kinds)
            solved += 1
            kinds.append(kind)
        return BrowserResult(response=None, error="challenge-loop",
                             challenges_solved=solved, solved_kinds=kinds)

    # ------------------------------------------------------------------ #

    def _get(self, url: URL, epoch: int) -> Optional[Response]:
        headers = browser_headers()
        self.cookies.apply(url.host, headers)
        request = Request(url=url, headers=headers)
        try:
            result = fetch_with_redirects(self._world, request, self._ip,
                                          epoch=epoch)
        except FetchError:
            return None
        for response in result.all_responses:
            host = (response.url or url).host
            self.cookies.update_from_response(host, response.headers)
        return result.response

    @staticmethod
    def _challenge_kind(body: str) -> Optional[str]:
        if _JS_CHALLENGE_MARKER in body:
            return "js"
        if _CAPTCHA_MARKER in body:
            return "captcha"
        return None

    def _solve(self, url: URL, body: str, kind: str, epoch: int) -> bool:
        if kind == "js":
            vc = _JSCHL_VC_RE.search(body)
            answer = _JSCHL_ANSWER_RE.search(body)
            if not vc or not answer:
                return False
            query = f"jschl_vc={vc.group(1)}&jschl_answer={answer.group(1)}"
            solve_path = "/cdn-cgi/l/chk_jschl"
        else:
            captcha_id = _CAPTCHA_ID_RE.search(body)
            if not captcha_id:
                return False
            query = f"id={captcha_id.group(1)}&g-recaptcha-response=solved"
            solve_path = "/cdn-cgi/l/chk_captcha"
        solve_url = URL(scheme=url.scheme, host=url.host, port=url.port,
                        path=solve_path, query=query)
        response = self._get(solve_url, epoch)
        return (response is not None
                and self.cookies.get(url.host, "cf_clearance") is not None)
