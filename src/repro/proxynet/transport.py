"""Redirect-following transport over a simulated World.

Both the VPS crawlers and Lumscan follow redirect chains with a hard limit
of 10 hops (the paper counts longer chains as errors).  The chain of
intermediate responses is preserved so that CDN-identification probes can
look for provider headers *anywhere in the redirect chain* (§5.1.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.httpsim.messages import BodyPolicy, Request, Response
from repro.netsim.errors import TooManyRedirects

DEFAULT_MAX_REDIRECTS = 10


@dataclass
class FetchResult:
    """A completed fetch: the final response plus the redirect chain."""

    response: Response
    chain: List[Response] = field(default_factory=list)

    @property
    def all_responses(self) -> List[Response]:
        """Every response observed, redirects first, final last."""
        return self.chain + [self.response]


def fetch_with_redirects(world, request: Request, client_ip: str,
                         max_redirects: int = DEFAULT_MAX_REDIRECTS,
                         epoch: int = 0,
                         rng: Optional[random.Random] = None,
                         body_policy: Optional[BodyPolicy] = None) -> FetchResult:
    """Fetch a URL, following up to ``max_redirects`` redirects.

    Raises :class:`TooManyRedirects` when the chain exceeds the limit, or
    propagates any :class:`~repro.netsim.errors.FetchError` from the world.
    ``rng``, when given, scopes every random draw of the whole chain to the
    caller (see :meth:`repro.websim.world.World.fetch`).  ``body_policy``
    is forwarded to every hop; only a final large 200 can be elided, since
    redirects and block pages always materialize.
    """
    chain: List[Response] = []
    current = request
    for _ in range(max_redirects + 1):
        response = world.fetch(current, client_ip, epoch=epoch, rng=rng,
                               body_policy=body_policy)
        if not response.is_redirect:
            return FetchResult(response=response, chain=chain)
        chain.append(response)
        target = current.url.resolve(response.location or "/")
        current = current.with_url(target)
    raise TooManyRedirects(f"more than {max_redirects} redirects for {request.url}")
