"""The 16-country VPS fleet used for exploration and validation (§2.2–3.1).

VPS vantage points are datacenter machines: stable addresses, near-perfect
connectivity, no local interference — but their requests come from hosting
netblocks, and crawler-style header sets (curl, ZGrab) trip CDN bot
detection far more often than Lumscan's full browser profile does.

Each VPS's location is *verified* the way the paper did it: by fetching a
Cloudflare-fronted canary domain and reading the geolocation Cloudflare
derived for the client address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.httpsim.messages import Headers, Request, Response
from repro.httpsim.url import parse_url
from repro.httpsim.useragent import browser_headers, crawler_headers, CURL_UA
from repro.netsim.errors import FetchError
from repro.proxynet.transport import DEFAULT_MAX_REDIRECTS, FetchResult, fetch_with_redirects
from repro.util.rng import derive_rng


@dataclass
class VPSProbeResult:
    """One fetch from a VPS."""

    url: str
    country: str
    response: Optional[Response]
    chain: List[Response]
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when an HTTP response was obtained."""
        return self.response is not None

    @property
    def all_responses(self) -> List[Response]:
        """All responses in the chain, final last."""
        if self.response is None:
            return list(self.chain)
        return self.chain + [self.response]


class VPSClient:
    """A single VPS vantage point."""

    def __init__(self, world, country: str) -> None:
        self._world = world
        self.country = country
        self.ip = world.vps_address(country)
        self._fail_rng = derive_rng(world.config.seed, "vps-fail", country)

    def verify_location(self) -> str:
        """Return the country a CDN would geolocate this VPS to."""
        geo = self._world.geoip.lookup(self.ip)
        return geo.country if geo else "ZZ"

    def fetch(self, url: str, headers: Optional[Headers] = None,
              max_redirects: int = DEFAULT_MAX_REDIRECTS,
              epoch: int = 0) -> VPSProbeResult:
        """Fetch a URL from this VPS with the given header profile."""
        if self._fail_rng.random() < 0.002:
            return VPSProbeResult(url=url, country=self.country, response=None,
                                  chain=[], error="timeout")
        request = Request(url=parse_url(url),
                          headers=(headers.copy() if headers else crawler_headers()))
        try:
            result: FetchResult = fetch_with_redirects(
                self._world, request, self.ip,
                max_redirects=max_redirects, epoch=epoch)
        except FetchError as exc:
            return VPSProbeResult(url=url, country=self.country, response=None,
                                  chain=[], error=exc.kind)
        return VPSProbeResult(url=url, country=self.country,
                              response=result.response, chain=result.chain)

    def fetch_curl(self, url: str, **kwargs) -> VPSProbeResult:
        """Fetch with a bare curl profile (the earliest exploration)."""
        return self.fetch(url, headers=Headers([("User-Agent", CURL_UA)]), **kwargs)

    def fetch_zgrab(self, url: str, **kwargs) -> VPSProbeResult:
        """Fetch with the ZGrab profile: browser UA, no other headers."""
        return self.fetch(url, headers=crawler_headers(), **kwargs)

    def fetch_browser(self, url: str, **kwargs) -> VPSProbeResult:
        """Fetch with a full browser header set (manual-verification mode)."""
        return self.fetch(url, headers=browser_headers(), **kwargs)


class VPSFleet:
    """All 16 VPSes, keyed by country code."""

    def __init__(self, world) -> None:
        self._world = world
        self._clients: Dict[str, VPSClient] = {}
        for country in world.registry.vps_countries():
            self._clients[country.code] = VPSClient(world, country.code)

    def __len__(self) -> int:
        return len(self._clients)

    def countries(self) -> List[str]:
        """Country codes with a VPS, in fleet order."""
        return list(self._clients)

    def get(self, country: str) -> VPSClient:
        """The VPS in a country; raises KeyError when absent."""
        return self._clients[country]

    def clients(self) -> List[VPSClient]:
        """All VPS clients."""
        return list(self._clients.values())

    def verify_locations(self) -> Dict[str, str]:
        """Map of claimed country -> CDN-observed country for every VPS."""
        return {code: client.verify_location()
                for code, client in self._clients.items()}
