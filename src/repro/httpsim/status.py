"""HTTP status codes and reason phrases used by the synthetic web.

The study cares particularly about 403 *Forbidden* (RFC 7231 §6.5.3) and
451 *Unavailable For Legal Reasons* (RFC 7725), which the paper observed only
twice in the wild.
"""

from __future__ import annotations

STATUS_REASONS = {
    200: "OK",
    301: "Moved Permanently",
    302: "Found",
    307: "Temporary Redirect",
    308: "Permanent Redirect",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    429: "Too Many Requests",
    451: "Unavailable For Legal Reasons",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

REDIRECT_CODES = frozenset({301, 302, 307, 308})


def reason_phrase(code: int) -> str:
    """Return the reason phrase for a status code, or ``"Unknown"``."""
    return STATUS_REASONS.get(code, "Unknown")


def is_redirect(code: int) -> bool:
    """True when the status code indicates a redirect with a Location."""
    return code in REDIRECT_CODES
