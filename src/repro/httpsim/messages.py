"""Request/response message objects with case-insensitive headers.

``Headers`` is a case-insensitive, order-preserving multimap — the semantics
HTTP/1.1 requires and that the CDN-identification probes depend on (e.g.
finding ``CF-RAY`` regardless of the case an edge server emitted).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.httpsim.status import is_redirect, reason_phrase
from repro.httpsim.url import URL


class Headers:
    """A case-insensitive, insertion-ordered HTTP header multimap."""

    def __init__(self, items: Optional[Iterable[Tuple[str, str]]] = None) -> None:
        self._items: List[Tuple[str, str]] = []
        if items:
            for name, value in items:
                self.add(name, value)

    def add(self, name: str, value: str) -> None:
        """Append a header field, preserving existing fields of that name."""
        self._items.append((name, value))

    def set(self, name: str, value: str) -> None:
        """Replace all fields of ``name`` with a single field."""
        self.remove(name)
        self.add(name, value)

    def remove(self, name: str) -> None:
        """Delete every field whose name matches case-insensitively."""
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Return the first value for ``name`` (case-insensitive)."""
        lowered = name.lower()
        for n, v in self._items:
            if n.lower() == lowered:
                return v
        return default

    def get_all(self, name: str) -> List[str]:
        """Return every value for ``name`` in insertion order."""
        lowered = name.lower()
        return [v for n, v in self._items if n.lower() == lowered]

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        return self.get(name) is not None

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        return self._items == other._items

    def items(self) -> List[Tuple[str, str]]:
        """All (name, value) pairs in insertion order."""
        return list(self._items)

    def copy(self) -> "Headers":
        """A shallow copy of this header map."""
        return Headers(self._items)

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"


@dataclass
class Request:
    """An HTTP request as issued by a vantage point."""

    url: URL
    method: str = "GET"
    headers: Headers = field(default_factory=Headers)

    @property
    def host(self) -> str:
        """The target hostname."""
        return self.url.host

    def with_url(self, url: URL) -> "Request":
        """A copy of this request retargeted at ``url`` (same headers)."""
        return Request(url=url, method=self.method, headers=self.headers.copy())


@dataclass(frozen=True)
class BodyPolicy:
    """What a caller needs from response bodies.

    The scan pipeline discards the body of any 200 response longer than
    ``BODY_KEEP_THRESHOLD`` — only its length survives into the dataset.
    Declaring that up front (``lengths_over(threshold)``) lets the origin
    simulation skip materializing exactly those bodies and answer with
    ``Response.body_length`` instead.  Block pages, errors, and short pages
    are always materialized, so classification inputs are byte-identical
    either way.
    """

    #: 200-bodies strictly longer than this may be elided to a length.
    #: ``None`` means never elide (full materialization).
    length_threshold: Optional[int] = None

    @property
    def elides(self) -> bool:
        """True when this policy permits length-only synthesis."""
        return self.length_threshold is not None

    @classmethod
    def full(cls) -> "BodyPolicy":
        """Materialize every body (the default)."""
        return cls(length_threshold=None)

    @classmethod
    def lengths_over(cls, threshold: int) -> "BodyPolicy":
        """Elide 200-bodies longer than ``threshold`` to a bare length."""
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        return cls(length_threshold=threshold)


@dataclass
class Response:
    """An HTTP response as observed by a vantage point.

    ``body_length`` is set instead of ``body`` when the origin elided the
    body under a :class:`BodyPolicy`; ``content_length`` is the uniform
    accessor that works for both shapes.
    """

    status: int
    headers: Headers = field(default_factory=Headers)
    body: str = ""
    url: Optional[URL] = None
    body_length: Optional[int] = None

    @property
    def content_length(self) -> int:
        """The body length in characters, whether or not it was materialized."""
        if self.body_length is not None:
            return self.body_length
        return len(self.body)

    @property
    def reason(self) -> str:
        """The reason phrase for this response's status code."""
        return reason_phrase(self.status)

    @property
    def is_redirect(self) -> bool:
        """True when this response redirects and carries a Location."""
        return is_redirect(self.status) and "Location" in self.headers

    @property
    def location(self) -> Optional[str]:
        """The Location header value, if any."""
        return self.headers.get("Location")

    def __len__(self) -> int:
        return self.content_length
