"""A minimal cookie jar.

Challenge flows (Cloudflare captcha / JS challenge) are cookie-based: the
edge sets a clearance cookie after a solved challenge and honours it on
subsequent requests.  The jar implements just the semantics that flow
needs: host-scoped storage, ``Set-Cookie`` parsing (name=value, attributes
ignored), and ``Cookie`` header emission.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.httpsim.messages import Headers


class CookieJar:
    """Host-scoped cookie storage."""

    def __init__(self) -> None:
        self._cookies: Dict[str, Dict[str, str]] = {}

    @staticmethod
    def _host_key(host: str) -> str:
        return host[4:] if host.startswith("www.") else host.lower()

    def set_cookie(self, host: str, name: str, value: str) -> None:
        """Store one cookie for a host (www. is folded into the apex)."""
        self._cookies.setdefault(self._host_key(host), {})[name] = value

    def update_from_response(self, host: str, headers: Headers) -> int:
        """Ingest every Set-Cookie field of a response; returns how many."""
        count = 0
        for field in headers.get_all("Set-Cookie"):
            pair = field.split(";", 1)[0]
            name, sep, value = pair.partition("=")
            if not sep or not name.strip():
                continue
            self.set_cookie(host, name.strip(), value.strip())
            count += 1
        return count

    def get(self, host: str, name: str) -> Optional[str]:
        """One cookie value for a host, if present."""
        return self._cookies.get(self._host_key(host), {}).get(name)

    def cookie_header(self, host: str) -> Optional[str]:
        """The Cookie header value for a request to ``host`` (or None)."""
        cookies = self._cookies.get(self._host_key(host))
        if not cookies:
            return None
        return "; ".join(f"{name}={value}" for name, value in cookies.items())

    def apply(self, host: str, headers: Headers) -> None:
        """Attach the Cookie header for ``host`` to a header set."""
        value = self.cookie_header(host)
        if value is not None:
            headers.set("Cookie", value)

    def clear(self, host: Optional[str] = None) -> None:
        """Drop all cookies, or just one host's."""
        if host is None:
            self._cookies.clear()
        else:
            self._cookies.pop(self._host_key(host), None)
