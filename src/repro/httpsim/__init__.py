"""HTTP substrate: URLs, messages, headers, status codes, user agents.

This package models just enough of HTTP/1.1 semantics for the geoblocking
study: case-insensitive multi-valued headers, request/response objects,
status-code reason phrases (including 451 *Unavailable For Legal Reasons*),
URL parsing, and the browser/crawler ``User-Agent`` strings that matter for
bot detection.
"""

from repro.httpsim.messages import Headers, Request, Response
from repro.httpsim.status import STATUS_REASONS, reason_phrase
from repro.httpsim.url import URL, parse_url
from repro.httpsim.useragent import (
    CURL_UA,
    FIREFOX_MACOS_UA,
    ZGRAB_DEFAULT_UA,
    browser_headers,
    crawler_headers,
)

__all__ = [
    "Headers",
    "Request",
    "Response",
    "STATUS_REASONS",
    "reason_phrase",
    "URL",
    "parse_url",
    "CURL_UA",
    "FIREFOX_MACOS_UA",
    "ZGRAB_DEFAULT_UA",
    "browser_headers",
    "crawler_headers",
]
