"""User-Agent strings and header sets for the study's client profiles.

Section 3 of the paper found that setting only ``User-Agent`` (as ZGrab was
configured, mimicking Firefox on Mac OS X) is insufficient to suppress bot
detection — roughly 30% of Akamai 403s were false positives.  Lumscan
therefore sends a full browser header set.  We model three client profiles:

* ``browser_headers`` — a complete, realistic browser header set (Lumscan,
  or a human driving a real browser through a VPS proxy).
* ``crawler_headers`` — ZGrab-style: a browser User-Agent but nothing else,
  which trips heuristic bot detection.
* ``CURL_UA`` — bare curl, used in the earliest exploration (§3.1).
"""

from __future__ import annotations

from repro.httpsim.messages import Headers

FIREFOX_MACOS_UA = (
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10.13; rv:61.0) "
    "Gecko/20100101 Firefox/61.0"
)
ZGRAB_DEFAULT_UA = FIREFOX_MACOS_UA
CURL_UA = "curl/7.54.0"

_FULL_BROWSER_FIELDS = [
    ("Accept", "text/html,application/xhtml+xml,application/xml;q=0.9,*/*;q=0.8"),
    ("Accept-Language", "en-US,en;q=0.5"),
    ("Accept-Encoding", "gzip, deflate, br"),
    ("Connection", "keep-alive"),
    ("Upgrade-Insecure-Requests", "1"),
]


def browser_headers(user_agent: str = FIREFOX_MACOS_UA) -> Headers:
    """A full browser-equivalent header set that passes bot heuristics."""
    headers = Headers([("User-Agent", user_agent)])
    for name, value in _FULL_BROWSER_FIELDS:
        headers.add(name, value)
    return headers


def crawler_headers(user_agent: str = ZGRAB_DEFAULT_UA) -> Headers:
    """A ZGrab-style header set: User-Agent only, no Accept-* fields."""
    return Headers([("User-Agent", user_agent)])


def looks_like_browser(headers: Headers) -> bool:
    """Heuristic used by simulated CDN bot detection.

    A request "looks like a browser" when it carries a browser User-Agent
    *and* the Accept/Accept-Language fields real browsers always send.
    """
    ua = headers.get("User-Agent", "")
    if not ua or "curl" in ua.lower() or "zgrab" in ua.lower():
        return False
    return "Accept" in headers and "Accept-Language" in headers
