"""A small URL type and parser sufficient for the measurement pipeline.

We implement scheme/host/port/path/query handling for ``http`` and ``https``
URLs.  The parser is intentionally strict about the pieces the study relies
on (hostnames, registrable domains, default ports) and lenient elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

DEFAULT_PORTS = {"http": 80, "https": 443}


class URLError(ValueError):
    """Raised when a URL cannot be parsed."""


@dataclass(frozen=True)
class URL:
    """An absolute HTTP(S) URL."""

    scheme: str
    host: str
    port: int
    path: str = "/"
    query: str = ""

    def __str__(self) -> str:
        default = DEFAULT_PORTS[self.scheme]
        netloc = self.host if self.port == default else f"{self.host}:{self.port}"
        query = f"?{self.query}" if self.query else ""
        return f"{self.scheme}://{netloc}{self.path}{query}"

    @property
    def origin(self) -> str:
        """The scheme://host:port origin tuple, as a string."""
        return f"{self.scheme}://{self.host}:{self.port}"

    @property
    def registrable_domain(self) -> str:
        """The registrable domain (eTLD+1) under a simple public-suffix model.

        The synthetic web only uses single-label public suffixes plus the
        two-label country suffixes used by real Alexa domains in the paper's
        Table 5 (``co.za``, ``com.br``, ``co.uk``, ``com.au``, ``co.jp``,
        ``co.in``, ``com.sg``).
        """
        labels = self.host.split(".")
        if len(labels) < 2:
            return self.host
        two_label_suffixes = {
            "co.za", "com.br", "co.uk", "com.au", "co.jp", "co.in", "com.sg",
        }
        suffix2 = ".".join(labels[-2:])
        if suffix2 in two_label_suffixes and len(labels) >= 3:
            return ".".join(labels[-3:])
        return suffix2

    def resolve(self, location: str) -> "URL":
        """Resolve a ``Location`` header value against this URL.

        Handles absolute URLs, scheme-relative (``//host/path``), absolute
        paths and (rudimentarily) relative paths.
        """
        if "://" in location:
            return parse_url(location)
        if location.startswith("//"):
            return parse_url(f"{self.scheme}:{location}")
        if location.startswith("/"):
            path, _, query = location.partition("?")
            return replace(self, path=path, query=query)
        base = self.path.rsplit("/", 1)[0]
        path, _, query = f"{base}/{location}".partition("?")
        return replace(self, path=path, query=query)


def parse_url(text: str) -> URL:
    """Parse an absolute http(s) URL string into a :class:`URL`."""
    if "://" not in text:
        raise URLError(f"not an absolute URL: {text!r}")
    scheme, _, rest = text.partition("://")
    scheme = scheme.lower()
    if scheme not in DEFAULT_PORTS:
        raise URLError(f"unsupported scheme: {scheme!r}")
    netloc, slash, tail = rest.partition("/")
    if not netloc:
        raise URLError(f"missing host: {text!r}")
    if ":" in netloc:
        host, _, port_text = netloc.partition(":")
        try:
            port = int(port_text)
        except ValueError:
            raise URLError(f"bad port in {text!r}") from None
        if not 0 < port < 65536:
            raise URLError(f"port out of range in {text!r}")
    else:
        host, port = netloc, DEFAULT_PORTS[scheme]
    if not host:
        raise URLError(f"missing host: {text!r}")
    path_and_query = f"/{tail}" if slash else "/"
    path, _, query = path_and_query.partition("?")
    return URL(scheme=scheme, host=host.lower(), port=port, path=path, query=query)
