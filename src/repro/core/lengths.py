"""The page-length outlier heuristic (§4.1.2, evaluated in §4.1.5).

For each domain, the *representative length* is the longest page observed
across a set of reference countries (the paper uses the top-20 geoblocking
countries from the exploratory study to keep clustering tractable).  Any
sample whose body is more than ``cutoff`` (default 30%) shorter than the
representative is extracted as a candidate block page.

The paper notes that *percentage* differences work where raw byte
differences do not (raw cutoffs excessively penalize long pages); both are
implemented so the ablation benchmark can reproduce that comparison.

Both kernels are vectorized over the dataset's code columns: the
per-domain maximum is one ``np.maximum.at`` scatter, and outlier flagging
is a single boolean-mask expression that yields row indices —
:class:`Sample` objects are materialized only for the flagged rows.
Scalar reference implementations live in :mod:`repro.core.reference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.lumscan.records import Sample, ScanDataset

DEFAULT_CUTOFF = 0.30


def representative_lengths(dataset: ScanDataset,
                           reference_countries: Optional[Sequence[str]] = None
                           ) -> Dict[str, int]:
    """Longest observed response length per domain.

    When ``reference_countries`` is given, only samples from those
    countries contribute (the paper's top-20 trick); otherwise all
    countries do.  All HTTP responses count — a domain that only ever
    returns a block page has that page as its representative, which is
    why recall is imperfect (Table 2).
    """
    if len(dataset) == 0:
        return {}
    mask = dataset.ok_array()
    if reference_countries is not None:
        mask = mask & dataset.country_mask(reference_countries)
    codes = dataset.domain_code_array()[mask]
    if codes.size == 0:
        return {}
    names = dataset.domains()
    reps = np.full(len(names), -1, dtype=np.int64)
    np.maximum.at(reps, codes, dataset.length_array()[mask])
    return {names[code]: int(reps[code])
            for code in np.flatnonzero(reps >= 0).tolist()}


@dataclass(frozen=True)
class Outlier:
    """One candidate block page flagged by the heuristic."""

    index: int          # row index in the dataset
    sample: Sample
    representative: int
    relative_difference: float   # (rep - len) / rep, in [0, 1]


def _representative_rows(dataset: ScanDataset,
                         representatives: Mapping[str, int]) -> np.ndarray:
    """Per-row representative length (0 where unknown or non-positive)."""
    reps = np.zeros(len(dataset.domains()), dtype=np.int64)
    for domain, rep in representatives.items():
        code = dataset.domain_code(domain)
        if code is not None and rep > 0:
            reps[code] = rep
    return reps[dataset.domain_code_array()]


def extract_outliers(dataset: ScanDataset,
                     representatives: Mapping[str, int],
                     cutoff: float = DEFAULT_CUTOFF,
                     raw_cutoff: Optional[int] = None,
                     countries: Optional[Sequence[str]] = None
                     ) -> List[Outlier]:
    """Samples shorter than the representative by more than the cutoff.

    ``cutoff`` is the fractional threshold (0.30 = "30% shorter").  When
    ``raw_cutoff`` is given instead, an absolute byte difference is used
    (the ablation mode the paper found ineffective).  ``countries``
    optionally restricts extraction to samples from those countries (the
    pipeline's reference-country filter, applied inside the mask).
    """
    if not 0.0 < cutoff < 1.0:
        raise ValueError("cutoff must be in (0, 1)")
    if len(dataset) == 0:
        return []
    rep_rows = _representative_rows(dataset, representatives)
    valid = dataset.ok_array() & (rep_rows > 0)
    if countries is not None:
        valid &= dataset.country_mask(countries)
    difference = rep_rows - dataset.length_array()
    relative = np.zeros(len(dataset), dtype=np.float64)
    np.divide(difference, rep_rows, out=relative, where=rep_rows > 0)
    if raw_cutoff is not None:
        flagged = valid & (difference > raw_cutoff)
    else:
        flagged = valid & (relative > cutoff)
    return [Outlier(index=index, sample=dataset.row(index),
                    representative=int(rep_rows[index]),
                    relative_difference=float(relative[index]))
            for index in np.flatnonzero(flagged).tolist()]


def relative_differences(dataset: ScanDataset,
                         representatives: Mapping[str, int]
                         ) -> List[Tuple[float, bool]]:
    """(relative difference, has-body) for every valid sample — Figure 2.

    The boolean marks samples whose body was retained (block-page-sized),
    which the figure uses to split 'blocked' from ordinary samples once
    fingerprints have been applied by the caller.
    """
    if len(dataset) == 0:
        return []
    rep_rows = _representative_rows(dataset, representatives)
    valid = dataset.ok_array() & (rep_rows > 0)
    relative = np.zeros(len(dataset), dtype=np.float64)
    np.divide(rep_rows - dataset.length_array(), rep_rows,
              out=relative, where=rep_rows > 0)
    has_body = dataset.has_body_array()
    return [(float(relative[index]), bool(has_body[index]))
            for index in np.flatnonzero(valid).tolist()]
