"""The page-length outlier heuristic (§4.1.2, evaluated in §4.1.5).

For each domain, the *representative length* is the longest page observed
across a set of reference countries (the paper uses the top-20 geoblocking
countries from the exploratory study to keep clustering tractable).  Any
sample whose body is more than ``cutoff`` (default 30%) shorter than the
representative is extracted as a candidate block page.

The paper notes that *percentage* differences work where raw byte
differences do not (raw cutoffs excessively penalize long pages); both are
implemented so the ablation benchmark can reproduce that comparison.

Both kernels are vectorized over the dataset's code columns and execute
as **folds over column chunks** (:meth:`DatasetReader.iter_column_chunks`):
a flat :class:`~repro.lumscan.records.ScanDataset` is one chunk, a
manifest-backed :class:`~repro.lumscan.records.SegmentedScanDataset`
yields one chunk per segment with globally-remapped codes — the
per-domain maximum is a ``np.maximum.at`` scatter folded across chunks
(max is order-insensitive, so the fold is bit-identical to the flat
scatter), and outlier flagging is a per-chunk boolean-mask expression
that yields ascending global row indices — :class:`Sample` objects are
materialized only for the flagged rows.  Scalar reference
implementations live in :mod:`repro.core.reference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.lumscan.records import DatasetReader, NO_RESPONSE, Sample

DEFAULT_CUTOFF = 0.30


def _country_allowed(dataset: DatasetReader,
                     countries: Sequence[str]) -> np.ndarray:
    """Boolean allow-table over the dataset's global country codes."""
    allowed = np.zeros(len(dataset.countries()), dtype=bool)
    for country in countries:
        code = dataset.country_code(country)
        if code is not None:
            allowed[code] = True
    return allowed


def representative_lengths(dataset: DatasetReader,
                           reference_countries: Optional[Sequence[str]] = None
                           ) -> Dict[str, int]:
    """Longest observed response length per domain.

    When ``reference_countries`` is given, only samples from those
    countries contribute (the paper's top-20 trick); otherwise all
    countries do.  All HTTP responses count — a domain that only ever
    returns a block page has that page as its representative, which is
    why recall is imperfect (Table 2).
    """
    if len(dataset) == 0:
        return {}
    names = dataset.domains()
    reps = np.full(len(names), -1, dtype=np.int64)
    allowed = None if reference_countries is None else \
        _country_allowed(dataset, reference_countries)
    hit_any = False
    for chunk in dataset.iter_column_chunks():
        mask = chunk.statuses != NO_RESPONSE
        if allowed is not None:
            mask &= allowed[chunk.ccodes]
        codes = chunk.dcodes[mask]
        if codes.size == 0:
            continue
        hit_any = True
        np.maximum.at(reps, codes, chunk.lengths[mask])
    if not hit_any:
        return {}
    return {names[code]: int(reps[code])
            for code in np.flatnonzero(reps >= 0).tolist()}


@dataclass(frozen=True)
class Outlier:
    """One candidate block page flagged by the heuristic."""

    index: int          # row index in the dataset
    sample: Sample
    representative: int
    relative_difference: float   # (rep - len) / rep, in [0, 1]


def _representative_table(dataset: DatasetReader,
                          representatives: Mapping[str, int]) -> np.ndarray:
    """Representative length per global domain code (0 where unknown)."""
    reps = np.zeros(len(dataset.domains()), dtype=np.int64)
    for domain, rep in representatives.items():
        code = dataset.domain_code(domain)
        if code is not None and rep > 0:
            reps[code] = rep
    return reps


def extract_outliers(dataset: DatasetReader,
                     representatives: Mapping[str, int],
                     cutoff: float = DEFAULT_CUTOFF,
                     raw_cutoff: Optional[int] = None,
                     countries: Optional[Sequence[str]] = None
                     ) -> List[Outlier]:
    """Samples shorter than the representative by more than the cutoff.

    ``cutoff`` is the fractional threshold (0.30 = "30% shorter").  When
    ``raw_cutoff`` is given instead, an absolute byte difference is used
    (the ablation mode the paper found ineffective).  ``countries``
    optionally restricts extraction to samples from those countries (the
    pipeline's reference-country filter, applied inside the mask).
    Chunks are flagged in offset order, so the output is ascending by
    global row index regardless of physical segmentation.
    """
    if not 0.0 < cutoff < 1.0:
        raise ValueError("cutoff must be in (0, 1)")
    if len(dataset) == 0:
        return []
    rep_table = _representative_table(dataset, representatives)
    allowed = None if countries is None else \
        _country_allowed(dataset, countries)
    outliers: List[Outlier] = []
    for chunk in dataset.iter_column_chunks():
        rep_rows = rep_table[chunk.dcodes]
        valid = (chunk.statuses != NO_RESPONSE) & (rep_rows > 0)
        if allowed is not None:
            valid &= allowed[chunk.ccodes]
        difference = rep_rows - chunk.lengths
        relative = np.zeros(chunk.n, dtype=np.float64)
        np.divide(difference, rep_rows, out=relative, where=rep_rows > 0)
        if raw_cutoff is not None:
            flagged = valid & (difference > raw_cutoff)
        else:
            flagged = valid & (relative > cutoff)
        outliers.extend(
            Outlier(index=chunk.offset + local,
                    sample=dataset.row(chunk.offset + local),
                    representative=int(rep_rows[local]),
                    relative_difference=float(relative[local]))
            for local in np.flatnonzero(flagged).tolist())
    return outliers


def relative_differences(dataset: DatasetReader,
                         representatives: Mapping[str, int]
                         ) -> List[Tuple[float, bool]]:
    """(relative difference, has-body) for every valid sample — Figure 2.

    The boolean marks samples whose body was retained (block-page-sized),
    which the figure uses to split 'blocked' from ordinary samples once
    fingerprints have been applied by the caller.
    """
    if len(dataset) == 0:
        return []
    rep_table = _representative_table(dataset, representatives)
    has_body = dataset.has_body_array()
    results: List[Tuple[float, bool]] = []
    for chunk in dataset.iter_column_chunks():
        rep_rows = rep_table[chunk.dcodes]
        valid = (chunk.statuses != NO_RESPONSE) & (rep_rows > 0)
        relative = np.zeros(chunk.n, dtype=np.float64)
        np.divide(rep_rows - chunk.lengths, rep_rows,
                  out=relative, where=rep_rows > 0)
        results.extend(
            (float(relative[local]), bool(has_body[chunk.offset + local]))
            for local in np.flatnonzero(valid).tolist())
    return results
