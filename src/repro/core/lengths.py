"""The page-length outlier heuristic (§4.1.2, evaluated in §4.1.5).

For each domain, the *representative length* is the longest page observed
across a set of reference countries (the paper uses the top-20 geoblocking
countries from the exploratory study to keep clustering tractable).  Any
sample whose body is more than ``cutoff`` (default 30%) shorter than the
representative is extracted as a candidate block page.

The paper notes that *percentage* differences work where raw byte
differences do not (raw cutoffs excessively penalize long pages); both are
implemented so the ablation benchmark can reproduce that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lumscan.records import Sample, ScanDataset

DEFAULT_CUTOFF = 0.30


def representative_lengths(dataset: ScanDataset,
                           reference_countries: Optional[Sequence[str]] = None
                           ) -> Dict[str, int]:
    """Longest observed response length per domain.

    When ``reference_countries`` is given, only samples from those
    countries contribute (the paper's top-20 trick); otherwise all
    countries do.  All HTTP responses count — a domain that only ever
    returns a block page has that page as its representative, which is
    why recall is imperfect (Table 2).
    """
    allowed = set(reference_countries) if reference_countries is not None else None
    reps: Dict[str, int] = {}
    for sample in dataset:
        if not sample.ok:
            continue
        if allowed is not None and sample.country not in allowed:
            continue
        current = reps.get(sample.domain, -1)
        if sample.length > current:
            reps[sample.domain] = sample.length
    return reps


@dataclass(frozen=True)
class Outlier:
    """One candidate block page flagged by the heuristic."""

    index: int          # row index in the dataset
    sample: Sample
    representative: int
    relative_difference: float   # (rep - len) / rep, in [0, 1]


def extract_outliers(dataset: ScanDataset, representatives: Dict[str, int],
                     cutoff: float = DEFAULT_CUTOFF,
                     raw_cutoff: Optional[int] = None) -> List[Outlier]:
    """Samples shorter than the representative by more than the cutoff.

    ``cutoff`` is the fractional threshold (0.30 = "30% shorter").  When
    ``raw_cutoff`` is given instead, an absolute byte difference is used
    (the ablation mode the paper found ineffective).
    """
    if not 0.0 < cutoff < 1.0:
        raise ValueError("cutoff must be in (0, 1)")
    outliers: List[Outlier] = []
    for index in range(len(dataset)):
        sample = dataset.row(index)
        if not sample.ok:
            continue
        rep = representatives.get(sample.domain)
        if rep is None or rep <= 0:
            continue
        difference = rep - sample.length
        relative = difference / rep
        if raw_cutoff is not None:
            flagged = difference > raw_cutoff
        else:
            flagged = relative > cutoff
        if flagged:
            outliers.append(Outlier(index=index, sample=sample,
                                    representative=rep,
                                    relative_difference=relative))
    return outliers


def relative_differences(dataset: ScanDataset,
                         representatives: Dict[str, int]
                         ) -> List[Tuple[float, bool]]:
    """(relative difference, has-body) for every valid sample — Figure 2.

    The boolean marks samples whose body was retained (block-page-sized),
    which the figure uses to split 'blocked' from ordinary samples once
    fingerprints have been applied by the caller.
    """
    out: List[Tuple[float, bool]] = []
    for sample in dataset:
        if not sample.ok:
            continue
        rep = representatives.get(sample.domain)
        if rep is None or rep <= 0:
            continue
        out.append(((rep - sample.length) / rep, sample.body is not None))
    return out
