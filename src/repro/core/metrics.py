"""Metric evaluation: heuristic recall (§4.1.5) and ground-truth scoring.

Two kinds of evaluation live here:

* **Heuristic evaluation** mirrors the paper: once fingerprints exist, the
  length heuristic's recall can be measured per page type (Table 2), and
  the initial-sample-size false-negative tradeoff quantified (Figure 3).
* **Ground-truth evaluation** is something the paper could not do — the
  simulator knows the true policies, so the pipeline's end-to-end
  precision/recall are measurable exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.classify import classify_sample
from repro.core.fingerprints import FingerprintRegistry, PAGE_DISPLAY_NAMES
from repro.core.lengths import extract_outliers
from repro.core.resample import ConfirmedBlock
from repro.lumscan.records import DatasetReader
from repro.websim.world import World


@dataclass(frozen=True)
class RecallRow:
    """One row of Table 2."""

    page_type: str
    display_name: str
    recalled: int
    actual: int

    @property
    def recall(self) -> float:
        """recalled / actual (1.0 when nothing to recall)."""
        return self.recalled / self.actual if self.actual else 1.0


def recall_by_fingerprint(dataset: DatasetReader,
                          representatives: Mapping[str, int],
                          cutoff: float = 0.30,
                          raw_cutoff: Optional[int] = None,
                          registry: Optional[FingerprintRegistry] = None,
                          restrict_countries: Optional[Sequence[str]] = None
                          ) -> List[RecallRow]:
    """Table 2: per page type, how many fingerprinted samples the length
    heuristic would have flagged as outliers."""
    reg = registry or FingerprintRegistry.default()

    outlier_indices: Set[int] = {
        o.index for o in extract_outliers(dataset, dict(representatives),
                                          cutoff=cutoff, raw_cutoff=raw_cutoff)
    }
    # Candidate rows (HTTP response + retained body, optionally country
    # restricted) come from one mask expression; each distinct body text
    # hits the fingerprint matcher once.
    mask = dataset.ok_array() & dataset.has_body_array()
    if restrict_countries is not None:
        mask &= dataset.country_mask(restrict_countries)
    match_memo: Dict[str, Optional[str]] = {}
    recalled: Dict[str, int] = {}
    actual: Dict[str, int] = {}
    for index in np.flatnonzero(mask).tolist():
        body = dataset.body(index)
        if body in match_memo:
            page_type = match_memo[body]
        else:
            page_type = reg.match(body)
            match_memo[body] = page_type
        if page_type is None:
            continue
        actual[page_type] = actual.get(page_type, 0) + 1
        if index in outlier_indices:
            recalled[page_type] = recalled.get(page_type, 0) + 1

    rows = [
        RecallRow(page_type=pt,
                  display_name=PAGE_DISPLAY_NAMES.get(pt, pt),
                  recalled=recalled.get(pt, 0),
                  actual=actual[pt])
        for pt in sorted(actual, key=lambda p: p)
    ]
    return rows


def overall_recall(rows: Sequence[RecallRow]) -> float:
    """The Table 2 'Total' recall."""
    total_actual = sum(r.actual for r in rows)
    total_recalled = sum(r.recalled for r in rows)
    return total_recalled / total_actual if total_actual else 1.0


# --------------------------------------------------------------------- #
# Ground-truth scoring (evaluation only; uses world.policies)


@dataclass(frozen=True)
class GroundTruthScore:
    """Precision/recall of confirmed (domain, country) detections."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when nothing was reported."""
        reported = self.true_positives + self.false_positives
        return self.true_positives / reported if reported else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when nothing was blockable."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def score_confirmed_blocks(world: World, confirmed: Sequence[ConfirmedBlock],
                           tested_domains: Sequence[str],
                           tested_countries: Sequence[str],
                           epoch: int = 1,
                           explicit_only: bool = True) -> GroundTruthScore:
    """Score confirmed pairs against the world's true policies.

    The positive class is {(domain, country) : policy blocks country}
    restricted to tested domains/countries (and, with ``explicit_only``,
    to policies served with explicit block pages).
    """
    from repro.websim.blockpages import EXPLICIT_GEOBLOCK_TYPES

    tested_d = set(tested_domains)
    tested_c = set(tested_countries)
    truth: Set[Tuple[str, str]] = set()
    for name, policy in world.policies.items():
        if name not in tested_d or not policy.active(epoch):
            continue
        if explicit_only and policy.block_page not in EXPLICIT_GEOBLOCK_TYPES:
            continue
        for country in policy.blocked_countries:
            if country in tested_c:
                truth.add((name, country))

    reported = {(c.domain, c.country) for c in confirmed}
    tp = len(reported & truth)
    fp = len(reported - truth)
    fn = len(truth - reported)
    return GroundTruthScore(true_positives=tp, false_positives=fp,
                            false_negatives=fn)
