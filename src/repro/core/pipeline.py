"""End-to-end studies: §3.1 exploration, §4 Top-10K, §5 Top-1M.

Each study function drives only *measurement-visible* interfaces — DNS,
HTTP fetches through vantage points, the categorization service, and the
probe lists.  Ground truth (``world.policies``) is never consulted; the
evaluation helpers in :mod:`repro.core.metrics` do that separately.

The Top-10K and Top-1M studies are **staged pipelines** built on
:mod:`repro.run`: each phase is a named :class:`~repro.run.Stage` with
declared artifacts, so a run given a checkpoint directory persists every
phase's outputs and a resumed run (``resume=True``) skips completed
stages, loading their artifacts instead.  Resume is bit-identical to a
fresh run: probe outcomes are pure functions of task identity (the
:class:`~repro.lumscan.engine.ScanEngine` determinism contract), and the
checkpoint codecs round-trip every artifact exactly.

Stage graphs::

    top10k: safe-list -> country-ranking -> initial-scan -> outliers
            -> discovery -> candidate-resample -> confirm
    top1m:  customer-id -> sample -> scan -> explicit-confirm
            -> nonexplicit-confirm
"""

from __future__ import annotations

import hashlib
import json
import logging
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

logger = logging.getLogger("repro.pipeline")

from repro.core.classify import (
    VERDICT_AMBIGUOUS,
    VERDICT_CHALLENGE,
    VERDICT_EXPLICIT,
    classify_body,
    classify_sample,
    classify_samples,
)
from repro.core.consistency import DomainConsistency, domain_consistency
from repro.core.discovery import DiscoveredCluster, discover, registry_from_discovery
from repro.core.fingerprints import FingerprintRegistry
from repro.core.identify import CDNPopulation, identify_by_ns, identify_cdn_customers
from repro.core.lengths import Outlier, extract_outliers, representative_lengths
from repro.core.resample import (
    ConfirmedBlock,
    block_rates,
    confirm_blocks,
    find_candidate_pairs,
)
from repro.datasets.alexa import AlexaList
from repro.datasets.citizenlab import CitizenLabList
from repro.datasets.fortiguard import FortiGuardClient
from repro.lumscan.base import Scanner
from repro.lumscan.engine import ScanEngine
from repro.lumscan.records import DatasetReader, ScanDataset
from repro.lumscan.scanner import Lumscan, LumscanConfig
from repro.proxynet.luminati import LuminatiClient
from repro.proxynet.vps import VPSFleet
from repro.run import (
    KIND_DATASET,
    ArtifactSpec,
    ArtifactStore,
    RunContext,
    Stage,
    StageStats,
    StudyRunner,
)
from repro.run.codecs import encode_artifact
from repro.util.rng import derive_rng
from repro.websim import blockpages
from repro.websim.world import World


@dataclass(frozen=True)
class StudyConfig:
    """Parameters of the measurement methodology (paper defaults)."""

    samples_initial: int = 3          # baseline samples per pair
    samples_confirm: int = 20         # confirmation samples per pair
    agreement_threshold: float = 0.80
    length_cutoff: float = 0.30
    top_k_countries: int = 20         # reference countries for lengths
    ranking_domains: int = 250        # domains used to rank countries
    ranking_samples: int = 2
    cluster_distance: float = 0.40
    min_cluster_size: int = 1
    sample_fraction_top1m: float = 0.85  # §5.1.2 sampling of safe customers
    seed: int = 0
    workers: int = 1                  # scan-engine pool width (1 = inline)
    executor: str = "thread"          # scan-engine pool shape (or "process")
    exchange: str = "auto"            # worker→parent result transport
    merge: str = "memory"             # process-merge sink ("spill" = on-disk)
    target_chunk_ms: int = 250        # chunk autotune target (0 = fixed)
    world_source: str = "auto"        # worker world: frozen pack or rebuild


def registry_salt(registry: Optional[FingerprintRegistry]) -> str:
    """Checkpoint-fingerprint salt for an inherited registry/catalog.

    Studies that accept a fingerprint registry as *input* (the Top-1M run
    inherits Top-10K's discovered registry; Top-10K can take a custom
    catalog) fold a digest of it into their stage fingerprints, so
    checkpoints are never reused across different registries.
    """
    if registry is None:
        return ""
    canonical = json.dumps(encode_artifact(registry), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _study_store(checkpoint_dir: Optional[str], study: str,
                 config: StudyConfig, world: World,
                 salt: str = "",
                 dataset_format: str = "lshd") -> Optional[ArtifactStore]:
    if checkpoint_dir is None:
        return None
    return ArtifactStore(checkpoint_dir, study, config, world.config,
                         salt=salt, dataset_format=dataset_format)


def _build_engine(scanner: Lumscan, cfg: StudyConfig,
                  store: Optional[ArtifactStore]) -> ScanEngine:
    """The study's scan engine, spilling shard files under its store.

    When the study checkpoints, file-mode shard segments live inside the
    checkpoint directory (one ``lshd-*`` session dir per scan, removed on
    exchange close) so large spills land on the same volume the operator
    provisioned for run state rather than in the system temp dir.
    """
    target = cfg.target_chunk_ms / 1000.0 if cfg.target_chunk_ms else None
    return ScanEngine(scanner, workers=cfg.workers, executor=cfg.executor,
                      exchange=cfg.exchange, merge=cfg.merge,
                      spill_dir=store.directory if store else None,
                      target_chunk_seconds=target,
                      world_source=cfg.world_source)


# ===================================================================== #
# §4 — Alexa Top 10K


@dataclass
class Top10KResult:
    """Everything the Top-10K study produced."""

    countries: List[str]
    safe_domains: List[str]
    initial: DatasetReader
    top_blocking_countries: List[str]
    representatives: Dict[str, int]
    outliers: List[Outlier]
    clusters: List[DiscoveredCluster]
    registry: FingerprintRegistry
    candidates: Dict[Tuple[str, str], str]
    resampled: DatasetReader
    confirmed: List[ConfirmedBlock]
    other_page_counts: Counter = field(default_factory=Counter)
    luminati_refused_domains: List[str] = field(default_factory=list)
    never_responding_domains: List[str] = field(default_factory=list)
    stage_stats: List[StageStats] = field(default_factory=list)

    @property
    def confirmed_domains(self) -> List[str]:
        """Unique domains confirmed geoblocking in >= 1 country."""
        return sorted({c.domain for c in self.confirmed})

    @property
    def confirmed_countries(self) -> List[str]:
        """Countries with >= 1 confirmed geoblocked domain."""
        return sorted({c.country for c in self.confirmed})

    @property
    def http_451_observations(self) -> int:
        """Samples with RFC 7725 status 451 (the paper saw exactly two)."""
        return self.initial.count_status(451)

    def instances_by_country(self) -> Counter:
        """Confirmed instances per country (Table 5 right / Table 6)."""
        return Counter(c.country for c in self.confirmed)

    def instances_by_provider(self) -> Counter:
        """Confirmed instances per provider."""
        return Counter(c.provider for c in self.confirmed)


def build_safe_list(world: World, domains: Sequence[str],
                    fortiguard: Optional[FortiGuardClient] = None,
                    citizenlab: Optional[CitizenLabList] = None) -> List[str]:
    """§3.3 safety filtering: drop risky categories and listed domains."""
    fg = fortiguard or FortiGuardClient(world.population, world.taxonomy,
                                        seed=world.config.seed)
    cl = citizenlab or CitizenLabList(world.population, world.taxonomy,
                                      seed=world.config.seed)
    return cl.filter_out(fg.filter_safe(domains))


def rank_countries_by_blocking(world: World, lumscan: Scanner,
                               countries: Sequence[str],
                               config: StudyConfig) -> List[str]:
    """Rank countries by observed Akamai/Cloudflare block pages.

    Stands in for the paper's exploratory ranking scan (§4.1.2): it probed
    the VPS study's Akamai/Cloudflare customer list from every country and
    ranked countries *by the number of Akamai and Cloudflare block pages
    seen* — those two page types were already known from the exploration.
    Challenge pages (captchas) and miscellaneous 403s do not count.
    """
    alexa = AlexaList(world.population)
    ns = identify_by_ns(world.dns, alexa.top10k())
    cdn_domains = sorted(ns["cloudflare"] | ns["akamai"])
    rng = derive_rng(config.seed, "country-ranking")
    if len(cdn_domains) > config.ranking_domains:
        cdn_domains = sorted(rng.sample(cdn_domains, config.ranking_domains))
    urls = [f"http://{d}/" for d in cdn_domains]
    data = lumscan.scan(urls, countries, samples=config.ranking_samples)
    known = FingerprintRegistry.default()
    counts: Counter = Counter()
    flagged = [s for s in data if s.status == 403 and s.body is not None]
    for sample, verdict in zip(flagged, classify_samples(flagged, known)):
        if (verdict.is_blockpage
                and verdict.provider in ("cloudflare", "akamai")):
            counts[sample.country] += 1
    ranked = [c for c, _ in counts.most_common()]
    # Countries with no block pages keep their original order at the tail.
    ranked.extend(c for c in countries if c not in counts)
    return ranked


# --------------------------------------------------------------------- #
# Top-10K stages


def _t10k_safe_list(ctx: RunContext) -> Dict[str, object]:
    """§3.3: the tested country set and the safety-filtered domain list."""
    luminati: LuminatiClient = ctx.extras["luminati"]
    alexa = AlexaList(ctx.world.population)
    safe_domains = build_safe_list(ctx.world, alexa.top10k())
    countries = list(luminati.countries())
    logger.info("top10k: %d safe domains, %d countries (%d workers)",
                len(safe_domains), len(countries), ctx.config.workers)
    return {"countries": countries, "safe_domains": safe_domains}


def _t10k_country_ranking(ctx: RunContext) -> Dict[str, object]:
    """§4.1.2: the exploratory ranking scan the paper ran earlier."""
    ranked = rank_countries_by_blocking(ctx.world, ctx.scanner,
                                        ctx.artifact("countries"), ctx.config)
    logger.info("top10k: country ranking done; top5=%s", ranked[:5])
    return {"top_blocking_countries": ranked}


def _t10k_initial_scan(ctx: RunContext) -> Dict[str, object]:
    """§4.1.1: the 3-samples-per-pair snapshot over every country."""
    cfg: StudyConfig = ctx.config
    urls = [f"http://{d}/" for d in ctx.artifact("safe_domains")]
    initial = ctx.scanner.scan(urls, ctx.artifact("countries"),
                               samples=cfg.samples_initial)
    logger.info("top10k: initial scan complete (%d samples)", len(initial))
    refused = sorted({s.domain for s in initial
                      if s.error == "luminati-refusal"})
    error_by_domain = initial.error_rate_by_domain()
    never = sorted(d for d, rate in error_by_domain.items() if rate >= 1.0)
    return {"initial": initial, "luminati_refused_domains": refused,
            "never_responding_domains": never}


def _t10k_outliers(ctx: RunContext) -> Dict[str, object]:
    """§4.1.2: length-outlier extraction among the top blocking countries.

    The reference-country restriction is folded into the vectorized mask
    instead of filtering materialized samples afterwards.
    """
    cfg: StudyConfig = ctx.config
    initial: DatasetReader = ctx.artifact("initial")
    reference = ctx.artifact("top_blocking_countries")[: cfg.top_k_countries]
    representatives = representative_lengths(initial, reference)
    outliers = extract_outliers(initial, representatives,
                                cutoff=cfg.length_cutoff,
                                countries=reference)
    return {"representatives": representatives, "outliers": outliers}


def _t10k_discovery(ctx: RunContext) -> Dict[str, object]:
    """§4.1.2–4.1.3: cluster candidate bodies and extract signatures."""
    cfg: StudyConfig = ctx.config
    initial: DatasetReader = ctx.artifact("initial")
    outliers: List[Outlier] = ctx.artifact("outliers")
    catalog: Optional[FingerprintRegistry] = ctx.extras.get("catalog")
    bodies = [o.sample.body for o in outliers if o.sample.body is not None]
    background = _background_bodies(initial)
    logger.info("top10k: %d outliers, %d candidate bodies to cluster",
                len(outliers), len(bodies))
    clusters = discover(bodies, background,
                        distance_threshold=cfg.cluster_distance,
                        min_cluster_size=cfg.min_cluster_size,
                        catalog=catalog)
    registry = registry_from_discovery(
        clusters, base=catalog or FingerprintRegistry.default())
    logger.info("top10k: %d clusters discovered", len(clusters))
    return {"clusters": clusters, "registry": registry}


def _t10k_candidate_resample(ctx: RunContext) -> Dict[str, object]:
    """§4.1.4: find explicit block-page pairs and resample them 20x."""
    cfg: StudyConfig = ctx.config
    candidates = find_candidate_pairs(ctx.artifact("initial"),
                                      ctx.artifact("registry"),
                                      explicit_only=True)
    logger.info("top10k: %d candidate pairs; resampling %dx",
                len(candidates), cfg.samples_confirm)
    resampled = ctx.scanner.resample(sorted(candidates), cfg.samples_confirm,
                                     epoch=1)
    return {"candidates": candidates, "resampled": resampled}


def _t10k_confirm(ctx: RunContext) -> Dict[str, object]:
    """§4.1.4: the ≥80%-agreement rule, plus the §4.2.2 'other pages'."""
    cfg: StudyConfig = ctx.config
    registry: FingerprintRegistry = ctx.artifact("registry")
    confirmed = confirm_blocks(ctx.artifact("initial"),
                               ctx.artifact("resampled"), registry,
                               threshold=cfg.agreement_threshold)
    logger.info("top10k: %d confirmed instances", len(confirmed))
    other_pages = _count_non_explicit_pages(ctx.artifact("initial"), registry)
    return {"confirmed": confirmed, "other_page_counts": other_pages}


def top10k_stages() -> List[Stage]:
    """The §4 study as an ordered stage graph."""
    return [
        Stage("safe-list", (ArtifactSpec("countries"),
                            ArtifactSpec("safe_domains")), _t10k_safe_list),
        Stage("country-ranking", (ArtifactSpec("top_blocking_countries"),),
              _t10k_country_ranking),
        Stage("initial-scan",
              (ArtifactSpec("initial", KIND_DATASET),
               ArtifactSpec("luminati_refused_domains"),
               ArtifactSpec("never_responding_domains")), _t10k_initial_scan),
        Stage("outliers", (ArtifactSpec("representatives"),
                           ArtifactSpec("outliers")), _t10k_outliers),
        Stage("discovery", (ArtifactSpec("clusters"),
                            ArtifactSpec("registry")), _t10k_discovery),
        Stage("candidate-resample",
              (ArtifactSpec("candidates"),
               ArtifactSpec("resampled", KIND_DATASET)),
              _t10k_candidate_resample),
        Stage("confirm", (ArtifactSpec("confirmed"),
                          ArtifactSpec("other_page_counts")), _t10k_confirm),
    ]


def run_top10k_study(world: World,
                     luminati: Optional[LuminatiClient] = None,
                     config: Optional[StudyConfig] = None,
                     lumscan_config: Optional[LumscanConfig] = None,
                     catalog: Optional[FingerprintRegistry] = None,
                     checkpoint_dir: Optional[str] = None,
                     resume: bool = False,
                     checkpoint_format: str = "lshd") -> Top10KResult:
    """The full §4 methodology over the synthetic Top 10K.

    With ``checkpoint_dir`` set, every stage's artifacts are persisted
    there; with ``resume=True`` as well, stages whose checkpoints are
    complete (same configs, same stage fingerprint) are skipped and their
    artifacts loaded — producing bit-identical results to a fresh run.
    ``checkpoint_format`` selects the dataset codec (loads always sniff,
    so resuming works across formats).
    """
    cfg = config or StudyConfig()
    lum = luminati or LuminatiClient(world)
    scanner = Lumscan(lum, config=lumscan_config, seed=cfg.seed)
    store = _study_store(checkpoint_dir, "top10k", cfg, world,
                         salt=registry_salt(catalog),
                         dataset_format=checkpoint_format)
    engine = _build_engine(scanner, cfg, store)
    runner = StudyRunner("top10k", top10k_stages(), store=store,
                         resume=resume)
    ctx = RunContext(world=world, config=cfg, scanner=engine,
                     extras={"luminati": lum, "catalog": catalog},
                     probe_counter=lambda: lum.request_count)
    runner.run(ctx)

    return Top10KResult(
        countries=ctx.artifact("countries"),
        safe_domains=ctx.artifact("safe_domains"),
        initial=ctx.artifact("initial"),
        top_blocking_countries=ctx.artifact("top_blocking_countries"),
        representatives=ctx.artifact("representatives"),
        outliers=ctx.artifact("outliers"),
        clusters=ctx.artifact("clusters"),
        registry=ctx.artifact("registry"),
        candidates=ctx.artifact("candidates"),
        resampled=ctx.artifact("resampled"),
        confirmed=ctx.artifact("confirmed"),
        other_page_counts=ctx.artifact("other_page_counts"),
        luminati_refused_domains=ctx.artifact("luminati_refused_domains"),
        never_responding_domains=ctx.artifact("never_responding_domains"),
        stage_stats=ctx.stats,
    )


def _background_bodies(dataset: DatasetReader, limit: int = 200) -> List[str]:
    """Ordinary-page bodies used as background for signature extraction.

    Candidate rows (200-status with a retained body) are selected with
    one mask expression; only the first ``limit`` bodies are fetched.
    """
    candidates = np.flatnonzero((dataset.status_array() == 200)
                                & dataset.has_body_array())
    return [dataset.body(index) for index in candidates[:limit].tolist()]


def _classified_body_rows(dataset: DatasetReader, registry: FingerprintRegistry):
    """(row index, verdict) for every row with a retained body.

    Failed / body-less rows classify to error/ok — no page type — so the
    candidate rows are one mask expression over the columns, and each
    distinct body text hits the fingerprint matcher once.
    """
    memo: Dict[str, object] = {}
    candidates = np.flatnonzero(dataset.ok_array() & dataset.has_body_array())
    for index in candidates.tolist():
        body = dataset.body(index)
        verdict = memo.get(body)
        if verdict is None:
            verdict = classify_body(body, registry)
            memo[body] = verdict
        yield index, verdict


def _count_non_explicit_pages(dataset: DatasetReader,
                              registry: FingerprintRegistry) -> Counter:
    """Counts of captchas/challenges/ambiguous pages (§4.2.2's 200,417)."""
    counts: Counter = Counter()
    for _, verdict in _classified_body_rows(dataset, registry):
        if verdict.kind in (VERDICT_CHALLENGE, VERDICT_AMBIGUOUS):
            counts[verdict.page_type] += 1
    return counts


# ===================================================================== #
# §5 — Alexa Top 1M


@dataclass
class Top1MResult:
    """Everything the Top-1M study produced."""

    population: CDNPopulation
    safe_customers: List[str]
    sampled_domains: List[str]
    countries: List[str]
    initial: DatasetReader
    resampled_explicit: DatasetReader
    confirmed: List[ConfirmedBlock]
    resampled_nonexplicit: DatasetReader
    consistency: Dict[str, DomainConsistency]
    nonexplicit_flagged: Dict[str, List[str]]  # provider -> flagged domains
    stage_stats: List[StageStats] = field(default_factory=list)

    @property
    def confirmed_domains(self) -> List[str]:
        """Unique explicit-geoblocking domains."""
        return sorted({c.domain for c in self.confirmed})

    def instances_by_country(self) -> Counter:
        """Confirmed explicit instances per country (Table 7)."""
        return Counter(c.country for c in self.confirmed)

    def provider_rates(self) -> Dict[str, Tuple[int, int]]:
        """Per provider: (geoblocking domains, sampled customers)."""
        blocked_by = {}
        for c in self.confirmed:
            blocked_by.setdefault(c.provider, set()).add(c.domain)
        sampled = set(self.sampled_domains)
        out: Dict[str, Tuple[int, int]] = {}
        for provider, customers in self.population.customers.items():
            tested = customers & sampled
            out[provider] = (len(blocked_by.get(provider, ())), len(tested))
        return out

    def confirmed_nonexplicit(self) -> Dict[str, List[str]]:
        """Provider -> confirmed non-explicit geoblocking domains."""
        out: Dict[str, List[str]] = {}
        for domain, record in sorted(self.consistency.items()):
            if record.is_confirmed_geoblocker:
                provider = {"akamai": "akamai", "incapsula": "incapsula"}.get(
                    record.page_type, record.page_type)
                out.setdefault(provider, []).append(domain)
        return out


_EXPLICIT_PROVIDERS = ("cloudflare", "cloudfront", "appengine")
_NONEXPLICIT_PROVIDERS = ("akamai", "incapsula")


# --------------------------------------------------------------------- #
# Top-1M stages


def _t1m_customer_id(ctx: RunContext) -> Dict[str, object]:
    """§5.1.1: identify the CDN customer population."""
    alexa = AlexaList(ctx.world.population)
    population = identify_cdn_customers(ctx.world, alexa.full())
    logger.info("top1m: %d CDN customers identified",
                len(population.all_domains()))
    return {"population": population}


def _t1m_sample(ctx: RunContext) -> Dict[str, object]:
    """§5.1.2: safety filter and sample the customer list."""
    cfg: StudyConfig = ctx.config
    luminati: LuminatiClient = ctx.extras["luminati"]
    alexa = AlexaList(ctx.world.population)
    population: CDNPopulation = ctx.artifact("population")
    customers = sorted(population.all_domains())
    safe_customers = build_safe_list(ctx.world, customers)
    sampled = alexa.sample(safe_customers, cfg.sample_fraction_top1m,
                           seed=cfg.seed)
    logger.info("top1m: %d safe customers, %d sampled",
                len(safe_customers), len(sampled))
    return {"safe_customers": safe_customers, "sampled_domains": sampled,
            "countries": list(luminati.countries())}


def _t1m_scan(ctx: RunContext) -> Dict[str, object]:
    """§5.1.2: the initial snapshot over the sampled customers."""
    cfg: StudyConfig = ctx.config
    urls = [f"http://{d}/" for d in ctx.artifact("sampled_domains")]
    initial = ctx.scanner.scan(urls, ctx.artifact("countries"),
                               samples=cfg.samples_initial)
    logger.info("top1m: initial scan complete (%d samples)", len(initial))
    return {"initial": initial}


def _t1m_explicit_confirm(ctx: RunContext) -> Dict[str, object]:
    """§5.2.1: resample and confirm explicit geoblockers."""
    cfg: StudyConfig = ctx.config
    registry: FingerprintRegistry = ctx.extras["registry"]
    initial: DatasetReader = ctx.artifact("initial")
    explicit_candidates = find_candidate_pairs(initial, registry,
                                               explicit_only=True)
    resampled_explicit = ctx.scanner.resample(sorted(explicit_candidates),
                                              cfg.samples_confirm, epoch=1)
    confirmed = confirm_blocks(initial, resampled_explicit, registry,
                               threshold=cfg.agreement_threshold)
    logger.info("top1m: %d explicit candidates confirmed=%d",
                len(explicit_candidates), len(confirmed))
    return {"resampled_explicit": resampled_explicit, "confirmed": confirmed}


def _t1m_nonexplicit_confirm(ctx: RunContext) -> Dict[str, object]:
    """§5.2.2: flag Akamai/Incapsula pages, resample everywhere, score.

    Any domain with a non-explicit block page anywhere is resampled 20x in
    *every* country, then the consistency criterion is applied.
    """
    cfg: StudyConfig = ctx.config
    registry: FingerprintRegistry = ctx.extras["registry"]
    initial: DatasetReader = ctx.artifact("initial")
    countries = ctx.artifact("countries")
    flagged: Dict[str, List[str]] = {p: [] for p in _NONEXPLICIT_PROVIDERS}
    flagged_domains: Set[str] = set()
    domain_names = initial.domains()
    domain_codes = initial.domain_code_array()
    for index, verdict in _classified_body_rows(initial, registry):
        if verdict.kind == VERDICT_AMBIGUOUS and verdict.provider in flagged:
            domain = domain_names[domain_codes[index]]
            if domain not in flagged_domains:
                flagged[verdict.provider].append(domain)
                flagged_domains.add(domain)
    nonexplicit_pairs = [(d, c) for d in sorted(flagged_domains)
                         for c in countries]
    logger.info("top1m: %d non-explicit flagged domains -> %d resample pairs",
                len(flagged_domains), len(nonexplicit_pairs))
    resampled_nonexplicit = ctx.scanner.resample(nonexplicit_pairs,
                                                 cfg.samples_confirm, epoch=1)
    consistency = domain_consistency(
        resampled_nonexplicit, registry,
        page_types=(blockpages.AKAMAI_BLOCK, blockpages.INCAPSULA_BLOCK))
    return {"nonexplicit_flagged": flagged,
            "resampled_nonexplicit": resampled_nonexplicit,
            "consistency": consistency}


def top1m_stages() -> List[Stage]:
    """The §5 study as an ordered stage graph."""
    return [
        Stage("customer-id", (ArtifactSpec("population"),), _t1m_customer_id),
        Stage("sample", (ArtifactSpec("safe_customers"),
                         ArtifactSpec("sampled_domains"),
                         ArtifactSpec("countries")), _t1m_sample),
        Stage("scan", (ArtifactSpec("initial", KIND_DATASET),), _t1m_scan),
        Stage("explicit-confirm",
              (ArtifactSpec("resampled_explicit", KIND_DATASET),
               ArtifactSpec("confirmed")), _t1m_explicit_confirm),
        Stage("nonexplicit-confirm",
              (ArtifactSpec("nonexplicit_flagged"),
               ArtifactSpec("resampled_nonexplicit", KIND_DATASET),
               ArtifactSpec("consistency")), _t1m_nonexplicit_confirm),
    ]


def run_top1m_study(world: World,
                    luminati: Optional[LuminatiClient] = None,
                    config: Optional[StudyConfig] = None,
                    registry: Optional[FingerprintRegistry] = None,
                    checkpoint_dir: Optional[str] = None,
                    resume: bool = False,
                    checkpoint_format: str = "lshd") -> Top1MResult:
    """The full §5 methodology over the synthetic Top 1M.

    Checkpointing works as in :func:`run_top10k_study`; the inherited
    ``registry`` is folded into the stage fingerprints, so checkpoints
    produced under a different registry are never reused.
    """
    cfg = config or StudyConfig()
    lum = luminati or LuminatiClient(world)
    scanner = Lumscan(lum, seed=cfg.seed)
    reg = registry or FingerprintRegistry.default()
    store = _study_store(checkpoint_dir, "top1m", cfg, world,
                         salt=registry_salt(reg),
                         dataset_format=checkpoint_format)
    engine = _build_engine(scanner, cfg, store)
    runner = StudyRunner("top1m", top1m_stages(), store=store, resume=resume)
    ctx = RunContext(world=world, config=cfg, scanner=engine,
                     extras={"luminati": lum, "registry": reg},
                     probe_counter=lambda: lum.request_count)
    runner.run(ctx)

    return Top1MResult(
        population=ctx.artifact("population"),
        safe_customers=ctx.artifact("safe_customers"),
        sampled_domains=ctx.artifact("sampled_domains"),
        countries=ctx.artifact("countries"),
        initial=ctx.artifact("initial"),
        resampled_explicit=ctx.artifact("resampled_explicit"),
        confirmed=ctx.artifact("confirmed"),
        resampled_nonexplicit=ctx.artifact("resampled_nonexplicit"),
        consistency=ctx.artifact("consistency"),
        nonexplicit_flagged=ctx.artifact("nonexplicit_flagged"),
        stage_stats=ctx.stats,
    )


# ===================================================================== #
# §3.1 — VPS exploration and validation


@dataclass
class VPSExplorationResult:
    """The §3.1 exploration numbers."""

    cloudflare_domains: List[str]
    akamai_domains: List[str]
    iran_403_count: int
    us_403_count: int
    iran_blockpage_count: int      # curl 403s that classify as block pages
    us_blockpage_count: int
    flagged_pairs: List[Tuple[str, str, str]]      # (domain, country, page)
    genuine_pairs: List[Tuple[str, str, str]]
    false_positive_pairs: List[Tuple[str, str, str]]

    @property
    def false_positive_rate(self) -> float:
        """Fraction of flagged pairs that manual verification rejected."""
        if not self.flagged_pairs:
            return 0.0
        return len(self.false_positive_pairs) / len(self.flagged_pairs)

    @property
    def genuine_domains(self) -> List[str]:
        """Unique domains with at least one genuine geoblock pair."""
        return sorted({d for d, _, _ in self.genuine_pairs})


def run_vps_exploration(world: World,
                        registry: Optional[FingerprintRegistry] = None,
                        max_domains: Optional[int] = None) -> VPSExplorationResult:
    """Reproduce the §3.1 exploration: curl counts, ZGrab scan, verification."""
    reg = registry or FingerprintRegistry.default()
    alexa = AlexaList(world.population)
    ns = identify_by_ns(world.dns, alexa.full())
    cf_domains = sorted(ns["cloudflare"])
    ak_domains = sorted(ns["akamai"])
    if max_domains is not None:
        cf_domains = cf_domains[:max_domains]
        ak_domains = ak_domains[:max_domains]
    all_domains = sorted(set(cf_domains) | set(ak_domains))

    fleet = VPSFleet(world)
    iran = fleet.get("IR") if "IR" in fleet.countries() else None
    us = fleet.get("US") if "US" in fleet.countries() else None

    iran_403 = 0
    us_403 = 0
    iran_blockpage = 0
    us_blockpage = 0
    for domain in all_domains:
        url = f"http://{domain}/"
        if iran is not None:
            result = iran.fetch_curl(url)
            if result.ok and result.response.status == 403:
                iran_403 += 1
                if classify_body(result.response.body, reg).is_blockpage:
                    iran_blockpage += 1
        if us is not None:
            result = us.fetch_curl(url)
            if result.ok and result.response.status == 403:
                us_403 += 1
                if classify_body(result.response.body, reg).is_blockpage:
                    us_blockpage += 1

    # ZGrab pass from every VPS, then browser-based manual verification.
    flagged: List[Tuple[str, str, str]] = []
    genuine: List[Tuple[str, str, str]] = []
    false_positives: List[Tuple[str, str, str]] = []
    for client in fleet.clients():
        for domain in all_domains:
            url = f"http://{domain}/"
            result = client.fetch_zgrab(url)
            if not result.ok:
                continue
            verdict = classify_body(result.response.body, reg)
            if verdict.provider not in ("cloudflare", "akamai"):
                continue
            if not verdict.is_blockpage:
                continue
            record = (domain, client.country, verdict.page_type)
            flagged.append(record)
            check = client.fetch_browser(url)
            still_blocked = (
                check.ok
                and classify_body(check.response.body, reg).is_blockpage
            )
            if still_blocked:
                genuine.append(record)
            else:
                false_positives.append(record)

    return VPSExplorationResult(
        cloudflare_domains=cf_domains,
        akamai_domains=ak_domains,
        iran_403_count=iran_403,
        us_403_count=us_403,
        iran_blockpage_count=iran_blockpage,
        us_blockpage_count=us_blockpage,
        flagged_pairs=flagged,
        genuine_pairs=genuine,
        false_positive_pairs=false_positives,
    )


# ===================================================================== #
# Observation pools for Figures 1 and 3


def build_observation_pools(world: World, scanner: Scanner,
                            pairs: Sequence[Tuple[str, str]],
                            registry: Optional[FingerprintRegistry] = None,
                            samples: int = 100,
                            epoch: int = 1) -> Dict[Tuple[str, str], List[bool]]:
    """Probe each pair ``samples`` times; True = explicit block page seen."""
    reg = registry or FingerprintRegistry.default()
    data = scanner.resample(list(pairs), samples, epoch=epoch)
    pools: Dict[Tuple[str, str], List[bool]] = {}
    memo: Dict[str, object] = {}
    for domain, country, samples_list in data.pairs():
        pool = pools.setdefault((domain, country), [])
        for verdict in classify_samples(samples_list, reg, cache=memo):
            pool.append(verdict.kind == VERDICT_EXPLICIT)
    return pools
