"""Scalar reference implementations of the columnar analytics kernels.

:class:`~repro.lumscan.records.ScanDataset` and :mod:`repro.core.lengths`
run their aggregation kernels as vectorized numpy expressions.  This
module retains the original row-at-a-time implementations — one pass of
Python-level :class:`Sample` materialization per kernel — as the ground
truth for the equivalence suite (``tests/test_columnar_equiv.py``) and
as the baseline for ``benchmarks/test_columnar.py``.

Every function here touches only the public row API (``row``,
``__iter__``), never the column arrays, so it exercises a genuinely
independent code path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.lengths import Outlier
from repro.lumscan.records import DatasetReader, NO_RESPONSE, Sample


def count_status(dataset: DatasetReader, status: int) -> int:
    """Scalar reference for :meth:`ScanDataset.count_status`."""
    return sum(1 for sample in dataset if sample.status == status)


def error_rate_by_domain(dataset: DatasetReader) -> Dict[str, float]:
    """Scalar reference for :meth:`ScanDataset.error_rate_by_domain`."""
    totals: Dict[str, int] = {}
    fails: Dict[str, int] = {}
    for sample in dataset:
        totals[sample.domain] = totals.get(sample.domain, 0) + 1
        if sample.status == NO_RESPONSE:
            fails[sample.domain] = fails.get(sample.domain, 0) + 1
    return {d: fails.get(d, 0) / totals[d] for d in totals}


def response_rate_by_country(dataset: DatasetReader) -> Dict[str, float]:
    """Scalar reference for :meth:`ScanDataset.response_rate_by_country`."""
    responded: Dict[str, set] = {}
    tested: Dict[str, set] = {}
    for sample in dataset:
        tested.setdefault(sample.country, set()).add(sample.domain)
        if sample.status != NO_RESPONSE:
            responded.setdefault(sample.country, set()).add(sample.domain)
    return {c: len(responded.get(c, ())) / len(doms)
            for c, doms in tested.items()}


def lengths_by_domain(dataset: DatasetReader) -> Dict[str, List[int]]:
    """Scalar reference for :meth:`ScanDataset.lengths_by_domain`."""
    out: Dict[str, List[int]] = {}
    for sample in dataset:
        if sample.status == 200:
            out.setdefault(sample.domain, []).append(sample.length)
    return out


def pairs(dataset: DatasetReader) -> Iterator[Tuple[str, str, List[Sample]]]:
    """Scalar reference for :meth:`ScanDataset.pairs` (equality runs)."""
    n = len(dataset)
    start = 0
    while start < n:
        end = start
        first = dataset.row(start)
        while end < n:
            candidate = dataset.row(end)
            if (candidate.domain != first.domain
                    or candidate.country != first.country):
                break
            end += 1
        yield first.domain, first.country, [dataset.row(i)
                                            for i in range(start, end)]
        start = end


def representative_lengths(dataset: DatasetReader,
                           reference_countries: Optional[Sequence[str]] = None
                           ) -> Dict[str, int]:
    """Scalar reference for :func:`repro.core.lengths.representative_lengths`."""
    allowed = set(reference_countries) if reference_countries is not None \
        else None
    reps: Dict[str, int] = {}
    for sample in dataset:
        if not sample.ok:
            continue
        if allowed is not None and sample.country not in allowed:
            continue
        current = reps.get(sample.domain, -1)
        if sample.length > current:
            reps[sample.domain] = sample.length
    return reps


def extract_outliers(dataset: DatasetReader,
                     representatives: Mapping[str, int],
                     cutoff: float = 0.30,
                     raw_cutoff: Optional[int] = None,
                     countries: Optional[Sequence[str]] = None
                     ) -> List[Outlier]:
    """Scalar reference for :func:`repro.core.lengths.extract_outliers`."""
    if not 0.0 < cutoff < 1.0:
        raise ValueError("cutoff must be in (0, 1)")
    allowed = set(countries) if countries is not None else None
    outliers: List[Outlier] = []
    for index in range(len(dataset)):
        sample = dataset.row(index)
        if not sample.ok:
            continue
        if allowed is not None and sample.country not in allowed:
            continue
        rep = representatives.get(sample.domain)
        if rep is None or rep <= 0:
            continue
        difference = rep - sample.length
        relative = difference / rep
        if raw_cutoff is not None:
            flagged = difference > raw_cutoff
        else:
            flagged = relative > cutoff
        if flagged:
            outliers.append(Outlier(index=index, sample=sample,
                                    representative=rep,
                                    relative_difference=relative))
    return outliers


def relative_differences(dataset: DatasetReader,
                         representatives: Mapping[str, int]
                         ) -> List[Tuple[float, bool]]:
    """Scalar reference for :func:`repro.core.lengths.relative_differences`."""
    out: List[Tuple[float, bool]] = []
    for sample in dataset:
        if not sample.ok:
            continue
        rep = representatives.get(sample.domain)
        if rep is None or rep <= 0:
            continue
        out.append(((rep - sample.length) / rep, sample.body is not None))
    return out
