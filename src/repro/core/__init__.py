"""The paper's primary contribution: the geoblocking detection pipeline.

Submodules follow the paper's methodology sections:

* :mod:`repro.core.fingerprints` — block-page signature matchers (§4.1.3)
* :mod:`repro.core.classify` — response → verdict classification
* :mod:`repro.core.lengths` — page-length outlier heuristic (§4.1.2)
* :mod:`repro.core.discovery` — cluster-and-label signature discovery
* :mod:`repro.core.resample` — 3/20-sample confirmation protocol (§4.1.4)
* :mod:`repro.core.consistency` — non-explicit geoblocker analysis (§5.2.2)
* :mod:`repro.core.identify` — CDN customer identification (§3.1, §5.1.1)
* :mod:`repro.core.pipeline` — end-to-end Top-10K / Top-1M studies
* :mod:`repro.core.metrics` — recall & false-negative evaluation (§4.1.5)
"""

from repro.core.appdiff import AppDiffResult, run_appdiff_study
from repro.core.classify import Verdict, classify_body, classify_sample
from repro.core.fingerprints import Fingerprint, FingerprintRegistry
from repro.core.timeouts import TimeoutStudyResult, run_timeout_study
from repro.core.pipeline import (
    Top10KResult,
    Top1MResult,
    VPSExplorationResult,
    run_top10k_study,
    run_top1m_study,
    run_vps_exploration,
)

__all__ = [
    "AppDiffResult",
    "run_appdiff_study",
    "TimeoutStudyResult",
    "run_timeout_study",
    "Verdict",
    "classify_body",
    "classify_sample",
    "Fingerprint",
    "FingerprintRegistry",
    "Top10KResult",
    "Top1MResult",
    "VPSExplorationResult",
    "run_top10k_study",
    "run_top1m_study",
    "run_vps_exploration",
]
