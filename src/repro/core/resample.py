"""The resampling confirmation protocol (§4.1.4) and its evaluation curves.

The pipeline samples every (country, domain) pair 3 times, then resamples
pairs that showed an explicit block page 20 more times, and finally keeps
pairs whose block page appeared in at least 80% of all 23 samples.  This
module implements that protocol and the sampling-statistics experiments
behind Figures 1, 3, and 4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.classify import (
    VERDICT_EXPLICIT,
    Verdict,
    classify_body,
    classify_samples,
)
from repro.core.fingerprints import FingerprintRegistry, PAGE_PROVIDER
from repro.lumscan.records import DatasetReader, NO_RESPONSE, Sample

DEFAULT_AGREEMENT_THRESHOLD = 0.80
CONFIRM_SAMPLES = 20


@dataclass(frozen=True)
class ConfirmedBlock:
    """A (domain, country) pair confirmed as geoblocked."""

    domain: str
    country: str
    page_type: str
    provider: str
    agreement: float       # fraction of all samples showing the block page
    total_samples: int


def _run_verdicts(dataset: DatasetReader, start: int, stop: int,
                  registry: FingerprintRegistry,
                  memo: Dict[str, Verdict]):
    """Verdicts with a page type within one run, straight off the columns.

    Failed probes classify to ``error`` and body-less rows to ``ok`` —
    both carry no page type, so the consumers below never see them.
    Bodies are classified once per distinct text via ``memo``; no
    :class:`Sample` objects are materialized.
    """
    statuses = dataset.status_array()
    for index in range(start, stop):
        if statuses[index] == NO_RESPONSE:
            continue
        body = dataset.body(index)
        if body is None:
            continue
        verdict = memo.get(body)
        if verdict is None:
            verdict = classify_body(body, registry)
            memo[body] = verdict
        if verdict.page_type is not None:
            yield verdict


def find_candidate_pairs(dataset: DatasetReader,
                         registry: Optional[FingerprintRegistry] = None,
                         explicit_only: bool = True
                         ) -> Dict[Tuple[str, str], str]:
    """Pairs with at least one (explicit) block page in the dataset.

    Returns {(domain, country): page_type}.  With ``explicit_only`` False,
    ambiguous block pages (Akamai, Incapsula, …) are included too — used
    by the Top-1M study's non-explicit track.
    """
    reg = registry or FingerprintRegistry.default()
    candidates: Dict[Tuple[str, str], str] = {}
    memo: Dict[str, Verdict] = {}
    for domain, country, start, stop in dataset.iter_runs():
        for verdict in _run_verdicts(dataset, start, stop, reg, memo):
            if explicit_only and verdict.kind != VERDICT_EXPLICIT:
                continue
            if verdict.is_blockpage or not explicit_only:
                candidates[(domain, country)] = verdict.page_type
                break
    return candidates


def block_rates(dataset: DatasetReader,
                registry: Optional[FingerprintRegistry] = None,
                explicit_only: bool = True
                ) -> Dict[Tuple[str, str], Tuple[int, int, Optional[str]]]:
    """Per pair: (block-page samples, total samples, dominant page type)."""
    reg = registry or FingerprintRegistry.default()
    rates: Dict[Tuple[str, str], Tuple[int, int, Optional[str]]] = {}
    memo: Dict[str, Verdict] = {}
    for domain, country, start, stop in dataset.iter_runs():
        hits = 0
        total = stop - start
        page_type: Optional[str] = None
        for verdict in _run_verdicts(dataset, start, stop, reg, memo):
            is_hit = (verdict.kind == VERDICT_EXPLICIT if explicit_only
                      else verdict.is_blockpage)
            if is_hit:
                hits += 1
                page_type = page_type or verdict.page_type
        key = (domain, country)
        if key in rates:
            h0, t0, p0 = rates[key]
            rates[key] = (h0 + hits, t0 + total, p0 or page_type)
        else:
            rates[key] = (hits, total, page_type)
    return rates


def confirm_blocks(initial: DatasetReader, resampled: DatasetReader,
                   registry: Optional[FingerprintRegistry] = None,
                   threshold: float = DEFAULT_AGREEMENT_THRESHOLD,
                   explicit_only: bool = True) -> List[ConfirmedBlock]:
    """Apply the ≥80%-agreement rule over initial + confirmation samples."""
    reg = registry or FingerprintRegistry.default()
    initial_rates = block_rates(initial, reg, explicit_only)
    resample_rates = block_rates(resampled, reg, explicit_only)

    confirmed: List[ConfirmedBlock] = []
    for key, (re_hits, re_total, re_page) in resample_rates.items():
        in_hits, in_total, in_page = initial_rates.get(key, (0, 0, None))
        hits = in_hits + re_hits
        total = in_total + re_total
        page_type = re_page or in_page
        if total == 0 or page_type is None:
            continue
        agreement = hits / total
        if agreement >= threshold:
            domain, country = key
            confirmed.append(ConfirmedBlock(
                domain=domain,
                country=country,
                page_type=page_type,
                provider=PAGE_PROVIDER.get(page_type, "unknown"),
                agreement=agreement,
                total_samples=total,
            ))
    confirmed.sort(key=lambda c: (c.domain, c.country))
    return confirmed


# --------------------------------------------------------------------- #
# Sampling-statistics experiments (Figures 1, 3, 4)


def draw_block_rates(pool: Sequence[bool], sizes: Sequence[int],
                     draws: int = 500, seed: int = 0
                     ) -> Dict[int, List[float]]:
    """For each sample size, the block rate in ``draws`` random subsamples.

    ``pool`` is the per-sample block indicator for one (domain, country)
    pair's 100-sample pool.  Used for Figure 1.
    """
    rng = random.Random(seed)
    out: Dict[int, List[float]] = {}
    n = len(pool)
    for size in sizes:
        k = min(size, n)
        rates: List[float] = []
        for _ in range(draws):
            picked = rng.sample(range(n), k)
            rates.append(sum(1 for i in picked if pool[i]) / k)
        out[size] = rates
    return out


def consistency_cdf(pools: Mapping[Tuple[str, str], Sequence[bool]],
                    sizes: Sequence[int], draws: int = 500,
                    seed: int = 0) -> Dict[int, List[float]]:
    """Figure 1: pooled per-draw block rates across all pairs, per size."""
    combined: Dict[int, List[float]] = {size: [] for size in sizes}
    for idx, (key, pool) in enumerate(sorted(pools.items())):
        rates = draw_block_rates(pool, sizes, draws=draws, seed=seed + idx)
        for size in sizes:
            combined[size].extend(rates[size])
    return combined


def false_negative_curve(pools: Mapping[Tuple[str, str], Sequence[bool]],
                         sizes: Sequence[int], draws: int = 500,
                         seed: int = 0) -> Dict[int, float]:
    """Figure 3: fraction of draws with *zero* block pages, per size.

    For known-geoblocking pairs the block page should appear every time;
    a zero-hit draw reflects proxy noise, transient failures, and local
    filtering — the false-negative risk of a small initial sample size.
    """
    out: Dict[int, float] = {}
    for size in sizes:
        misses = 0
        total = 0
        rng = random.Random(seed + size)
        for key in sorted(pools):
            pool = pools[key]
            n = len(pool)
            k = min(size, n)
            for _ in range(draws):
                picked = rng.sample(range(n), k)
                total += 1
                if not any(pool[i] for i in picked):
                    misses += 1
        out[size] = (misses / total) if total else 0.0
    return out


def agreement_distribution(confirmed_rates: Mapping[Tuple[str, str], Tuple[int, int]]
                           ) -> List[float]:
    """Figure 4 input: per-pair block-page agreement fractions."""
    values = []
    for hits, total in confirmed_rates.values():
        if total > 0:
            values.append(hits / total)
    values.sort()
    return values
