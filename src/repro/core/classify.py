"""Classify probe responses into the paper's verdict taxonomy.

A sample is classified as one of:

* ``explicit-geoblock`` — a page that states the block is geographic
  (Cloudflare 1009, CloudFront country block, Baidu, AppEngine, Airbnb);
* ``challenge`` — captcha or JS challenge (friction, not denial);
* ``ambiguous-block`` — a block page also served for bot detection or
  other errors (Akamai, Incapsula, SOASTA, nginx, Varnish);
* ``censorship`` — a known nation-state injection page (e.g. the Iranian
  iframe page), which the study must *not* count as geoblocking;
* ``ok`` — an ordinary page; or
* ``error`` — no HTTP response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.fingerprints import FingerprintRegistry, PAGE_PROVIDER
from repro.lumscan.records import Sample
from repro.websim import blockpages

#: Markers of known nation-state censorship pages (not geoblocking).
_CENSOR_MARKERS = (
    "10.10.34.34",         # Iran's injected iframe target
    "peyvandha.ir",        # Iran's block page portal
)

VERDICT_EXPLICIT = "explicit-geoblock"
VERDICT_CHALLENGE = "challenge"
VERDICT_AMBIGUOUS = "ambiguous-block"
VERDICT_CENSORSHIP = "censorship"
VERDICT_OK = "ok"
VERDICT_ERROR = "error"


@dataclass(frozen=True)
class Verdict:
    """Classification outcome for one sample."""

    kind: str                        # one of the VERDICT_* constants
    page_type: Optional[str] = None  # fingerprint page type, when matched
    provider: Optional[str] = None   # provider attribution for the page

    @property
    def is_blockpage(self) -> bool:
        """True for explicit or ambiguous block pages."""
        return self.kind in (VERDICT_EXPLICIT, VERDICT_AMBIGUOUS)


#: Field-free verdicts are immutable — share one instance of each.
_OK_VERDICT = Verdict(kind=VERDICT_OK)
_ERROR_VERDICT = Verdict(kind=VERDICT_ERROR)
_CENSORSHIP_VERDICT = Verdict(kind=VERDICT_CENSORSHIP)


def classify_body(body: Optional[str],
                  registry: Optional[FingerprintRegistry] = None) -> Verdict:
    """Classify a response body (no status/error context).

    ``FingerprintRegistry.default()`` is a cached shared instance, so
    registry-less calls no longer rebuild the 14-signature registry.
    """
    if body is None:
        return _OK_VERDICT
    for marker in _CENSOR_MARKERS:
        if marker in body:
            return _CENSORSHIP_VERDICT
    reg = registry or FingerprintRegistry.default()
    page_type = reg.match(body)
    if page_type is None:
        return _OK_VERDICT
    provider = PAGE_PROVIDER.get(page_type)
    if page_type in blockpages.EXPLICIT_GEOBLOCK_TYPES:
        return Verdict(kind=VERDICT_EXPLICIT, page_type=page_type, provider=provider)
    if page_type in blockpages.CHALLENGE_TYPES:
        return Verdict(kind=VERDICT_CHALLENGE, page_type=page_type, provider=provider)
    return Verdict(kind=VERDICT_AMBIGUOUS, page_type=page_type, provider=provider)


def classify_sample(sample: Sample,
                    registry: Optional[FingerprintRegistry] = None) -> Verdict:
    """Classify a scan sample, folding in probe failures."""
    if not sample.ok:
        return _ERROR_VERDICT
    return classify_body(sample.body, registry)


def classify_samples(samples: Iterable[Sample],
                     registry: Optional[FingerprintRegistry] = None,
                     cache: Optional[Dict[str, Verdict]] = None
                     ) -> List[Verdict]:
    """Classify a batch of samples, memoizing by body text.

    Block pages, captchas, and stock error pages are template-generated,
    so scans see the same body text many times; fingerprint matching runs
    once per distinct body instead of once per sample.  Pass a ``cache``
    dict to share the memo across several batches (e.g. per-pair batches
    over one dataset).  Returns one verdict per sample, in order —
    element-wise identical to calling :func:`classify_sample` on each.
    """
    reg = registry or FingerprintRegistry.default()
    memo: Dict[str, Verdict] = cache if cache is not None else {}
    out: List[Verdict] = []
    for sample in samples:
        if not sample.ok:
            out.append(_ERROR_VERDICT)
            continue
        body = sample.body
        if body is None:
            out.append(_OK_VERDICT)
            continue
        verdict = memo.get(body)
        if verdict is None:
            verdict = classify_body(body, reg)
            memo[body] = verdict
        out.append(verdict)
    return out
