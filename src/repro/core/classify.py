"""Classify probe responses into the paper's verdict taxonomy.

A sample is classified as one of:

* ``explicit-geoblock`` — a page that states the block is geographic
  (Cloudflare 1009, CloudFront country block, Baidu, AppEngine, Airbnb);
* ``challenge`` — captcha or JS challenge (friction, not denial);
* ``ambiguous-block`` — a block page also served for bot detection or
  other errors (Akamai, Incapsula, SOASTA, nginx, Varnish);
* ``censorship`` — a known nation-state injection page (e.g. the Iranian
  iframe page), which the study must *not* count as geoblocking;
* ``ok`` — an ordinary page; or
* ``error`` — no HTTP response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.fingerprints import FingerprintRegistry, PAGE_PROVIDER
from repro.lumscan.records import Sample
from repro.websim import blockpages

#: Markers of known nation-state censorship pages (not geoblocking).
_CENSOR_MARKERS = (
    "10.10.34.34",         # Iran's injected iframe target
    "peyvandha.ir",        # Iran's block page portal
)

VERDICT_EXPLICIT = "explicit-geoblock"
VERDICT_CHALLENGE = "challenge"
VERDICT_AMBIGUOUS = "ambiguous-block"
VERDICT_CENSORSHIP = "censorship"
VERDICT_OK = "ok"
VERDICT_ERROR = "error"


@dataclass(frozen=True)
class Verdict:
    """Classification outcome for one sample."""

    kind: str                        # one of the VERDICT_* constants
    page_type: Optional[str] = None  # fingerprint page type, when matched
    provider: Optional[str] = None   # provider attribution for the page

    @property
    def is_blockpage(self) -> bool:
        """True for explicit or ambiguous block pages."""
        return self.kind in (VERDICT_EXPLICIT, VERDICT_AMBIGUOUS)


def classify_body(body: Optional[str],
                  registry: Optional[FingerprintRegistry] = None) -> Verdict:
    """Classify a response body (no status/error context)."""
    if body is None:
        return Verdict(kind=VERDICT_OK)
    for marker in _CENSOR_MARKERS:
        if marker in body:
            return Verdict(kind=VERDICT_CENSORSHIP)
    reg = registry or FingerprintRegistry.default()
    page_type = reg.match(body)
    if page_type is None:
        return Verdict(kind=VERDICT_OK)
    provider = PAGE_PROVIDER.get(page_type)
    if page_type in blockpages.EXPLICIT_GEOBLOCK_TYPES:
        return Verdict(kind=VERDICT_EXPLICIT, page_type=page_type, provider=provider)
    if page_type in blockpages.CHALLENGE_TYPES:
        return Verdict(kind=VERDICT_CHALLENGE, page_type=page_type, provider=provider)
    return Verdict(kind=VERDICT_AMBIGUOUS, page_type=page_type, provider=provider)


def classify_sample(sample: Sample,
                    registry: Optional[FingerprintRegistry] = None) -> Verdict:
    """Classify a scan sample, folding in probe failures."""
    if not sample.ok:
        return Verdict(kind=VERDICT_ERROR)
    return classify_body(sample.body, registry)
