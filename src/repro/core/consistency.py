"""Consistency analysis for non-explicit geoblockers (§5.2.2).

Akamai and Incapsula serve the *same* block page for geoblocking, bot
detection, and other errors, so an observed block page alone proves
nothing.  The paper's conservative criterion:

* For each domain with at least one block page, look at every country's
  block-page rate over the confirmation samples.
* A country is **consistent** when its rate is at least 80%.
* The domain's **consistency score** is the fraction of block-page-showing
  countries that are consistent.
* A domain counts as geoblocking only when its score is 100% *and* it does
  not show the block page in every country (a page shown everywhere is a
  site-wide error or crawler block, not geographic discrimination).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.classify import Verdict, classify_body
from repro.core.fingerprints import FingerprintRegistry
from repro.lumscan.records import DatasetReader, NO_RESPONSE

CONSISTENT_RATE = 0.80


@dataclass(frozen=True)
class DomainConsistency:
    """Consistency metrics for one domain."""

    domain: str
    page_type: str
    country_rates: Mapping[str, float]   # block-page rate per tested country
    countries_tested: int

    @property
    def blocking_countries(self) -> List[str]:
        """Countries where the block page appeared at least once."""
        return sorted(c for c, r in self.country_rates.items() if r > 0)

    @property
    def consistent_countries(self) -> List[str]:
        """Blocking countries with rate >= 80%."""
        return sorted(c for c, r in self.country_rates.items()
                      if r >= CONSISTENT_RATE)

    @property
    def score(self) -> float:
        """Fraction of blocking countries that are consistent (1.0 if none)."""
        blocking = self.blocking_countries
        if not blocking:
            return 1.0
        return len(self.consistent_countries) / len(blocking)

    @property
    def blocked_everywhere(self) -> bool:
        """True when every tested country saw the block page."""
        return (self.countries_tested > 0
                and all(r > 0 for r in self.country_rates.values()))

    @property
    def is_confirmed_geoblocker(self) -> bool:
        """The paper's conservative criterion (§5.2.2)."""
        return (bool(self.blocking_countries)
                and self.score == 1.0
                and not self.blocked_everywhere)


def domain_consistency(dataset: DatasetReader,
                       registry: Optional[FingerprintRegistry] = None,
                       page_types: Optional[Tuple[str, ...]] = None
                       ) -> Dict[str, DomainConsistency]:
    """Per-domain consistency over a confirmation dataset.

    ``page_types`` restricts which fingerprinted pages count as "the block
    page" (e.g. only Akamai's); by default any block page does.
    """
    reg = registry or FingerprintRegistry.default()
    hits: Dict[str, Dict[str, List[int]]] = {}
    pages: Dict[str, str] = {}
    memo: Dict[str, Verdict] = {}
    statuses = dataset.status_array()
    for domain, country, start, stop in dataset.iter_runs():
        counts = hits.setdefault(domain, {}).setdefault(country, [0, 0])
        counts[1] += stop - start
        for index in range(start, stop):
            # Failed probes classify to `error` and body-less rows to
            # `ok` — neither is a block page, so only retained bodies
            # need the fingerprint matcher (once per distinct text).
            if statuses[index] == NO_RESPONSE:
                continue
            body = dataset.body(index)
            if body is None:
                continue
            verdict = memo.get(body)
            if verdict is None:
                verdict = classify_body(body, reg)
                memo[body] = verdict
            if verdict.page_type is None or not verdict.is_blockpage:
                continue
            if page_types is not None and verdict.page_type not in page_types:
                continue
            counts[0] += 1
            pages.setdefault(domain, verdict.page_type)

    results: Dict[str, DomainConsistency] = {}
    for domain, countries in hits.items():
        if domain not in pages:
            continue
        rates = {country: (h / t if t else 0.0)
                 for country, (h, t) in countries.items()}
        results[domain] = DomainConsistency(
            domain=domain,
            page_type=pages[domain],
            country_rates=rates,
            countries_tested=len(rates),
        )
    return results


def confirmed_instances(consistencies: Mapping[str, DomainConsistency]
                        ) -> List[Tuple[str, str]]:
    """(domain, country) instances from confirmed non-explicit geoblockers."""
    instances: List[Tuple[str, str]] = []
    for domain, record in sorted(consistencies.items()):
        if record.is_confirmed_geoblocker:
            instances.extend((domain, country)
                             for country in record.consistent_countries)
    return instances
