"""Application-layer discrimination detection (§7.3 future work).

The paper closes by noting that *"prices are often different when a site
is viewed from different locations, or some features may be removed"* and
that automatically detecting such geographic differences in functionality
is vital future work.  This module implements a first detector:

* :func:`extract_features` parses a page into a comparable feature
  vector: login/registration affordances plus listed prices.
* :func:`run_appdiff_study` surveys domains from many countries, builds
  the modal (majority) feature vector per domain, and reports countries
  that deviate *consistently across samples* — feature-removal findings
  and price-discrimination findings with the observed multiplier.

Dynamic content is handled the way the blockpage pipeline handles noise:
a deviation must hold in every sample from a country to count.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.proxynet.luminati import LuminatiClient

_LOGIN_RE = re.compile(r'class="login"\s+href="/login"')
_REGISTER_RE = re.compile(r'class="register"\s+href="/register"')
_PRICE_RE = re.compile(r'class="price" data-amount="([0-9.]+)"')


@dataclass(frozen=True)
class PageFeatures:
    """Comparable feature vector of one page sample."""

    has_login: bool
    has_register: bool
    prices: Tuple[float, ...]

    @property
    def account_features(self) -> Tuple[bool, bool]:
        """(login, register) presence pair."""
        return (self.has_login, self.has_register)


def extract_features(body: str) -> PageFeatures:
    """Parse the feature vector out of a page body."""
    return PageFeatures(
        has_login=bool(_LOGIN_RE.search(body)),
        has_register=bool(_REGISTER_RE.search(body)),
        prices=tuple(float(m) for m in _PRICE_RE.findall(body)),
    )


@dataclass(frozen=True)
class AppDiffFinding:
    """One detected instance of application-layer discrimination."""

    domain: str
    country: str
    kind: str                      # "feature-removal" | "price"
    detail: str
    price_ratio: Optional[float] = None


@dataclass
class AppDiffResult:
    """Everything the application-layer survey produced."""

    findings: List[AppDiffFinding] = field(default_factory=list)
    surveyed_domains: int = 0
    surveyed_countries: int = 0

    def by_kind(self, kind: str) -> List[AppDiffFinding]:
        """Findings of one kind."""
        return [f for f in self.findings if f.kind == kind]

    def domains_with_findings(self) -> List[str]:
        """Unique domains flagged."""
        return sorted({f.domain for f in self.findings})


def is_genuine(degradation, finding: AppDiffFinding) -> bool:
    """Ground-truth grading of one finding (evaluation only).

    Price discrimination is detected as a *difference from the modal
    vector*, which has no inherent direction: when most surveyed countries
    pay the raised price, the baseline countries appear "discounted".
    Both sides of a genuine price split are genuine findings.
    """
    if degradation is None:
        return False
    if finding.kind == "feature-removal":
        return finding.country in degradation.remove_account_countries
    if finding.kind == "price":
        if not degradation.price_multipliers:
            return False
        if finding.country in degradation.price_multipliers:
            return (finding.price_ratio or 1.0) > 1.0
        # Complement side: baseline country relative to a raised modal.
        return (finding.price_ratio or 1.0) < 1.0
    return False


def _modal(values: Sequence) -> Optional[object]:
    counts: Dict[object, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    if not counts:
        return None
    return max(counts, key=lambda v: counts[v])


def run_appdiff_study(luminati: LuminatiClient, domains: Sequence[str],
                      countries: Sequence[str], samples: int = 2,
                      price_tolerance: float = 0.05) -> AppDiffResult:
    """Survey domains from many countries and report consistent deviations.

    A country is flagged for feature removal when *every* sample from it
    lacks an account feature the modal country has; for price
    discrimination when all its samples' price vectors differ from the
    modal vector by more than ``price_tolerance`` (ratio-wise) in the
    same direction.
    """
    result = AppDiffResult(surveyed_domains=len(domains),
                           surveyed_countries=len(countries))
    for domain in domains:
        per_country: Dict[str, List[PageFeatures]] = {}
        for country in countries:
            for _ in range(samples):
                probe = luminati.request(f"http://{domain}/", country)
                if (probe.ok and probe.response.status == 200
                        and probe.response.body and not probe.interfered):
                    per_country.setdefault(country, []).append(
                        extract_features(probe.response.body))
        if len(per_country) < 3:
            continue

        # Modal account-feature pair across countries.
        country_account = {
            country: _modal([f.account_features for f in features])
            for country, features in per_country.items()
        }
        modal_account = _modal(list(country_account.values()))
        if modal_account is not None and any(modal_account):
            for country, features in sorted(per_country.items()):
                if all(f.account_features != modal_account
                       and sum(f.account_features) < sum(modal_account)
                       for f in features):
                    missing = []
                    if modal_account[0] and not features[0].has_login:
                        missing.append("login")
                    if modal_account[1] and not features[0].has_register:
                        missing.append("register")
                    result.findings.append(AppDiffFinding(
                        domain=domain, country=country,
                        kind="feature-removal",
                        detail=f"missing: {', '.join(missing) or 'account'}"))

        # Modal price vector (only meaningful when prices exist).
        country_prices = {
            country: _modal([f.prices for f in features])
            for country, features in per_country.items()
            if all(f.prices for f in features)
        }
        modal_prices = _modal(list(country_prices.values()))
        if modal_prices:
            for country, features in sorted(per_country.items()):
                ratios = []
                consistent = True
                for f in features:
                    if len(f.prices) != len(modal_prices) or not f.prices:
                        consistent = False
                        break
                    rs = [p / m for p, m in zip(f.prices, modal_prices)
                          if m > 0]
                    if not rs or max(rs) - min(rs) > 0.01:
                        consistent = False
                        break
                    ratios.append(rs[0])
                if not consistent or not ratios:
                    continue
                mean_ratio = sum(ratios) / len(ratios)
                if abs(mean_ratio - 1.0) > price_tolerance:
                    result.findings.append(AppDiffFinding(
                        domain=domain, country=country, kind="price",
                        detail=f"prices x{mean_ratio:.2f} vs modal",
                        price_ratio=round(mean_ratio, 4)))
    return result
