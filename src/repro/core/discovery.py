"""Semi-automated block-page discovery (§4.1.2–4.1.3).

The paper's workflow: extract length outliers, cluster them with TF-IDF +
single-link clustering, examine the 119 clusters by hand, and extract a
signature for each blocking behaviour.  This module automates everything
but the final naming step:

* :func:`cluster_outliers` — cluster candidate bodies;
* :func:`extract_signature` — derive a robust marker set for a cluster:
  word n-grams present in *every* member and absent from the background
  corpus (ordinary pages), longest/most specific first;
* :func:`label_cluster` — the stand-in for the human analyst: match a
  cluster exemplar against the catalog of known provider pages, returning
  the page type or None for unrecognized clusters.

Running discovery over a scan therefore yields a fingerprint per observed
block-page family, and tests verify these recover the curated registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.fingerprints import Fingerprint, FingerprintRegistry
from repro.textutil.htmltext import extract_text_cached
from repro.textutil.linkage import ClusterResult, cluster_documents
from repro.textutil.ngrams import tokenize, word_ngrams

DEFAULT_DISTANCE_THRESHOLD = 0.4
_SIGNATURE_NGRAM_RANGE = (3, 6)
_MAX_MARKERS = 2


@dataclass
class DiscoveredCluster:
    """One cluster with its extracted signature and (optional) label."""

    label: int
    size: int
    exemplar: str                      # exemplar body (raw HTML)
    markers: Tuple[str, ...]           # extracted signature markers
    page_type: Optional[str] = None    # analyst-assigned page type

    @property
    def fingerprint(self) -> Optional[Fingerprint]:
        """A fingerprint for this cluster, when labelled and non-empty."""
        if self.page_type is None or not self.markers:
            return None
        return Fingerprint(page_type=self.page_type, markers=self.markers)


def cluster_outliers(bodies: Sequence[str],
                     distance_threshold: float = DEFAULT_DISTANCE_THRESHOLD,
                     method: str = "single") -> ClusterResult:
    """Cluster candidate block-page bodies (TF-IDF 1-/2-grams).

    Terms occurring in a single document are dropped (``min_df=2``):
    per-instance identifiers (Ray IDs, incident numbers) would otherwise
    dominate the TF-IDF mass of short block pages and shatter each
    template into singleton clusters.
    """
    return cluster_documents(bodies, distance_threshold=distance_threshold,
                             method=method, min_df=2)


def extract_signature(members: Sequence[str], background: Sequence[str],
                      max_markers: int = _MAX_MARKERS) -> Tuple[str, ...]:
    """Derive substring markers shared by all members, rare in background.

    Candidate markers are word n-grams (3–6 words) of the first member's
    visible text; a candidate survives when its text occurs in every
    member and in no background document.  The most specific (longest)
    survivors win.
    """
    if not members:
        return ()
    exemplar_text = extract_text_cached(members[0])
    tokens = tokenize(exemplar_text)
    candidates = word_ngrams(tokens, _SIGNATURE_NGRAM_RANGE)
    # Deduplicate, longest first so specific phrases are preferred.
    seen = set()
    ordered: List[str] = []
    for gram in sorted(candidates, key=lambda g: (-len(g), g)):
        if gram not in seen:
            seen.add(gram)
            ordered.append(gram)

    # The cached extractor makes the repeated background scan (the same
    # corpus is re-checked for every cluster) one extraction per body.
    member_texts = [extract_text_cached(m).lower() for m in members]
    background_texts = [extract_text_cached(b).lower() for b in background]
    markers: List[str] = []
    for gram in ordered:
        if not all(gram in text for text in member_texts):
            continue
        if any(gram in text for text in background_texts):
            continue
        if any(gram in chosen or chosen in gram for chosen in markers):
            continue
        markers.append(gram)
        if len(markers) >= max_markers:
            break
    return tuple(markers)


def label_cluster(exemplar: str,
                  catalog: Optional[FingerprintRegistry] = None) -> Optional[str]:
    """The manual-examination stand-in: recognize a known provider page.

    The paper's analysts looked at each cluster and recognized CDN pages
    by their branding.  We encode that provider knowledge as the curated
    fingerprint catalog; clusters whose exemplar matches none remain
    unlabeled (ordinary short pages, one-off errors).
    """
    registry = catalog or FingerprintRegistry.default()
    return registry.match(exemplar)


def discover(bodies: Sequence[str], background: Sequence[str],
             distance_threshold: float = DEFAULT_DISTANCE_THRESHOLD,
             min_cluster_size: int = 1,
             catalog: Optional[FingerprintRegistry] = None,
             method: str = "single") -> List[DiscoveredCluster]:
    """Full discovery: cluster, extract signatures, label.

    Returns one :class:`DiscoveredCluster` per cluster of at least
    ``min_cluster_size`` members, largest clusters first.
    """
    result = cluster_outliers(bodies, distance_threshold, method=method)
    discovered: List[DiscoveredCluster] = []
    for label in result.largest_first():
        members_idx = result.members(label)
        if len(members_idx) < min_cluster_size:
            continue
        members = [bodies[i] for i in members_idx]
        markers = extract_signature(members, background)
        page_type = label_cluster(members[0], catalog)
        discovered.append(DiscoveredCluster(
            label=label,
            size=len(members),
            exemplar=members[0],
            markers=markers,
            page_type=page_type,
        ))
    return discovered


def registry_from_discovery(clusters: Sequence[DiscoveredCluster],
                            base: Optional[FingerprintRegistry] = None
                            ) -> FingerprintRegistry:
    """Build a fingerprint registry from labelled discovered clusters.

    When several clusters share a page type, the first (largest) wins.
    Unlabelled clusters are skipped.  ``base`` fingerprints fill in page
    types discovery did not observe.
    """
    registry = base or FingerprintRegistry(fingerprints=())
    seen = set(registry.page_types())
    for cluster in clusters:
        fingerprint = cluster.fingerprint
        if fingerprint is None or fingerprint.page_type in seen:
            continue
        registry = registry.with_fingerprint(fingerprint)
        seen.add(fingerprint.page_type)
    return registry
