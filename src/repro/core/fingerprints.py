"""Block-page fingerprints: the signatures extracted in §4.1.3.

A :class:`Fingerprint` is a conjunction of substring markers that must all
appear in a page body.  Markers are chosen to be invariant across
per-instance noise (Ray IDs, incident numbers, hostnames) — exact-match
fingerprints would fail, which is the point of the signature-extraction
step in the paper.

The registry covers the 14 page types of Table 2 and knows which ones
*explicitly* signal geoblocking, which are challenges, and which are
ambiguous (also served for bot detection or other errors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.websim import blockpages

#: Attribution of each page type to the provider whose table column it
#: lands in (Tables 3, 6, 7).
PAGE_PROVIDER = {
    blockpages.AKAMAI_BLOCK: "akamai",
    blockpages.CLOUDFLARE_BLOCK: "cloudflare",
    blockpages.APPENGINE_BLOCK: "appengine",
    blockpages.CLOUDFLARE_CAPTCHA: "cloudflare",
    blockpages.CLOUDFLARE_JS: "cloudflare",
    blockpages.CLOUDFRONT_BLOCK: "cloudfront",
    blockpages.BAIDU_CAPTCHA: "baidu",
    blockpages.BAIDU_BLOCK: "baidu",
    blockpages.INCAPSULA_BLOCK: "incapsula",
    blockpages.SOASTA_BLOCK: "soasta",
    blockpages.AIRBNB_BLOCK: "brand",
    blockpages.DISTIL_CAPTCHA: "distil",
    blockpages.NGINX_403: "origin",
    blockpages.VARNISH_403: "origin",
}

#: Human-readable names matching the rows of Table 2.
PAGE_DISPLAY_NAMES = {
    blockpages.AKAMAI_BLOCK: "Akamai",
    blockpages.CLOUDFLARE_BLOCK: "Cloudflare",
    blockpages.APPENGINE_BLOCK: "AppEngine",
    blockpages.CLOUDFLARE_CAPTCHA: "Cloudflare Captcha",
    blockpages.CLOUDFLARE_JS: "Cloudflare JavaScript",
    blockpages.CLOUDFRONT_BLOCK: "Amazon CloudFront",
    blockpages.BAIDU_CAPTCHA: "Baidu Captcha",
    blockpages.BAIDU_BLOCK: "Baidu",
    blockpages.INCAPSULA_BLOCK: "Incapsula",
    blockpages.SOASTA_BLOCK: "Soasta",
    blockpages.AIRBNB_BLOCK: "Airbnb",
    blockpages.DISTIL_CAPTCHA: "Distil Captcha",
    blockpages.NGINX_403: "nginx",
    blockpages.VARNISH_403: "Varnish",
}


@dataclass(frozen=True)
class Fingerprint:
    """A conjunction-of-markers signature for one page type."""

    page_type: str
    markers: Tuple[str, ...]
    priority: int = 0        # lower checks first (more specific signatures)

    def matches(self, body: str) -> bool:
        """True when every marker appears in the body."""
        return all(marker in body for marker in self.markers)


_DEFAULT_FINGERPRINTS: Sequence[Fingerprint] = (
    # Specific templates first; generic stock pages last.
    Fingerprint(blockpages.AIRBNB_BLOCK,
                ("Crimea, Iran, Syria, and North Korea",), priority=0),
    Fingerprint(blockpages.CLOUDFRONT_BLOCK,
                ("The Amazon CloudFront distribution is configured to block "
                 "access from your country",), priority=0),
    Fingerprint(blockpages.APPENGINE_BLOCK,
                ("this service is not available in your country",
                 "Google App Engine"), priority=0),
    Fingerprint(blockpages.BAIDU_BLOCK,
                ("has banned the country or region", "Yunjiasu"), priority=1),
    Fingerprint(blockpages.CLOUDFLARE_BLOCK,
                ("has banned the country or region", "Cloudflare Ray ID"),
                priority=2),
    Fingerprint(blockpages.BAIDU_CAPTCHA,
                ("yjs-captcha",), priority=1),
    Fingerprint(blockpages.CLOUDFLARE_CAPTCHA,
                ("Attention Required!", "complete the security check"),
                priority=2),
    Fingerprint(blockpages.CLOUDFLARE_JS,
                ("Checking your browser before accessing",), priority=2),
    Fingerprint(blockpages.DISTIL_CAPTCHA,
                ("Pardon Our Interruption",), priority=2),
    Fingerprint(blockpages.INCAPSULA_BLOCK,
                ("Incapsula incident ID",), priority=3),
    Fingerprint(blockpages.SOASTA_BLOCK,
                ("SOASTA traffic manager",), priority=3),
    Fingerprint(blockpages.AKAMAI_BLOCK,
                ("Access Denied", "You don't have permission to access"),
                priority=4),
    Fingerprint(blockpages.VARNISH_403,
                ("Guru Meditation", "Varnish cache server"), priority=5),
    Fingerprint(blockpages.NGINX_403,
                ("<title>403 Forbidden</title>", "<center>nginx</center>"),
                priority=6),
)


class FingerprintRegistry:
    """An ordered collection of fingerprints with lookup helpers."""

    def __init__(self, fingerprints: Optional[Sequence[Fingerprint]] = None) -> None:
        fps = list(fingerprints if fingerprints is not None else _DEFAULT_FINGERPRINTS)
        fps.sort(key=lambda f: f.priority)
        self._fingerprints = fps
        self._by_type: Dict[str, Fingerprint] = {f.page_type: f for f in fps}
        # Match plan: per fingerprint, probe the cheapest (shortest) marker
        # first and fall through to the full conjunction only on a hit.
        # Most bodies miss most fingerprints, so the common case is one
        # short substring search instead of the whole marker set.
        self._compiled: List[Tuple[str, Tuple[str, ...], str]] = []
        for f in fps:
            ordered = sorted(f.markers, key=len)
            cheapest = ordered[0] if ordered else ""
            self._compiled.append((cheapest, tuple(ordered[1:]), f.page_type))

    @classmethod
    def default(cls) -> "FingerprintRegistry":
        """The curated 14-signature registry of §4.1.3 (shared instance).

        The registry is immutable after construction (``with_fingerprint``
        returns a new one), so every registry-less call site shares one
        cached instance instead of rebuilding 14 fingerprints per call.
        """
        global _DEFAULT_REGISTRY
        if cls is not FingerprintRegistry:
            return cls()
        if _DEFAULT_REGISTRY is None:
            _DEFAULT_REGISTRY = cls()
        return _DEFAULT_REGISTRY

    def __iter__(self) -> Iterator[Fingerprint]:
        return iter(self._fingerprints)

    def __len__(self) -> int:
        return len(self._fingerprints)

    def __contains__(self, page_type: object) -> bool:
        return page_type in self._by_type

    def get(self, page_type: str) -> Fingerprint:
        """Fingerprint for a page type; raises KeyError when unknown."""
        return self._by_type[page_type]

    def match(self, body: Optional[str]) -> Optional[str]:
        """Return the page type of the first matching fingerprint, if any."""
        if not body:
            return None
        for cheapest, rest, page_type in self._compiled:
            if cheapest in body and all(marker in body for marker in rest):
                return page_type
        return None

    def page_types(self) -> List[str]:
        """All registered page types in priority order."""
        return [f.page_type for f in self._fingerprints]

    def explicit_types(self) -> List[str]:
        """Registered page types that explicitly signal geoblocking."""
        return [t for t in self.page_types()
                if t in blockpages.EXPLICIT_GEOBLOCK_TYPES]

    def with_fingerprint(self, fingerprint: Fingerprint) -> "FingerprintRegistry":
        """A new registry with one fingerprint added/replaced."""
        fps = [f for f in self._fingerprints if f.page_type != fingerprint.page_type]
        fps.append(fingerprint)
        return FingerprintRegistry(fps)


#: Lazily-built shared instance behind :meth:`FingerprintRegistry.default`.
_DEFAULT_REGISTRY: Optional[FingerprintRegistry] = None
