"""Timeout-based geoblocking detection (the paper's §7.3 future work).

The paper observed *consistent timeouts for certain websites in only some
countries* and flagged investigating them as future work, noting the
difficulty: a persistent timeout can be geoblocking (a server silently
dropping foreign connections), nation-state censorship, or merely a flaky
residential path.

The detector here uses the same statistical machinery as the block-page
pipeline:

1. From the initial scan, find (domain, country) pairs where *every*
   sample failed while the same domain answered reliably in many other
   countries (so the domain is alive and crawlable).
2. Resample candidates heavily; a flaky-path pair with per-request
   failure ~0.9 still slips through 23 all-fail samples ~9% of the time,
   so confirmation demands a zero-success streak over a larger budget.
3. Report confirmed pairs with an honest caveat flag: countries known to
   practice network censorship cannot be distinguished on timeouts alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lumscan.records import DatasetReader, NO_RESPONSE
from repro.lumscan.base import Scanner

#: Countries whose censors are known to cause timeouts/resets; timeout
#: signals there are unattributable (the §7.3 caveat).
CENSORING_COUNTRIES = frozenset(
    {"CN", "IR", "SY", "RU", "TR", "PK", "SA", "AE", "VN", "EG", "ID", "KP"})


@dataclass(frozen=True)
class TimeoutCandidate:
    """A pair that timed out in every initial sample."""

    domain: str
    country: str
    failures: int
    countries_responsive: int   # other countries where the domain answered


@dataclass(frozen=True)
class ConfirmedTimeoutBlock:
    """A pair confirmed to time out persistently."""

    domain: str
    country: str
    total_samples: int
    ambiguous_censorship: bool  # country censors; attribution uncertain


def find_timeout_candidates(dataset: DatasetReader,
                            min_responsive_countries: int = 5
                            ) -> List[TimeoutCandidate]:
    """Pairs with 100% failures for domains alive elsewhere.

    A country only counts as *responsive* when a majority of its samples
    produced an HTTP response.  A single stray response is not life: a
    dead domain can "answer" through an interfering local firewall that
    serves its own 403 without ever reaching the site, and one such
    artifact must not qualify the domain as alive (it would then confirm
    as a bogus timeout block in all ~190 other countries).
    """
    responsive: Dict[str, Set[str]] = {}
    failures: Dict[Tuple[str, str], Tuple[int, int]] = {}
    for domain, country, samples in dataset.pairs():
        fail = sum(1 for s in samples if s.status == NO_RESPONSE)
        total = len(samples)
        key = (domain, country)
        f0, t0 = failures.get(key, (0, 0))
        failures[key] = (f0 + fail, t0 + total)

    for (domain, country), (fail, total) in failures.items():
        if total > 0 and fail <= total / 2:
            responsive.setdefault(domain, set()).add(country)

    candidates: List[TimeoutCandidate] = []
    for (domain, country), (fail, total) in sorted(failures.items()):
        if total == 0 or fail < total:
            continue
        alive_elsewhere = len(responsive.get(domain, set()) - {country})
        if alive_elsewhere >= min_responsive_countries:
            candidates.append(TimeoutCandidate(
                domain=domain, country=country, failures=fail,
                countries_responsive=alive_elsewhere))
    return candidates


def confirm_timeout_blocks(scanner: Scanner,
                           candidates: Sequence[TimeoutCandidate],
                           samples: int = 20, epoch: int = 1,
                           screen_samples: int = 10,
                           allowed_successes: int = 1,
                           censoring_countries: Optional[frozenset] = None
                           ) -> List[ConfirmedTimeoutBlock]:
    """Two-stage confirmation of persistent timeouts.

    The statistics are a balancing act the block-page pipeline never
    faced:

    * a *flaky residential path* still fails ~73% of probes after
      retries, so it survives an n-probe zero-success streak with
      probability 0.73^n — the screen (strict zero over
      ``screen_samples``) plus the confirmation pass push that below
      ~0.1%;
    * a *genuinely dropped* pair occasionally "succeeds" when a
      mislocated exit slips out of the blocked country (~1%/probe),
      so the confirmation pass tolerates ``allowed_successes`` strays
      rather than demanding perfection.
    """
    censors = (censoring_countries if censoring_countries is not None
               else CENSORING_COUNTRIES)
    by_key = {(c.domain, c.country): c for c in candidates}

    survivors: List[Tuple[str, str]] = []
    screen_failures: Dict[Tuple[str, str], int] = {}
    if screen_samples > 0:
        screened = scanner.resample(sorted(by_key), screen_samples,
                                    epoch=epoch)
        for domain, country, results in screened.pairs():
            if all(s.status == NO_RESPONSE for s in results):
                survivors.append((domain, country))
                screen_failures[(domain, country)] = len(results)
    else:
        survivors = sorted(by_key)

    resampled = scanner.resample(survivors, samples, epoch=epoch)
    confirmed: List[ConfirmedTimeoutBlock] = []
    for domain, country, results in resampled.pairs():
        successes = sum(1 for s in results if s.status != NO_RESPONSE)
        if successes > allowed_successes:
            continue
        key = (domain, country)
        original = by_key[key]
        total = (original.failures + screen_failures.get(key, 0)
                 + len(results))
        confirmed.append(ConfirmedTimeoutBlock(
            domain=domain, country=country,
            total_samples=total,
            ambiguous_censorship=country in censors))
    return confirmed


@dataclass
class TimeoutStudyResult:
    """Everything the timeout-geoblocking study produced."""

    candidates: List[TimeoutCandidate]
    confirmed: List[ConfirmedTimeoutBlock]

    @property
    def unambiguous(self) -> List[ConfirmedTimeoutBlock]:
        """Confirmed pairs outside known-censoring countries."""
        return [c for c in self.confirmed if not c.ambiguous_censorship]


def run_timeout_study(scanner: Scanner, dataset: DatasetReader,
                      min_responsive_countries: int = 5,
                      confirm_samples: int = 20,
                      screen_samples: int = 10,
                      epoch: int = 1) -> TimeoutStudyResult:
    """End-to-end timeout-geoblocking detection over an initial scan."""
    candidates = find_timeout_candidates(dataset, min_responsive_countries)
    confirmed = confirm_timeout_blocks(scanner, candidates,
                                       samples=confirm_samples,
                                       screen_samples=screen_samples,
                                       epoch=epoch)
    return TimeoutStudyResult(candidates=candidates, confirmed=confirmed)
