"""CDN customer identification (§3.1 and §5.1.1).

Four techniques, matching the paper:

* **Response headers** — Cloudflare appends ``CF-RAY``, CloudFront
  ``X-Amz-Cf-Id``, Incapsula ``X-Iinfo``; a domain is a customer when the
  header appears *anywhere in the redirect chain*.
* **Akamai Pragma probing** — sending ``Pragma: akamai-x-cache-on,
  akamai-x-get-cache-key`` makes Akamai edges insert cache debug headers
  (``X-Cache``, ``X-Cache-Key``) into the response.
* **AppEngine netblocks** — a recursive TXT walk from
  ``_cloud-netblocks.googleusercontent.com`` yields Google serving CIDRs;
  domains whose A record falls inside are AppEngine-hosted.
* **NS records** — domains delegated to ``*.ns.cloudflare.com`` /
  ``*.akam.net`` (exposes only the fraction of customers that also use the
  CDN's DNS, as the paper notes).
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.httpsim.messages import Headers, Request
from repro.httpsim.url import parse_url
from repro.httpsim.useragent import browser_headers
from repro.netsim.dns import DNSServer, expand_spf_netblocks
from repro.netsim.errors import FetchError
from repro.proxynet.transport import fetch_with_redirects
from repro.util.rng import derive_rng

AKAMAI_PRAGMA = "akamai-x-cache-on, akamai-x-get-cache-key, akamai-x-check-cacheable"

#: Identification header per provider (searched case-insensitively).
PROVIDER_HEADERS = {
    "cloudflare": "CF-RAY",
    "cloudfront": "X-Amz-Cf-Id",
    "incapsula": "X-Iinfo",
}

#: Akamai debug headers that the Pragma probe elicits.
AKAMAI_DEBUG_HEADERS = ("X-Cache-Key", "X-Check-Cacheable")

APPENGINE_NETBLOCK_ROOT = "_cloud-netblocks.googleusercontent.com"


@dataclass
class CDNPopulation:
    """Identified customers per provider over a tested domain list."""

    customers: Dict[str, Set[str]] = field(default_factory=dict)
    tested: int = 0

    def add(self, provider: str, domain: str) -> None:
        """Record a domain as a customer of ``provider``."""
        self.customers.setdefault(provider, set()).add(domain)

    def of(self, provider: str) -> Set[str]:
        """Customers identified for one provider."""
        return self.customers.get(provider, set())

    def all_domains(self) -> Set[str]:
        """Union of all identified customers."""
        out: Set[str] = set()
        for domains in self.customers.values():
            out |= domains
        return out

    def multi_service_domains(self) -> Set[str]:
        """Domains identified as customers of two or more providers."""
        counts: Dict[str, int] = {}
        for domains in self.customers.values():
            for domain in domains:
                counts[domain] = counts.get(domain, 0) + 1
        return {d for d, c in counts.items() if c >= 2}

    def providers_of(self, domain: str) -> List[str]:
        """All providers a domain was identified with."""
        return sorted(p for p, doms in self.customers.items() if domain in doms)


def identify_by_ns(dns: DNSServer, domains: Iterable[str]) -> Dict[str, Set[str]]:
    """NS-record identification for Cloudflare and Akamai (§3.1)."""
    found: Dict[str, Set[str]] = {"cloudflare": set(), "akamai": set()}
    for domain in domains:
        for ns in dns.try_query(domain, "NS"):
            lowered = ns.lower()
            if lowered.endswith(".ns.cloudflare.com"):
                found["cloudflare"].add(domain)
            elif lowered.endswith(".akam.net"):
                found["akamai"].add(domain)
    return found


def discover_appengine_netblocks(dns: DNSServer) -> List[str]:
    """Recursive TXT expansion of the Google serving netblocks."""
    return expand_spf_netblocks(dns, APPENGINE_NETBLOCK_ROOT)


def identify_cdn_customers(world, domains: Sequence[str],
                           control_ip: Optional[str] = None) -> CDNPopulation:
    """Full §5.1.1 identification over a domain list.

    Fetches each domain once (with the Akamai Pragma header attached) from
    a control vantage point, inspects every response in the redirect chain
    for provider headers, and checks A records against the discovered
    AppEngine netblocks.

    Every fetch draws from a per-domain derived RNG rather than the
    world's shared streams, so the outcome is a pure function of the
    world seed and the domain — checkpoint-resumed runs that skip this
    step leave the shared streams exactly as a fresh run would.
    """
    ip = control_ip or world.vps_address("US")
    netblocks = [ipaddress.IPv4Network(c)
                 for c in discover_appengine_netblocks(world.dns)]
    population = CDNPopulation(tested=len(domains))
    headers = browser_headers()
    headers.set("Pragma", AKAMAI_PRAGMA)

    for domain in domains:
        request = Request(url=parse_url(f"http://{domain}/"),
                          headers=headers.copy())
        rng = derive_rng(world.config.seed, "identify", domain)
        try:
            result = fetch_with_redirects(world, request, ip, rng=rng)
            responses = result.all_responses
        except FetchError:
            responses = []
        for response in responses:
            for provider, header in PROVIDER_HEADERS.items():
                if header in response.headers:
                    population.add(provider, domain)
            if any(h in response.headers for h in AKAMAI_DEBUG_HEADERS):
                population.add("akamai", domain)
        for address in world.dns.try_query(domain, "A"):
            try:
                parsed = ipaddress.IPv4Address(address)
            except ipaddress.AddressValueError:
                continue
            if any(parsed in block for block in netblocks):
                population.add("appengine", domain)
    return population
