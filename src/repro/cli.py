"""Command-line interface: run studies and emit the experiment report.

Examples::

    repro-geoblock run --scale tiny --out report.md
    repro-geoblock top10k --scale small
    repro-geoblock table 9
    repro-geoblock figure 5
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.analysis.experiments import ExperimentSuite
from repro.analysis.report import render_figure, render_table
from repro.core.pipeline import StudyConfig, run_top10k_study
from repro.util.clock import Clock, SystemClock
from repro.websim.world import World, WorldConfig

_SCALES = {
    "nano": WorldConfig.nano,
    "tiny": WorldConfig.tiny,
    "small": WorldConfig.small,
    "paper": WorldConfig.paper,
}


def _world(scale: str, seed: int) -> World:
    try:
        factory = _SCALES[scale]
    except KeyError:
        raise SystemExit(f"unknown scale {scale!r}; choose from {sorted(_SCALES)}")
    return World(factory(seed=seed))


def _cmd_run(args: argparse.Namespace) -> int:
    world = _world(args.scale, args.seed)
    config = StudyConfig(seed=args.seed, workers=max(1, args.workers),
                         executor=args.executor, exchange=args.exchange,
                         merge=args.merge,
                         target_chunk_ms=max(0, args.target_chunk_ms),
                         world_source=args.world_source)
    suite = ExperimentSuite(world, study_config=config,
                            checkpoint_dir=args.checkpoint_dir,
                            resume=args.resume,
                            checkpoint_format=args.checkpoint_format)
    stopwatch = args.clock.stopwatch()
    report = suite.run(include_top1m=not args.no_top1m,
                       include_vps=not args.no_vps,
                       include_ooni=not args.no_ooni)
    elapsed = stopwatch.elapsed()
    if args.save_json:
        from repro.analysis.store import save_report
        save_report(report, args.save_json)
        print(f"report JSON written to {args.save_json}")
    text = report.to_markdown() if args.markdown else report.to_text()
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.out} ({elapsed:.1f}s)")
    else:
        print(text)
        print(f"\n(completed in {elapsed:.1f}s)")
    from repro.analysis.summary import executive_summary
    print("\nExecutive summary:")
    print(executive_summary(report.findings))
    return 0


def _cmd_top10k(args: argparse.Namespace) -> int:
    world = _world(args.scale, args.seed)
    result = run_top10k_study(world)
    print(f"safe domains: {len(result.safe_domains)}")
    print(f"confirmed instances: {len(result.confirmed)}")
    print(f"unique geoblocking domains: {len(result.confirmed_domains)}")
    print("top countries:", result.instances_by_country().most_common(10))
    print("providers:", dict(result.instances_by_provider()))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    world = _world(args.scale, args.seed)
    suite = ExperimentSuite(world)
    number = args.number
    needs_top1m = number in (7, 8)
    report = suite.run(include_top1m=needs_top1m, include_vps=False,
                       include_ooni=False, include_pools=False)
    key = f"table{number}"
    if key not in report.tables:
        raise SystemExit(f"no such table: {number}")
    print(render_table(report.tables[key]))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.analysis.validation import render_validation, validate_findings

    world = _world(args.scale, args.seed)
    suite = ExperimentSuite(world)
    report = suite.run()
    results = validate_findings(report.findings)
    print(render_validation(results))
    return 0 if all(r.passed for r in results) else 1


def _cmd_appdiff(args: argparse.Namespace) -> int:
    from repro.core.appdiff import run_appdiff_study
    from repro.proxynet.luminati import LuminatiClient

    world = _world(args.scale, args.seed)
    commerce = [d.name for d in world.population
                if d.category in ("Shopping", "Travel", "Auctions",
                                  "Personal Vehicles")
                and not d.dead and not d.redirect_loop
                and d.name not in world.policies][: args.domains]
    countries = world.registry.luminati_codes()[: args.countries]
    result = run_appdiff_study(LuminatiClient(world), commerce, countries)
    print(f"surveyed {result.surveyed_domains} domains from "
          f"{result.surveyed_countries} countries")
    for finding in result.findings:
        print(f"  {finding.kind:16s} {finding.domain:26s} "
              f"{finding.country}  {finding.detail}")
    if not result.findings:
        print("  (no application-layer discrimination found)")
    return 0


def _cmd_timeouts(args: argparse.Namespace) -> int:
    from repro.core.timeouts import run_timeout_study
    from repro.lumscan.scanner import Lumscan
    from repro.proxynet.luminati import LuminatiClient

    world = _world(args.scale, args.seed)
    luminati = LuminatiClient(world)
    scanner = Lumscan(luminati, seed=args.seed)
    urls = [d.url for d in world.population.top(args.domains) if not d.dead]
    data = scanner.scan(urls, luminati.countries(), samples=3)
    study = run_timeout_study(scanner, data)
    print(f"candidates: {len(study.candidates)}  "
          f"confirmed: {len(study.confirmed)}  "
          f"unambiguous: {len(study.unambiguous)}")
    for block in study.confirmed:
        note = " (censoring country — unattributable)" \
            if block.ambiguous_censorship else ""
        print(f"  {block.domain:26s} {block.country}{note}")
    return 0


def _cmd_stability(args: argparse.Namespace) -> int:
    from repro.analysis.compare import compare_findings

    findings_by_seed = {}
    for seed in args.seeds:
        world = _world(args.scale, seed)
        suite = ExperimentSuite(world)
        report = suite.run(include_top1m=False, include_vps=False,
                           include_ooni=False, include_pools=False)
        findings_by_seed[seed] = report.findings
    stability = compare_findings(findings_by_seed)
    print(f"seeds: {stability.seeds}")
    print(f"stable checks ({len(stability.stable_checks())}):")
    for name in stability.stable_checks():
        print(f"  [STABLE]   {name}")
    for name in stability.unstable_checks():
        print(f"  [UNSTABLE] {name}")
    print(f"stability rate: {stability.stability_rate():.0%}")
    return 0 if stability.stability_rate() >= 0.8 else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    return lint_main(list(args.lint_args))


def _print_segment_header(path: str, header: dict) -> None:
    import os

    import numpy as np

    size = os.stat(path).st_size
    print(f"segment:     {path}")
    print(f"version:     {header.get('version')}")
    print(f"rows:        {header.get('n')}")
    print(f"file bytes:  {size}")
    fingerprint = header.get("fingerprint")
    print(f"fingerprint: {fingerprint if fingerprint else '(absent)'}")
    print("columns:")
    for name, dtype, offset, nbytes in header.get("columns", []):
        rows = nbytes // np.dtype(dtype).itemsize
        print(f"  {name:10s} {dtype:4s} offset={offset:<10d} "
              f"bytes={nbytes:<10d} rows={rows}")
    print("json sections:")
    for name, offset, nbytes in header.get("json", []):
        print(f"  {name:10s}      offset={offset:<10d} bytes={nbytes}")


def _cmd_store_inspect(args: argparse.Namespace) -> int:
    from repro.lumscan.serialize import sniff_format
    from repro.lumscan.shards import read_manifest, read_segment_header

    path = args.path
    try:
        fmt = sniff_format(path)
    except OSError as exc:
        raise SystemExit(f"{path}: {exc}")
    if fmt == "lshd":
        try:
            header = read_segment_header(path)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"{path}: {exc}")
        _print_segment_header(path, header)
        return 0
    if fmt == "lshm":
        try:
            manifest = read_manifest(path)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"{path}: {exc}")
        print(f"manifest:    {path}")
        print(f"rows:        {manifest.rows}")
        print(f"segments:    {len(manifest.entries)}")
        print(f"fingerprint: {manifest.fingerprint}")
        for index, entry in enumerate(manifest.entries):
            print(f"  [{index}] {entry.file}  rows={entry.rows}  "
                  f"fingerprint={entry.fingerprint}")
        return 0
    raise SystemExit(f"{path}: not an LSHD segment or LSHM manifest "
                     f"(looks like {fmt}; legacy JSONL checkpoints are "
                     f"loadable but carry no columnar header)")


def _cmd_store_append(args: argparse.Namespace) -> int:
    from repro.lumscan.serialize import load_dataset
    from repro.lumscan.shards import append_segment

    try:
        dataset = load_dataset(args.dataset)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"{args.dataset}: {exc}")
    try:
        manifest = append_segment(args.manifest, dataset.export_columns())
    finally:
        dataset.close()
    entry = manifest.entries[-1]
    print(f"appended {entry.rows} rows as {entry.file}")
    print(f"manifest:    {args.manifest}")
    print(f"rows:        {manifest.rows}")
    print(f"segments:    {len(manifest.entries)}")
    print(f"fingerprint: {manifest.fingerprint}")
    return 0


def _cmd_store_compact(args: argparse.Namespace) -> int:
    from repro.lumscan.shards import compact_manifest, read_manifest

    try:
        before = read_manifest(args.manifest)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"{args.manifest}: {exc}")
    manifest = compact_manifest(args.manifest)
    entry = manifest.entries[0]
    print(f"compacted {len(before.entries)} segments -> {entry.file}")
    print(f"rows:        {manifest.rows}")
    print(f"fingerprint: {manifest.fingerprint}")
    return 0


def _cmd_world_freeze(args: argparse.Namespace) -> int:
    from repro.websim.worldpack import write_worldpack_file

    world = _world(args.scale, args.seed)
    stopwatch = args.clock.stopwatch()
    handle = write_worldpack_file(world, args.path)
    elapsed = stopwatch.elapsed()
    print(f"worldpack:   {args.path}")
    print(f"scale:       {args.scale} ({len(world.population)} domains)")
    print(f"seed:        {args.seed}")
    print(f"file bytes:  {handle.nbytes}")
    print(f"fingerprint: {handle.fingerprint}")
    print(f"frozen in {elapsed:.1f}s")
    return 0


def _cmd_world_inspect(args: argparse.Namespace) -> int:
    import os

    from repro.websim.worldpack import read_worldpack_header

    path = args.path
    try:
        header = read_worldpack_header(path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"{path}: {exc}")
    print(f"worldpack:   {path}")
    print(f"version:     {header.get('version')}")
    print(f"domains:     {header.get('size')}")
    print(f"seed:        {header.get('seed')}")
    print(f"file bytes:  {os.stat(path).st_size}")
    print(f"fingerprint: {header.get('fingerprint')}")
    print("sections:")
    for section in header.get("sections", []):
        name = section["name"]
        if section.get("kind") == "array":
            print(f"  {name:18s} {section['dtype']:4s} "
                  f"offset={section['offset']:<10d} "
                  f"bytes={section['nbytes']:<10d} rows={section['count']}")
        else:
            print(f"  {name:18s} json offset={section['offset']:<10d} "
                  f"bytes={section['nbytes']}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    world = _world(args.scale, args.seed)
    suite = ExperimentSuite(world)
    number = args.number
    report = suite.run(include_top1m=False, include_vps=False,
                       include_ooni=False, include_pools=number in (1, 3))
    key = f"figure{number}"
    if key not in report.figures:
        raise SystemExit(f"no such figure: {number}")
    print(render_figure(report.figures[key]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-geoblock",
        description="Reproduce the IMC'18 CDN geoblocking study on a "
                    "synthetic Internet.",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument("--scale", default="tiny", choices=sorted(_SCALES),
                        help="world size preset")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the full experiment suite")
    run.add_argument("--out", help="write the report to a file")
    run.add_argument("--save-json", help="also save the report as JSON")
    run.add_argument("--markdown", action="store_true",
                     help="emit markdown instead of plain text")
    run.add_argument("--no-top1m", action="store_true")
    run.add_argument("--no-vps", action="store_true")
    run.add_argument("--no-ooni", action="store_true")
    run.add_argument("--checkpoint-dir", default=None,
                     help="persist per-stage study artifacts here")
    run.add_argument("--resume", action="store_true",
                     help="skip stages with complete checkpoints "
                          "(requires --checkpoint-dir)")
    run.add_argument("--workers", type=int, default=1,
                     help="scan-engine worker pool width; output is "
                          "identical for any count (default: 1)")
    run.add_argument("--executor", default="thread",
                     choices=("thread", "process"),
                     help="scan-engine pool shape; 'process' sidesteps the "
                          "GIL for the CPU-bound simulated probes "
                          "(default: thread)")
    run.add_argument("--exchange", default="auto",
                     choices=("auto", "shm", "file", "pickle"),
                     help="process-worker result transport: columnar shard "
                          "segments in shared memory or spill files, or the "
                          "legacy whole-dataset pickle; 'auto' prefers "
                          "shared memory (default: auto)")
    run.add_argument("--merge", default="memory",
                     choices=("memory", "spill"),
                     help="process-merge sink: accumulate worker shards in "
                          "RAM, or stream them to an on-disk LSHD segment "
                          "and mmap the result (default: memory)")
    run.add_argument("--target-chunk-ms", type=int, default=250,
                     help="autotune process chunks toward this wall-time "
                          "per chunk; 0 keeps a fixed chunk size "
                          "(default: 250)")
    run.add_argument("--world-source", default="auto",
                     choices=("auto", "pack", "rebuild"),
                     help="how process workers obtain the world: map the "
                          "parent's frozen worldpack zero-copy, or rebuild "
                          "from the spec; 'auto' freezes and falls back to "
                          "rebuild when freezing fails (default: auto)")
    run.add_argument("--checkpoint-format", default="lshd",
                     choices=("lshd", "lshm", "jsonl.gz", "jsonl"),
                     help="dataset codec for checkpoints; 'lshm' writes "
                          "manifest-backed multi-segment datasets; loads "
                          "sniff magic bytes so resume works across formats "
                          "(default: lshd)")
    run.set_defaults(func=_cmd_run)

    top10k = sub.add_parser("top10k", help="run only the Top-10K study")
    top10k.set_defaults(func=_cmd_top10k)

    table = sub.add_parser("table", help="print one reproduced table")
    table.add_argument("number", type=int, choices=range(1, 10))
    table.set_defaults(func=_cmd_table)

    figure = sub.add_parser("figure", help="print one reproduced figure")
    figure.add_argument("number", type=int, choices=range(1, 6))
    figure.set_defaults(func=_cmd_figure)

    validate = sub.add_parser(
        "validate", help="run the suite and check the paper's shape claims")
    validate.set_defaults(func=_cmd_validate)

    appdiff = sub.add_parser(
        "appdiff", help="survey commerce sites for feature/price differences")
    appdiff.add_argument("--domains", type=int, default=60)
    appdiff.add_argument("--countries", type=int, default=20)
    appdiff.set_defaults(func=_cmd_appdiff)

    timeouts = sub.add_parser(
        "timeouts", help="detect timeout-style geoblocking")
    timeouts.add_argument("--domains", type=int, default=400)
    timeouts.set_defaults(func=_cmd_timeouts)

    stability = sub.add_parser(
        "stability", help="check shape stability across world seeds")
    stability.add_argument("--seeds", type=int, nargs="+",
                           default=[7, 8, 9])
    stability.set_defaults(func=_cmd_stability)

    store = sub.add_parser(
        "store", help="inspect and maintain on-disk dataset artifacts")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    inspect = store_sub.add_parser(
        "inspect", help="print an LSHD segment's header or an LSHM "
                        "manifest's segment list without mapping column "
                        "buffers")
    inspect.add_argument("path", help="path to an .lshd segment or .lshm "
                                      "manifest file")
    inspect.set_defaults(func=_cmd_store_inspect)
    append = store_sub.add_parser(
        "append", help="append a dataset file to an .lshm manifest as one "
                       "new segment (creates the manifest if missing)")
    append.add_argument("manifest", help="path to the .lshm manifest")
    append.add_argument("dataset", help="dataset file to append (any "
                                        "supported format)")
    append.set_defaults(func=_cmd_store_append)
    compact = store_sub.add_parser(
        "compact", help="merge an .lshm manifest's segments into one, "
                        "byte-identical to a sequential rewrite")
    compact.add_argument("manifest", help="path to the .lshm manifest")
    compact.set_defaults(func=_cmd_store_compact)

    world = sub.add_parser(
        "world", help="freeze and inspect immutable world snapshots")
    world_sub = world.add_subparsers(dest="world_command", required=True)
    freeze = world_sub.add_parser(
        "freeze", help="build the world once and write it as an LSHW "
                       "worldpack file that workers can map zero-copy")
    freeze.add_argument("path", help="destination .lshw worldpack file")
    freeze.set_defaults(func=_cmd_world_freeze)
    winspect = world_sub.add_parser(
        "inspect", help="print an LSHW worldpack's header without mapping "
                        "its section buffers")
    winspect.add_argument("path", help="path to an .lshw worldpack file")
    winspect.set_defaults(func=_cmd_world_inspect)

    lint = sub.add_parser(
        "lint", help="run the determinism/concurrency-purity linter",
        add_help=False)
    lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                      help="arguments forwarded to python -m repro.lint")
    lint.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[list] = None, clock: Optional[Clock] = None) -> int:
    """CLI entry point.

    ``clock`` is the injectable time source for elapsed-time reporting;
    tests pass a frozen :class:`~repro.util.clock.ManualClock`.
    """
    raw = list(sys.argv[1:]) if argv is None else list(argv)
    if raw and raw[0] == "lint":
        # Forward everything verbatim: the lint CLI owns its own parser,
        # and argparse.REMAINDER will not capture leading option flags.
        from repro.lint.cli import main as lint_main
        return lint_main(raw[1:])
    parser = build_parser()
    args = parser.parse_args(raw)
    args.clock = clock if clock is not None else SystemClock()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
