"""Hierarchical clustering of candidate block pages.

The paper uses *single-link* hierarchical clustering on TF-IDF vectors,
chosen because it does not require knowing the number of clusters.
Single-link clustering cut at a distance threshold is exactly the set of
connected components of the graph whose edges join pairs closer than the
threshold, so the default implementation is a union-find over similarity
pairs — O(n²) in similarity computations but vectorized through scipy
sparse matrix products, with an exact-duplicate pre-collapse that makes
template-generated pages (the common case) nearly free.

For the linkage-ablation benchmark, scipy's agglomerative linkage
(complete / average) is also exposed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.cluster.hierarchy import fcluster, linkage as scipy_linkage
from scipy.spatial.distance import squareform

from repro.textutil.tfidf import TfidfVectorizer


class _UnionFind:
    """Classic weighted union-find with path halving."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def single_link_clusters(matrix: sparse.csr_matrix,
                         distance_threshold: float = 0.4,
                         block: int = 1024) -> List[int]:
    """Single-link clusters by cosine distance threshold.

    Returns a cluster label per row.  Rows with cosine distance below the
    threshold to any member of a cluster join that cluster.
    """
    n = matrix.shape[0]
    if n == 0:
        return []
    uf = _UnionFind(n)
    sim_threshold = 1.0 - distance_threshold
    for start in range(0, n, block):
        stop = min(start + block, n)
        sims = (matrix[start:stop] @ matrix.T).toarray()
        rows, cols = np.nonzero(sims >= sim_threshold)
        for r, c in zip(rows, cols):
            i = start + int(r)
            j = int(c)
            if j > i:
                uf.union(i, j)
    roots: Dict[int, int] = {}
    labels: List[int] = []
    for i in range(n):
        root = uf.find(i)
        if root not in roots:
            roots[root] = len(roots)
        labels.append(roots[root])
    return labels


def agglomerative_clusters(matrix: sparse.csr_matrix,
                           distance_threshold: float = 0.4,
                           method: str = "complete") -> List[int]:
    """Agglomerative clustering (scipy linkage) for the linkage ablation.

    Valid ``method`` values: "single", "complete", "average".  Requires a
    dense pairwise distance matrix, so use it on deduplicated inputs only.
    """
    n = matrix.shape[0]
    if n == 0:
        return []
    if n == 1:
        return [0]
    sims = (matrix @ matrix.T).toarray()
    np.fill_diagonal(sims, 1.0)
    distances = np.clip(1.0 - sims, 0.0, None)
    condensed = squareform(distances, checks=False)
    tree = scipy_linkage(condensed, method=method)
    labels = fcluster(tree, t=distance_threshold, criterion="distance")
    return [int(l) - 1 for l in labels]


@dataclass
class ClusterResult:
    """Clusters over a set of (possibly duplicated) documents."""

    labels: List[int]                       # cluster label per input document
    clusters: Dict[int, List[int]]          # label -> input document indices
    exemplars: Dict[int, int] = field(default_factory=dict)  # label -> doc idx

    @property
    def n_clusters(self) -> int:
        """Number of distinct clusters."""
        return len(self.clusters)

    def members(self, label: int) -> List[int]:
        """Document indices in a cluster."""
        return self.clusters[label]

    def largest_first(self) -> List[int]:
        """Cluster labels ordered by descending size."""
        return sorted(self.clusters, key=lambda l: -len(self.clusters[l]))


def cluster_documents(documents: Sequence[str],
                      distance_threshold: float = 0.4,
                      ngram_range: Tuple[int, int] = (1, 2),
                      method: str = "single",
                      min_df: int = 1) -> ClusterResult:
    """Cluster raw HTML documents end to end.

    Exact duplicates are collapsed before vectorization (template-generated
    block pages are near-identical), each unique document is vectorized
    with 1-/2-gram TF-IDF, then clustered.  ``method`` "single" uses the
    threshold/union-find algorithm; "complete"/"average" use scipy linkage.
    """
    unique: Dict[str, int] = {}
    doc_to_unique: List[int] = []
    unique_docs: List[str] = []
    for doc in documents:
        idx = unique.get(doc)
        if idx is None:
            idx = len(unique_docs)
            unique[doc] = idx
            unique_docs.append(doc)
        doc_to_unique.append(idx)

    if not unique_docs:
        return ClusterResult(labels=[], clusters={})

    vectorizer = TfidfVectorizer(ngram_range=ngram_range, min_df=min_df)
    matrix = vectorizer.fit_transform(unique_docs)
    if method == "single":
        unique_labels = single_link_clusters(matrix, distance_threshold)
    else:
        unique_labels = agglomerative_clusters(matrix, distance_threshold, method)

    labels = [unique_labels[u] for u in doc_to_unique]
    clusters: Dict[int, List[int]] = {}
    for i, label in enumerate(labels):
        clusters.setdefault(label, []).append(i)
    exemplars = {label: members[0] for label, members in clusters.items()}
    return ClusterResult(labels=labels, clusters=clusters, exemplars=exemplars)
