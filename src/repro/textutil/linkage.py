"""Hierarchical clustering of candidate block pages.

The paper uses *single-link* hierarchical clustering on TF-IDF vectors,
chosen because it does not require knowing the number of clusters.
Single-link clustering cut at a distance threshold is exactly the set of
connected components of the graph whose edges join pairs closer than the
threshold, so the implementation is a union-find over similarity pairs,
with an exact-duplicate pre-collapse that makes template-generated pages
(the common case) nearly free.

Block pages are extremely sparse in shared high-idf terms, so the
default join is *subquadratic in practice*: an inverted index over the
rare (high-idf) vocabulary proposes candidate pairs, and a residual
Cauchy–Schwarz bound over the remaining common terms catches the few
pairs that could clear the cosine threshold without sharing a rare term.
Only candidates are scored, with exactly the same cosine threshold as
the dense path, so labels are bit-identical; when the candidate set
degenerates toward O(n²) (dense corpora), the join falls back to the
blocked matmul automatically.

For the linkage-ablation benchmark, scipy's agglomerative linkage
(complete / average) is also exposed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.cluster.hierarchy import fcluster, linkage as scipy_linkage
from scipy.spatial.distance import squareform

from repro.textutil.tfidf import TfidfVectorizer


class _UnionFind:
    """Classic weighted union-find with path halving."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


#: Below this many documents the dense blocked matmul is cheapest.
_SPARSE_MIN_DOCS = 64

#: Inverted-index budget: candidate pairs generated per document.  Sized
#: so that realistic block-page families (tens of members, a few dozen
#: shared terms each) are indexed in full; only boilerplate terms shared
#: across most of the corpus spill into the residual-bound side.
_PAIR_BUDGET_PER_DOC = 512

#: Candidate-set density (fraction of n²) above which the sparse join
#: abandons the inverted index and falls back to the dense path.
_DENSE_FALLBACK_FRACTION = 0.25

#: Candidate pairs scored per chunk in the sparse join.
_SCORE_CHUNK = 1 << 16


def _candidate_pairs(matrix: sparse.csr_matrix, sim_threshold: float,
                     force: bool) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Exact candidate (i, j) pairs for ``cosine >= sim_threshold``.

    Vocabulary terms are split by document frequency: the rare (high-idf)
    tail feeds an inverted index — every pair sharing a rare term is a
    candidate — while the common head is covered by a residual bound.
    With ``r_i`` the L2 mass of document *i* restricted to common terms,
    a pair sharing no indexed term satisfies ``sim <= r_i * r_j``
    (Cauchy–Schwarz), so only documents with ``r_i * max(r) >= threshold``
    need pairwise checks among themselves.  Every pair at or above the
    threshold is therefore proposed by one of the two generators.

    Returns None when the candidate set would degenerate toward O(n²)
    (unless ``force``), signalling the caller to use the dense path.
    """
    n = matrix.shape[0]
    csc = matrix.tocsc()
    df = np.diff(csc.indptr).astype(np.int64)
    order = np.argsort(df, kind="stable")
    cumulative_cost = np.cumsum(df[order] ** 2)
    budget = _PAIR_BUDGET_PER_DOC * n + 1024
    split = int(np.searchsorted(cumulative_cost, budget, side="right"))
    indexed_cols = order[:split]
    common_cols = order[split:]

    if common_cols.size:
        common = csc[:, common_cols]
        residual = np.sqrt(np.asarray(
            common.multiply(common).sum(axis=1)).ravel())
    else:
        residual = np.zeros(n)
    residual_max = float(residual.max()) if n else 0.0
    heavy_rows = np.flatnonzero(residual * residual_max >= sim_threshold)

    indexed_cost = int(cumulative_cost[split - 1]) if split else 0
    estimate = indexed_cost + int(heavy_rows.size) ** 2
    if not force and estimate > _DENSE_FALLBACK_FRACTION * n * n:
        return None

    def _pairs_within_groups(flat: np.ndarray, sizes: np.ndarray,
                             values: Optional[np.ndarray]
                             ) -> Tuple[np.ndarray, np.ndarray]:
        """Fused i*n+j keys of all ordered pairs within each group.

        ``flat`` holds the groups' members back to back, ``sizes`` their
        lengths.  The full per-group cross products are built with one
        repeat/arange construction — no Python loop over groups.  When
        ``values`` is given (one weight per member), the per-pair weight
        product rides along so the caller can accumulate partial dot
        products per pair.
        """
        empty = np.empty(0, dtype=np.int64)
        sizes = sizes.astype(np.int64)
        counts = sizes * sizes
        total = int(counts.sum())
        if total == 0:
            return empty, empty.astype(np.float64)
        offsets = np.concatenate(([0], np.cumsum(sizes)))[:-1]
        pair_starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
        position = np.arange(total, dtype=np.int64) \
            - np.repeat(pair_starts, counts)
        size_of = np.repeat(sizes, counts)
        offset_of = np.repeat(offsets, counts)
        left_at = offset_of + position // size_of
        right_at = offset_of + position % size_of
        left = flat[left_at].astype(np.int64)
        right = flat[right_at].astype(np.int64)
        keep = left < right
        keys = left[keep] * n + right[keep]
        if values is None:
            return keys, np.empty(0, dtype=np.float64)
        return keys, values[left_at[keep]] * values[right_at[keep]]

    # Indexed-column pairs carry their partial dot product over indexed
    # terms; combined with the residual bound this prunes coincidental
    # shared-rare-term pairs before the (costly) exact scoring pass.
    if indexed_cols.size:
        lengths = df[indexed_cols]
        gathered = [csc.indices[csc.indptr[col]:csc.indptr[col + 1]]
                    for col in indexed_cols.tolist()]
        gathered_vals = [csc.data[csc.indptr[col]:csc.indptr[col + 1]]
                         for col in indexed_cols.tolist()]
        keys, prods = _pairs_within_groups(
            np.concatenate(gathered), lengths,
            np.concatenate(gathered_vals))
    else:
        keys = np.empty(0, dtype=np.int64)
        prods = np.empty(0, dtype=np.float64)

    if keys.size:
        order_k = np.argsort(keys, kind="stable")
        keys = keys[order_k]
        prods = prods[order_k]
        starts = np.concatenate(
            ([0], np.flatnonzero(keys[1:] != keys[:-1]) + 1))
        keys = keys[starts]
        partial = np.add.reduceat(prods, starts)
        # Upper bound: indexed partial sum plus Cauchy–Schwarz over the
        # common terms.  The margin keeps the prune conservative against
        # summation-order rounding; survivors are still scored exactly.
        bound = partial + residual[keys // n] * residual[keys % n]
        keys = keys[bound >= sim_threshold - 1e-9]

    heavy_keys, _ = _pairs_within_groups(
        heavy_rows, np.array([heavy_rows.size], dtype=np.int64), None)
    if heavy_keys.size:
        keys = np.concatenate((keys, heavy_keys))
        keys.sort()
        keys = keys[np.concatenate(([True], keys[1:] != keys[:-1]))]
    return keys // n, keys % n


def _sparse_union(matrix: sparse.csr_matrix, uf: "_UnionFind",
                  pairs: Tuple[np.ndarray, np.ndarray],
                  sim_threshold: float) -> None:
    """Score candidate pairs in chunks and union those over threshold."""
    ii, jj = pairs
    for start in range(0, ii.size, _SCORE_CHUNK):
        i = ii[start:start + _SCORE_CHUNK]
        j = jj[start:start + _SCORE_CHUNK]
        sims = np.asarray(matrix[i].multiply(matrix[j]).sum(axis=1)).ravel()
        hit = np.flatnonzero(sims >= sim_threshold)
        for a, b in zip(i[hit].tolist(), j[hit].tolist()):
            uf.union(a, b)


def _dense_union(matrix: sparse.csr_matrix, uf: "_UnionFind",
                 sim_threshold: float, block: int) -> None:
    """The O(n²) blocked-matmul join (fallback and small-corpus path)."""
    n = matrix.shape[0]
    for start in range(0, n, block):
        stop = min(start + block, n)
        sims = (matrix[start:stop] @ matrix.T).toarray()
        rows, cols = np.nonzero(sims >= sim_threshold)
        for r, c in zip(rows.tolist(), cols.tolist()):
            i = start + r
            if c > i:
                uf.union(i, c)


def single_link_clusters(matrix: sparse.csr_matrix,
                         distance_threshold: float = 0.4,
                         block: int = 1024,
                         join: str = "auto") -> List[int]:
    """Single-link clusters by cosine distance threshold.

    Returns a cluster label per row.  Rows with cosine distance below the
    threshold to any member of a cluster join that cluster.

    ``join`` selects the pair-generation strategy: ``"auto"`` (default)
    uses the inverted-index sparse join on large corpora with automatic
    dense fallback, ``"sparse"`` forces the inverted index, ``"dense"``
    forces the blocked matmul.  All strategies apply the exact same
    cosine threshold, so labels are identical across them.
    """
    n = matrix.shape[0]
    if n == 0:
        return []
    if join not in ("auto", "sparse", "dense"):
        raise ValueError(f"unknown join strategy: {join!r}")
    sim_threshold = 1.0 - distance_threshold
    if sim_threshold <= 0.0:
        # Every pair qualifies (cosine similarity is >= 0 for tf-idf
        # rows): one cluster, same as the dense path would produce.
        return [0] * n
    uf = _UnionFind(n)
    pairs = None
    if join == "sparse" or (join == "auto" and n >= _SPARSE_MIN_DOCS):
        pairs = _candidate_pairs(matrix.tocsr(), sim_threshold,
                                 force=join == "sparse")
    if pairs is not None:
        _sparse_union(matrix.tocsr(), uf, pairs, sim_threshold)
    else:
        _dense_union(matrix, uf, sim_threshold, block)
    roots: Dict[int, int] = {}
    labels: List[int] = []
    for i in range(n):
        root = uf.find(i)
        if root not in roots:
            roots[root] = len(roots)
        labels.append(roots[root])
    return labels


def agglomerative_clusters(matrix: sparse.csr_matrix,
                           distance_threshold: float = 0.4,
                           method: str = "complete") -> List[int]:
    """Agglomerative clustering (scipy linkage) for the linkage ablation.

    Valid ``method`` values: "single", "complete", "average".  Requires a
    dense pairwise distance matrix, so use it on deduplicated inputs only.
    """
    n = matrix.shape[0]
    if n == 0:
        return []
    if n == 1:
        return [0]
    sims = (matrix @ matrix.T).toarray()
    np.fill_diagonal(sims, 1.0)
    distances = np.clip(1.0 - sims, 0.0, None)
    condensed = squareform(distances, checks=False)
    tree = scipy_linkage(condensed, method=method)
    labels = fcluster(tree, t=distance_threshold, criterion="distance")
    return [int(l) - 1 for l in labels]


@dataclass
class ClusterResult:
    """Clusters over a set of (possibly duplicated) documents."""

    labels: List[int]                       # cluster label per input document
    clusters: Dict[int, List[int]]          # label -> input document indices
    exemplars: Dict[int, int] = field(default_factory=dict)  # label -> doc idx

    @property
    def n_clusters(self) -> int:
        """Number of distinct clusters."""
        return len(self.clusters)

    def members(self, label: int) -> List[int]:
        """Document indices in a cluster."""
        return self.clusters[label]

    def largest_first(self) -> List[int]:
        """Cluster labels ordered by descending size."""
        return sorted(self.clusters, key=lambda l: -len(self.clusters[l]))


def cluster_documents(documents: Sequence[str],
                      distance_threshold: float = 0.4,
                      ngram_range: Tuple[int, int] = (1, 2),
                      method: str = "single",
                      min_df: int = 1) -> ClusterResult:
    """Cluster raw HTML documents end to end.

    Exact duplicates are collapsed before vectorization (template-generated
    block pages are near-identical), each unique document is vectorized
    with 1-/2-gram TF-IDF, then clustered.  ``method`` "single" uses the
    threshold/union-find algorithm; "complete"/"average" use scipy linkage.
    """
    unique: Dict[str, int] = {}
    doc_to_unique: List[int] = []
    unique_docs: List[str] = []
    for doc in documents:
        idx = unique.get(doc)
        if idx is None:
            idx = len(unique_docs)
            unique[doc] = idx
            unique_docs.append(doc)
        doc_to_unique.append(idx)

    if not unique_docs:
        return ClusterResult(labels=[], clusters={})

    vectorizer = TfidfVectorizer(ngram_range=ngram_range, min_df=min_df)
    matrix = vectorizer.fit_transform(unique_docs)
    if method == "single":
        unique_labels = single_link_clusters(matrix, distance_threshold)
    else:
        unique_labels = agglomerative_clusters(matrix, distance_threshold, method)

    labels = [unique_labels[u] for u in doc_to_unique]
    clusters: Dict[int, List[int]] = {}
    for i, label in enumerate(labels):
        clusters.setdefault(label, []).append(i)
    exemplars = {label: members[0] for label, members in clusters.items()}
    return ClusterResult(labels=labels, clusters=clusters, exemplars=exemplars)
