"""TF-IDF vectorization of word n-grams (scikit-learn-compatible math).

The paper vectorizes candidate block pages with scikit-learn's
``TfidfVectorizer`` using 1- and 2-grams.  scikit-learn is not available in
this offline environment, so this module implements the same computation on
scipy sparse matrices:

* term frequency = raw count,
* smooth idf: ``idf(t) = ln((1 + n) / (1 + df(t))) + 1``,
* rows L2-normalized,

which matches sklearn's defaults (``smooth_idf=True``, ``norm="l2"``,
``sublinear_tf=False``).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.textutil.htmltext import extract_text_cached
from repro.textutil.ngrams import ngram_counts


class TfidfVectorizer:
    """Fit a vocabulary on documents and produce L2-normalized TF-IDF rows."""

    def __init__(self, ngram_range: Tuple[int, int] = (1, 2),
                 min_df: int = 1, max_features: Optional[int] = None,
                 html_input: bool = True) -> None:
        self.ngram_range = ngram_range
        self.min_df = min_df
        self.max_features = max_features
        self.html_input = html_input
        self.vocabulary_: Dict[str, int] = {}
        self.idf_: Optional[np.ndarray] = None
        # Per-body memo: block pages are template-generated, so the same
        # body text recurs across fit/transform calls; text extraction
        # and n-gram counting run once per distinct document.
        self._counts_memo: Dict[str, Dict[str, int]] = {}

    def _counts(self, document: str):
        counts = self._counts_memo.get(document)
        if counts is None:
            text = (extract_text_cached(document) if self.html_input
                    else document)
            counts = ngram_counts(text, self.ngram_range)
            self._counts_memo[document] = counts
        return counts

    def fit_transform(self, documents: Sequence[str]) -> sparse.csr_matrix:
        """Learn the vocabulary and return the TF-IDF matrix (docs × terms)."""
        doc_counts = [self._counts(d) for d in documents]
        df: Dict[str, int] = {}
        for counts in doc_counts:
            for term in counts:
                df[term] = df.get(term, 0) + 1
        terms = [t for t, d in df.items() if d >= self.min_df]
        if self.max_features is not None and len(terms) > self.max_features:
            terms.sort(key=lambda t: (-df[t], t))
            terms = terms[: self.max_features]
        terms.sort()
        self.vocabulary_ = {t: i for i, t in enumerate(terms)}
        n = len(documents)
        self.idf_ = np.array(
            [math.log((1 + n) / (1 + df[t])) + 1.0 for t in terms], dtype=float)
        return self._build_matrix(doc_counts)

    def transform(self, documents: Sequence[str]) -> sparse.csr_matrix:
        """Vectorize documents with the already-fitted vocabulary."""
        if self.idf_ is None:
            raise RuntimeError("vectorizer is not fitted")
        return self._build_matrix([self._counts(d) for d in documents])

    def _build_matrix(self, doc_counts) -> sparse.csr_matrix:
        vocab = self.vocabulary_
        idf = self.idf_
        # Preallocate index/value arrays at the upper bound (total terms
        # across documents) and fill them in one pass — no growing Python
        # lists over every nonzero, and the tf*idf product is vectorized.
        bound = sum(len(counts) for counts in doc_counts)
        rows = np.empty(bound, dtype=np.int64)
        cols = np.empty(bound, dtype=np.int64)
        vals = np.empty(bound, dtype=np.float64)
        pos = 0
        for row, counts in enumerate(doc_counts):
            for term, count in counts.items():
                col = vocab.get(term)
                if col is not None:
                    rows[pos] = row
                    cols[pos] = col
                    vals[pos] = count
                    pos += 1
        rows = rows[:pos]
        cols = cols[:pos]
        vals = vals[:pos] * idf[cols]
        matrix = sparse.csr_matrix(
            (vals, (rows, cols)), shape=(len(doc_counts), len(vocab)))
        # L2-normalize each row (all-zero rows stay zero).
        norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A.ravel()
        norms[norms == 0.0] = 1.0
        scaler = sparse.diags(1.0 / norms)
        return (scaler @ matrix).tocsr()
