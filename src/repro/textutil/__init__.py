"""Text utilities: HTML text extraction, n-grams, TF-IDF, clustering."""

from repro.textutil.htmltext import extract_text, normalize_whitespace
from repro.textutil.ngrams import ngram_counts, tokenize, word_ngrams
from repro.textutil.tfidf import TfidfVectorizer
from repro.textutil.linkage import cluster_documents, single_link_clusters

__all__ = [
    "extract_text",
    "normalize_whitespace",
    "tokenize",
    "word_ngrams",
    "ngram_counts",
    "TfidfVectorizer",
    "single_link_clusters",
    "cluster_documents",
]
