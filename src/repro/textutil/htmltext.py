"""HTML-to-text extraction for clustering features.

Block pages are clustered on their *visible text* (plus structure-bearing
attribute noise is dropped), mirroring how Jones et al. and the paper build
frequency vectors of words.  The extractor is regex-based: scripts and
styles are removed wholesale, tags are stripped, entities for the common
cases are decoded, and whitespace is normalized.
"""

from __future__ import annotations

import html
import re

_SCRIPT_RE = re.compile(r"<(script|style)\b.*?</\1>", re.IGNORECASE | re.DOTALL)
_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_TAG_RE = re.compile(r"<[^>]+>")
_WS_RE = re.compile(r"\s+")


def normalize_whitespace(text: str) -> str:
    """Collapse all whitespace runs to single spaces and strip ends."""
    return _WS_RE.sub(" ", text).strip()


def extract_text(document: str) -> str:
    """Extract normalized visible text from an HTML document."""
    text = _SCRIPT_RE.sub(" ", document)
    text = _COMMENT_RE.sub(" ", text)
    text = _TAG_RE.sub(" ", text)
    text = html.unescape(text)
    return normalize_whitespace(text)


#: Shared memo for :func:`extract_text_cached`.  Block pages are
#: template-generated, so scans see the same body text thousands of
#: times; the cap bounds memory on adversarial inputs.
_TEXT_CACHE: dict = {}
_TEXT_CACHE_MAX = 8192


def extract_text_cached(document: str) -> str:
    """Memoized :func:`extract_text` for duplicate-heavy corpora.

    Candidate block pages and background bodies repeat across clusters
    and pipeline stages; each distinct document is parsed once.
    """
    text = _TEXT_CACHE.get(document)
    if text is None:
        if len(_TEXT_CACHE) >= _TEXT_CACHE_MAX:
            _TEXT_CACHE.clear()
        text = extract_text(document)
        _TEXT_CACHE[document] = text
    return text
