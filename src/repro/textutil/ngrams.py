"""Word tokenization and n-gram features (1- and 2-grams, as in §4.1.3)."""

from __future__ import annotations

import re
from collections import Counter
from typing import Dict, Iterable, List, Tuple

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> List[str]:
    """Lowercase word tokens (alphanumeric runs)."""
    return _TOKEN_RE.findall(text.lower())


def word_ngrams(tokens: List[str], ngram_range: Tuple[int, int] = (1, 2)) -> List[str]:
    """All n-grams for n in ``ngram_range`` (inclusive), space-joined."""
    low, high = ngram_range
    if low < 1 or high < low:
        raise ValueError(f"bad ngram_range: {ngram_range}")
    grams: List[str] = []
    for n in range(low, high + 1):
        if n == 1:
            grams.extend(tokens)
        else:
            grams.extend(
                " ".join(tokens[i:i + n]) for i in range(len(tokens) - n + 1)
            )
    return grams


def ngram_counts(text: str, ngram_range: Tuple[int, int] = (1, 2)) -> Counter:
    """Term-frequency counter of word n-grams in ``text``."""
    return Counter(word_ngrams(tokenize(text), ngram_range))
