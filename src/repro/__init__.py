"""repro — reproduction of "403 Forbidden: A Global View of CDN Geoblocking".

A simulation-backed reimplementation of the IMC 2018 measurement study:
a synthetic Internet with CDN-enforced geoblocking policies, a Luminati-
style residential proxy network, the Lumscan measurement tool, and the
paper's full semi-automated detection pipeline (length outliers, TF-IDF
clustering, fingerprint classification, resampling confirmation), plus
builders for every table and figure in the evaluation.

Quickstart::

    from repro import World, WorldConfig, run_top10k_study

    world = World(WorldConfig.tiny())
    result = run_top10k_study(world)
    print(result.confirmed_domains)
"""

from repro.core.classify import Verdict, classify_body, classify_sample
from repro.core.fingerprints import Fingerprint, FingerprintRegistry
from repro.core.pipeline import (
    StudyConfig,
    Top10KResult,
    Top1MResult,
    VPSExplorationResult,
    run_top10k_study,
    run_top1m_study,
    run_vps_exploration,
)
from repro.lumscan import Lumscan, LumscanConfig, Sample, ScanDataset
from repro.proxynet import LuminatiClient, VPSFleet
from repro.websim import World, WorldConfig

__version__ = "1.0.0"

__all__ = [
    "World",
    "WorldConfig",
    "StudyConfig",
    "LuminatiClient",
    "VPSFleet",
    "Lumscan",
    "LumscanConfig",
    "Sample",
    "ScanDataset",
    "Fingerprint",
    "FingerprintRegistry",
    "Verdict",
    "classify_body",
    "classify_sample",
    "Top10KResult",
    "Top1MResult",
    "VPSExplorationResult",
    "run_top10k_study",
    "run_top1m_study",
    "run_vps_exploration",
    "__version__",
]
