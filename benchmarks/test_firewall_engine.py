"""Throughput bench for the Firewall Access Rules engine."""

from repro.datasets.firewall_rules import ZoneRuleSet
from repro.netsim.asn import ASRegistry


def test_rule_evaluation_throughput(benchmark, world):
    asn_registry = ASRegistry.build_for_world(world.allocator,
                                              seed=world.config.seed)
    rules = ZoneRuleSet()
    for country in ("IR", "SY", "SD", "CU", "KP"):
        rules.add("block", "country", country)
    rules.add("challenge", "country", "CN")
    rules.add("whitelist", "ip", "10.0.0.5")
    addresses = [world.residential_address(c)
                 for c in ("US", "IR", "CN", "DE", "RU")]
    state = {"i": 0}

    def evaluate_one():
        ip = addresses[state["i"] % len(addresses)]
        state["i"] += 1
        entry = world.geoip.lookup(ip)
        record = asn_registry.lookup(ip)
        return rules.evaluate(ip, country=entry.country if entry else None,
                              asn=record.asn if record else None)

    benchmark(evaluate_one)

    # Sanity: decisions line up with the visitor's country.
    entry = world.geoip.lookup(addresses[1])
    if entry and entry.country == "IR":
        assert rules.evaluate(addresses[1], country="IR") == "block"
