"""Shared helpers for the benchmark suite.

The benchmark files each kept private copies of the same three pieces of
bookkeeping — best-of-N wall-clock timing, the ``BENCH_*.json``
trajectory writer, and the cpu-count/oversubscription annotations that
keep single-core runner numbers from being misread as scaling results.
They live here once, so every benchmark reports identically.  The
RSS/peak-memory helpers round out the set: worker memory is a measured
quantity of the frozen-world layer, and both ``BENCH_world.json`` and the
``BENCH_probe.json`` scaling curve record it through the same two
functions.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict

from repro.util.memory import rss_bytes

__all__ = [
    "best_of", "cpu_count", "measure_child", "oversubscription_fields",
    "oversubscription_note", "results_path", "rss_bytes",
    "worker_rss_fields", "write_trajectory",
]

#: Directory the BENCH_*.json trajectory files land in (the repo root).
RESULTS_DIR = Path(__file__).resolve().parent.parent


def results_path(name: str) -> Path:
    """Path of one benchmark's trajectory file, e.g. ``BENCH_store.json``."""
    return RESULTS_DIR / f"BENCH_{name}.json"


def best_of(fn: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds of ``fn()``.

    Best-of (not mean) filters scheduler noise; benchmarks that need a
    cold-state run per repeat pass ``repeat=1`` and loop themselves.
    """
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def write_trajectory(name: str, key: str, payload: dict) -> None:
    """Merge one benchmark result into ``BENCH_<name>.json``.

    The file accumulates a key->payload map across tests of one
    benchmark module; CI archives it per commit to keep a trajectory.
    """
    path = results_path(name)
    record = {}
    if path.exists():
        try:
            record = json.loads(path.read_text())
        except json.JSONDecodeError:
            record = {}
    record[key] = payload
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def cpu_count() -> int:
    """The runner's CPU count (never 0)."""
    return os.cpu_count() or 1


def oversubscription_fields(workers: int) -> Dict[str, object]:
    """The bookkeeping every multi-worker measurement must carry.

    A pool wider than the machine measures pool overhead, not parallel
    scaling — the ``oversubscribed`` flag keeps such points from being
    read as "parallelism loses to serial" on a 1-CPU runner.
    """
    cpus = cpu_count()
    return {"cpus": cpus, "oversubscribed": cpus < workers}


def _child_probe(target: Callable[[], object], conn) -> None:
    before = rss_bytes()
    started = time.perf_counter()
    target()
    conn.send({"seconds": time.perf_counter() - started,
               "rss_bytes": rss_bytes(),
               "rss_delta_bytes": max(0, rss_bytes() - before)})
    conn.close()


def measure_child(target: Callable[[], object]) -> Dict[str, object]:
    """Run ``target()`` in a fresh child process; its timing and memory.

    This is the worker's-eye measurement: the returned dict carries the
    call's wall-clock ``seconds``, the child's resident set right after
    it (``rss_bytes``), and the growth the call itself caused
    (``rss_delta_bytes`` — the honest number under fork, where inherited
    parent pages inflate the absolute reading).
    """
    from multiprocessing import Pipe, Process

    recv, send = Pipe(duplex=False)
    proc = Process(target=_child_probe, args=(target, send))
    proc.start()
    send.close()
    payload = recv.recv()
    proc.join()
    return payload


def worker_rss_fields(scanner) -> Dict[str, object]:
    """Worker peak-RSS bookkeeping for one multi-process measurement.

    ``scanner`` is anything with ``worker_init_stats()`` (the scan engine
    delegates to its scanner); measurements without process workers
    report 0, keeping the field present on every recorded point.
    """
    source = getattr(scanner, "worker_init_stats", None)
    stats = source() if source is not None else None
    peak = getattr(stats, "rss_peak_bytes", 0) if stats is not None else 0
    return {"worker_rss_peak_bytes": peak}


def oversubscription_note(workers: int) -> str:
    """Human-readable caveat for an oversubscribed measurement set."""
    return (f"runner has {cpu_count()} cpu(s); entries with workers > cpus "
            f"measure pool overhead, not parallel scaling")
