"""Table 5 — top TLDs of geoblocking sites and most-blocked countries."""

from repro.analysis.tables import table5


def test_table5(benchmark, top10k):
    table = benchmark(table5, top10k)
    # Country side: sanctioned countries dominate the top ranks.
    countries = [row[2] for row in table.rows[:4] if row[2]]
    assert set(countries) & {"IR", "SY", "SD", "CU"}
    # Totals row consistency.
    assert table.rows[-1][1] == len(top10k.confirmed_domains)
    assert table.rows[-1][3] == len(top10k.confirmed)
