"""Segment benchmark: O(new rows) manifest append vs full rewrite.

The ``.lshm`` manifest layer exists so that checkpointing a logical
dataset that grew by one rescan does not re-serialize history.  A
synthetic 120k-row scan (the paper-shaped corpus the other storage
benchmarks use) is checkpointed as a manifest; a 10k-row rescan is then
added two ways:

* **Append** (:func:`repro.lumscan.shards.append_segment`) — writes one
  10k-row segment and atomically replaces the (tiny) manifest.  Prior
  segments are never opened for writing.
* **Full rewrite** (:func:`dump_dataset_lshd`) — the pre-manifest
  behavior: re-serialize all 130k merged rows into a fresh segment.

Append must come in at least 5x faster.  Compaction is also timed (not
gated) and its output asserted byte-identical to the sequential writer —
the manifest's correctness contract.  Timings land in
``BENCH_segments.json`` at the repo root so CI keeps a trajectory across
commits and re-gates the recorded speedup.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from bench_util import best_of, write_trajectory
from repro.lumscan.serialize import dump_dataset_lshd, load_dataset
from repro.lumscan.shards import append_segment, compact_manifest, read_manifest

from test_columnar import _synthetic_dataset

BASE_ROWS = 120_000
NEW_ROWS = 10_000
MIN_APPEND_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def corpus():
    """(120k-row base dataset, 10k-row rescan, 130k-row merged)."""
    base = _synthetic_dataset(rows=BASE_ROWS)
    rescan = _synthetic_dataset(rows=NEW_ROWS, seed=23)
    merged = _synthetic_dataset(rows=BASE_ROWS)
    merged.extend(rescan)
    return base, rescan, merged


def test_append_speedup_over_full_rewrite(corpus, tmp_path):
    base, rescan, merged = corpus
    new_columns = rescan.export_columns()

    def fresh_manifest(name):
        manifest = str(tmp_path / f"{name}.lshm")
        append_segment(manifest, base.export_columns())
        return manifest

    # Correctness first: the appended manifest reads back as the merge.
    manifest = fresh_manifest("check")
    append_segment(manifest, new_columns)
    logical = load_dataset(manifest)
    assert len(logical) == len(merged)
    for i in (0, BASE_ROWS - 1, BASE_ROWS, len(merged) - 1):
        assert logical.row(i) == merged.row(i)
    logical.close()

    # Each append round gets its own manifest so every measurement does
    # the same work: one new segment plus one manifest replace.
    manifests = iter([fresh_manifest(f"bench{i}") for i in range(3)])
    append_s = best_of(lambda: append_segment(next(manifests), new_columns))
    rewrite_s = best_of(
        lambda: dump_dataset_lshd(merged, str(tmp_path / "rewrite.lshd")))

    speedup = rewrite_s / append_s
    print(f"\nsegment append ({BASE_ROWS:,}+{NEW_ROWS:,} rows): "
          f"full rewrite {rewrite_s:.3f}s, append {append_s:.4f}s, "
          f"speedup {speedup:.1f}x")
    write_trajectory("segments", "append", {
        "base_rows": BASE_ROWS,
        "new_rows": NEW_ROWS,
        "full_rewrite_s": round(rewrite_s, 4),
        "append_s": round(append_s, 4),
        "speedup": round(speedup, 1),
    })
    assert speedup >= MIN_APPEND_SPEEDUP, (
        f"append only {speedup:.1f}x faster than a full rewrite "
        f"({rewrite_s:.3f}s rewrite vs {append_s:.4f}s append)")


def test_compaction_byte_identity_and_timing(corpus, tmp_path):
    base, rescan, merged = corpus
    manifest = str(tmp_path / "compact.lshm")
    append_segment(manifest, base.export_columns())
    append_segment(manifest, rescan.export_columns())

    compact_s = best_of(lambda: compact_manifest(manifest), repeat=1)
    compacted = read_manifest(manifest)
    assert len(compacted.entries) == 1

    sequential = str(tmp_path / "sequential.lshd")
    sequential_s = best_of(
        lambda: dump_dataset_lshd(merged, sequential), repeat=1)
    segment = Path(compacted.segment_paths()[0])
    assert segment.read_bytes() == Path(sequential).read_bytes()

    print(f"\nsegment compact ({len(merged):,} rows): "
          f"compact {compact_s:.3f}s, sequential write {sequential_s:.3f}s, "
          f"output byte-identical")
    write_trajectory("segments", "compact", {
        "rows": len(merged),
        "compact_s": round(compact_s, 4),
        "sequential_write_s": round(sequential_s, 4),
        "byte_identical": True,
    })
