"""Table 2 — recall of the 30%-length heuristic per block-page type."""

from repro.analysis.tables import table2
from repro.core.metrics import overall_recall, recall_by_fingerprint


def test_table2(benchmark, top10k):
    def build():
        rows = recall_by_fingerprint(
            top10k.initial, top10k.representatives, cutoff=0.30,
            registry=top10k.registry,
            restrict_countries=top10k.top_blocking_countries[:20])
        return rows, table2(rows)

    rows, table = benchmark(build)
    assert table.rows[-1][0] == "Total"
    # Paper: overall recall 58.3% — imperfect but far from zero.  The
    # synthetic worlds land higher because fewer domains are blocked
    # everywhere; require the qualitative property: 30% < recall <= 100%.
    total = overall_recall(rows)
    assert 0.30 < total <= 1.0
    # And the heuristic must be *lossy* somewhere or perfect nowhere —
    # both observed in the paper's per-page breakdown.
    assert all(0.0 <= r.recall <= 1.0 for r in rows)
