"""Ablation: single-link vs complete/average linkage for clustering.

The paper chose single-link hierarchical clustering because it needs no
preset cluster count.  This bench clusters the same outlier bodies under
all three linkage criteria and checks they all isolate the block-page
families (template-generated pages are tight clusters, so the criteria
agree), while timing the default single-link path.
"""

from repro.core.discovery import label_cluster
from repro.textutil.linkage import cluster_documents


def _labelled_families(bodies, method):
    result = cluster_documents(bodies, distance_threshold=0.4,
                               method=method, min_df=2)
    families = set()
    for label in result.largest_first():
        members = result.members(label)
        if len(members) < 2:
            continue
        page_type = label_cluster(bodies[members[0]])
        if page_type:
            families.add(page_type)
    return families


def test_linkage_ablation(benchmark, top10k):
    bodies = [o.sample.body for o in top10k.outliers
              if o.sample.body is not None][:800]
    assert bodies

    single = benchmark.pedantic(_labelled_families, args=(bodies, "single"),
                                rounds=1, iterations=1)
    complete = _labelled_families(bodies, "complete")
    average = _labelled_families(bodies, "average")
    # All three isolate the same major block-page families.
    assert single
    assert single == complete == average
