"""Table 6 — geoblocking among Top 10K sites, by country and CDN."""

from repro.analysis.tables import table6


def test_table6(benchmark, top10k):
    table = benchmark(table6, top10k)
    rows = {row[0]: row for row in table.rows}
    # Paper shape: AppEngine blocks only sanctioned countries; its column
    # is zero outside IR/SY/SD/CU (KP unreachable via Luminati).
    appengine_col = table.columns.index("AppEngine")
    for country, row in rows.items():
        if country in ("Total", "Other"):
            continue
        if row[appengine_col] > 0:
            assert country in ("IR", "SY", "SD", "CU")
    # Sanctioned countries lead the table when present.
    ordered = [row[0] for row in table.rows if row[0] not in ("Total", "Other")]
    if ordered:
        assert ordered[0] in ("IR", "SY", "SD", "CU")
