"""Figure 4 — CDF of geoblocking observation agreement."""

from repro.analysis.figures import figure4


def test_figure4(benchmark, top10k):
    figure = benchmark(figure4, top10k)
    agreements = [x for x, _ in figure.series["agreement"]]
    assert agreements
    # Paper shape: the vast majority of candidate pairs show the block
    # page in >80% of probes.
    high = sum(1 for a in agreements if a > 0.8)
    assert high / len(agreements) > 0.5
    # Confirmed pairs are all >= 80% by construction of the threshold.
    for x, _ in figure.series["confirmed-only"]:
        assert x >= 0.80
