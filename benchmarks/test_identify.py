"""§5.1.1 — CDN customer identification over the full population."""

from repro.core.identify import identify_by_ns, identify_cdn_customers
from repro.datasets.alexa import AlexaList


def test_identify_cdn_customers(benchmark, world):
    domains = AlexaList(world.population).full()
    population = benchmark.pedantic(identify_cdn_customers,
                                    args=(world, domains),
                                    rounds=1, iterations=1)
    truth_cf = {d.name for d in world.population.by_provider("cloudflare")}
    found_cf = population.of("cloudflare")
    # Header identification finds (nearly) all live Cloudflare customers
    # and nothing else.
    assert found_cf <= truth_cf
    assert len(found_cf) > len(truth_cf) * 0.85
    # AppEngine netblock identification is exact.
    truth_gae = {d.name for d in world.population.by_provider("appengine")}
    assert population.of("appengine") == truth_gae


def test_ns_identification_partial(benchmark, world):
    domains = AlexaList(world.population).full()
    ns = benchmark(identify_by_ns, world.dns, domains)
    truth_ak = {d.name for d in world.population.by_provider("akamai")}
    # The paper's §3.1 caveat: NS records expose only a fraction of
    # Akamai customers.
    assert ns["akamai"] < truth_ak
