"""Probe-path benchmark: length-only fast lane + process sharding.

Two claims from the probe fast lane are measured here on fresh ``small``
worlds (cold page caches, the state a real scan starts from):

* **Fast lane**: a single-worker scan with the default
  ``BodyPolicy.lengths_over(BODY_KEEP_THRESHOLD)`` must push at least 2x
  the probes/sec of a full-materialization scan.  The win comes from
  ``page_length`` replaying ``generate_page``'s RNG draws without
  building the page, plus skipping the jitter concatenation for bodies
  the dataset would drop anyway.
* **Process sharding**: at 4 workers the ``ProcessPoolExecutor`` shape
  (columnar shard exchange, streaming merge) must beat both the
  GIL-bound thread pool *and* a plain serial scan on wall clock.  The
  container this repo develops in has a single core, so those assertions
  are gated on ``os.cpu_count() >= 2`` (CI runners have more); the
  timings are recorded unconditionally, including a 1/2/4-worker scaling
  curve and a shard-vs-pickle exchange comparison.

Throughputs land in ``BENCH_probe.json`` at the repo root so CI keeps a
trajectory across commits.
"""

from __future__ import annotations

import time

from bench_util import (
    cpu_count,
    oversubscription_fields,
    oversubscription_note,
    worker_rss_fields,
    write_trajectory,
)
from repro.httpsim.messages import BodyPolicy
from repro.lumscan.engine import ScanEngine
from repro.lumscan.scanner import Lumscan
from repro.proxynet.luminati import LuminatiClient
from repro.websim.world import World, WorldConfig

WORLD_SEED = 7
SCAN_SEED = 9
DOMAINS = 300
COUNTRIES = 3
#: The executor comparison uses a wider country slice so the scan is long
#: enough to amortize each process worker's one-time world rebuild.
EXECUTOR_COUNTRIES = 20
SAMPLES = 3
WORKERS = 4
MIN_FASTLANE_SPEEDUP = 2.0


def _fresh_world() -> World:
    """A new small world per measurement: cold page/length caches."""
    return World(WorldConfig.small(seed=WORLD_SEED))


def _scan_slice(world, n_countries=COUNTRIES):
    urls = [d.url for d in world.population.top(2 * DOMAINS)
            if not d.dead and not d.redirect_loop][:DOMAINS]
    countries = LuminatiClient(world).countries()[:n_countries]
    return urls, countries


def _rows(data):
    return [data.row(i) for i in range(len(data))]


def _timed_scan(scanner_factory, repeat: int = 2, n_countries=COUNTRIES):
    """Best-of-``repeat`` scan, each against a freshly built world.

    A fresh world per repeat keeps the page caches cold — the state a
    real scan starts from — while best-of filters scheduler noise.
    """
    best_rate, best_elapsed, data = 0.0, float("inf"), None
    for _ in range(repeat):
        world = _fresh_world()
        urls, countries = _scan_slice(world, n_countries)
        scanner = scanner_factory(world)
        started = time.perf_counter()
        data = scanner.scan(urls, countries, samples=SAMPLES)
        elapsed = time.perf_counter() - started
        if elapsed < best_elapsed:
            best_elapsed = elapsed
            best_rate = len(data) / elapsed
    return data, best_rate, best_elapsed


def test_fast_lane_speedup_single_worker():
    full, full_rate, full_time = _timed_scan(
        lambda world: Lumscan(LuminatiClient(world), seed=SCAN_SEED,
                              body_policy=BodyPolicy.full()))
    fast, fast_rate, fast_time = _timed_scan(
        lambda world: Lumscan(LuminatiClient(world), seed=SCAN_SEED))

    # Correctness first: the fast lane changes nothing the dataset keeps.
    assert _rows(fast) == _rows(full)

    speedup = fast_rate / full_rate
    print(f"\nfast lane: full {full_rate:,.0f} probes/s ({full_time:.2f}s), "
          f"elided {fast_rate:,.0f} probes/s ({fast_time:.2f}s), "
          f"speedup {speedup:.2f}x")
    write_trajectory("probe", "fast_lane_single_worker", {
        "probes": len(full),
        "full_probes_per_sec": round(full_rate, 1),
        "fastlane_probes_per_sec": round(fast_rate, 1),
        "speedup": round(speedup, 2),
    })
    assert speedup >= MIN_FASTLANE_SPEEDUP, (
        f"expected >= {MIN_FASTLANE_SPEEDUP}x fast-lane speedup, "
        f"got {speedup:.2f}x")


def _process_engine_factory(workers: int, exchange: str, engines=None):
    """Engine factory; ``engines`` (a list) collects every built engine so
    the caller can read worker-init stats off the one that ran."""
    def factory(world):
        engine = ScanEngine(Lumscan(LuminatiClient(world), seed=SCAN_SEED),
                            workers=workers, executor="process",
                            exchange=exchange)
        if engines is not None:
            engines.append(engine)
        return engine
    return factory


def test_executor_scaling():
    cpus = cpu_count()
    serial, serial_rate, _ = _timed_scan(
        lambda world: Lumscan(LuminatiClient(world), seed=SCAN_SEED),
        n_countries=EXECUTOR_COUNTRIES)
    threaded, thread_rate, thread_time = _timed_scan(
        lambda world: ScanEngine(Lumscan(LuminatiClient(world),
                                         seed=SCAN_SEED),
                                 workers=WORKERS, executor="thread"),
        n_countries=EXECUTOR_COUNTRIES)
    process_engines = []
    processed, process_rate, process_time = _timed_scan(
        _process_engine_factory(WORKERS, "auto", process_engines),
        n_countries=EXECUTOR_COUNTRIES)

    assert _rows(threaded) == _rows(serial)
    assert _rows(processed) == _rows(serial)

    # The multi-core scaling curve: shard exchange across worker counts,
    # plus the legacy pickle return path at full width for comparison.
    # Single-repeat per point keeps the curve affordable; the headline
    # numbers above stay best-of-2.  Every point carries the shared
    # cpu-count/oversubscription fields (see bench_util) — on a 1-CPU
    # runner a 4-worker entry measures process overhead, not scaling,
    # and must not be read as "parallelism loses to serial".
    curve = []
    for workers in sorted({1, 2, WORKERS, min(WORKERS, cpus)}):
        if workers == WORKERS:
            point, rate, elapsed = processed, process_rate, process_time
            engine = process_engines[-1]
        else:
            engines = []
            point, rate, elapsed = _timed_scan(
                _process_engine_factory(workers, "auto", engines),
                repeat=1, n_countries=EXECUTOR_COUNTRIES)
            assert _rows(point) == _rows(serial)
            engine = engines[-1]
        curve.append({"workers": workers, "exchange": "shard",
                      "probes_per_sec": round(rate, 1),
                      "seconds": round(elapsed, 2),
                      **oversubscription_fields(workers),
                      **worker_rss_fields(engine)})
    pickle_engines = []
    pickled, pickle_rate, pickle_time = _timed_scan(
        _process_engine_factory(WORKERS, "pickle", pickle_engines),
        repeat=1, n_countries=EXECUTOR_COUNTRIES)
    assert _rows(pickled) == _rows(serial)
    curve.append({"workers": WORKERS, "exchange": "pickle",
                  "probes_per_sec": round(pickle_rate, 1),
                  "seconds": round(pickle_time, 2),
                  **oversubscription_fields(WORKERS),
                  **worker_rss_fields(pickle_engines[-1])})

    print(f"\nexecutors ({cpus} cpus, {WORKERS} workers): "
          f"serial {serial_rate:,.0f} probes/s, "
          f"thread {thread_rate:,.0f} probes/s ({thread_time:.2f}s), "
          f"process/shard {process_rate:,.0f} probes/s ({process_time:.2f}s), "
          f"process/pickle {pickle_rate:,.0f} probes/s ({pickle_time:.2f}s)")
    for point in curve:
        tag = " [oversubscribed]" if point["oversubscribed"] else ""
        print(f"  {point['workers']} workers ({point['exchange']}): "
              f"{point['probes_per_sec']:,.0f} probes/s{tag}")
    payload = {
        "cpus": cpus,
        "workers": WORKERS,
        "probes": len(serial),
        "serial_probes_per_sec": round(serial_rate, 1),
        "thread_probes_per_sec": round(thread_rate, 1),
        "process_probes_per_sec": round(process_rate, 1),
        "process_pickle_probes_per_sec": round(pickle_rate, 1),
        "scaling_curve": curve,
    }
    if any(point["oversubscribed"] for point in curve):
        payload["note"] = oversubscription_note(WORKERS)
    write_trajectory("probe", "executor_scaling", payload)
    if cpus >= 2:
        # The simulated transport never blocks, so threads are GIL-bound
        # and the process pool is the only shape that can actually scale.
        # With the shard exchange the pool must also beat a plain serial
        # scan outright — the multi-core win the exchange exists for.
        assert process_rate > thread_rate, (
            f"process pool ({process_rate:,.0f}/s) should beat the thread "
            f"pool ({thread_rate:,.0f}/s) on {cpus} cpus")
        assert process_rate >= serial_rate, (
            f"process pool ({process_rate:,.0f}/s) should beat a serial "
            f"scan ({serial_rate:,.0f}/s) on {cpus} cpus")
