"""Storage benchmark: LSHD mmap checkpoints vs gzip-JSONL parse loads.

The unified columnar store exists for one reason: reopening a checkpoint
should not cost a row-by-row JSON parse.  A synthetic 120k-row scan (the
same paper-shaped corpus the columnar-kernel benchmark uses) is written
through both codecs and read back:

* **Load**: ``load_dataset`` on an LSHD segment maps the column buffers
  zero-copy — O(columns + code tables), independent of row count — and
  must come back at least 5x faster than parsing the gzip-JSONL form of
  the same records.
* **Save**: ``dump_dataset_lshd`` streams raw buffers; the comparison
  against the JSONL writer is recorded for the trajectory (the win here
  is expected but not gated — the load path is the contract).

A first-access sweep over the mapped columns is folded into the timed
load so lazily-faulted pages cannot flatter the mmap number.  Timings
land in ``BENCH_store.json`` at the repo root so CI keeps a trajectory
across commits and gates on the load speedup.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from bench_util import best_of as _time, write_trajectory
from repro.lumscan.serialize import dump_dataset, dump_dataset_lshd, load_dataset

from test_columnar import _synthetic_dataset

ROWS = 120_000
MIN_LOAD_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def checkpoints(tmp_path_factory):
    """One 120k-row dataset checkpointed through both codecs."""
    root = tmp_path_factory.mktemp("store-bench")
    dataset = _synthetic_dataset(rows=ROWS)
    jsonl_path = str(root / "scan.jsonl.gz")
    lshd_path = str(root / "scan.lshd")
    jsonl_save_s = _time(lambda: dump_dataset(dataset, jsonl_path), repeat=1)
    lshd_save_s = _time(lambda: dump_dataset_lshd(dataset, lshd_path),
                        repeat=1)
    return dataset, jsonl_path, lshd_path, jsonl_save_s, lshd_save_s


def _touch_all_columns(data):
    """Force every mapped page in: checksums over all five columns."""
    cols = data.export_columns()
    return (int(cols.dcodes.sum()), int(cols.ccodes.sum()),
            int(cols.statuses.sum()), int(cols.lengths.sum()),
            int(cols.ecodes.sum()))


def test_mmap_load_speedup(checkpoints):
    dataset, jsonl_path, lshd_path, jsonl_save_s, lshd_save_s = checkpoints

    def load_jsonl():
        return load_dataset(jsonl_path)

    def load_lshd():
        data = load_dataset(lshd_path)
        _touch_all_columns(data)
        return data

    # Correctness first: both loads reproduce the same records.
    parsed = load_jsonl()
    mapped = load_lshd()
    assert mapped.is_mapped
    assert len(parsed) == len(mapped) == len(dataset)
    spot_rows = (0, len(dataset) // 2, len(dataset) - 1)
    for i in spot_rows:
        assert parsed.row(i) == mapped.row(i) == dataset.row(i)
    assert _touch_all_columns(mapped) == _touch_all_columns(parsed)
    mapped.close()

    jsonl_load_s = _time(load_jsonl)
    lshd_load_s = _time(lambda: load_lshd().close())
    speedup = jsonl_load_s / lshd_load_s
    print(f"\nstore load ({len(dataset):,} rows): "
          f"gzip-jsonl {jsonl_load_s:.3f}s, "
          f"lshd-mmap {lshd_load_s:.4f}s, speedup {speedup:.1f}x")
    write_trajectory("store", "load", {
        "rows": len(dataset),
        "jsonl_gz_s": round(jsonl_load_s, 4),
        "lshd_mmap_s": round(lshd_load_s, 4),
        "speedup": round(speedup, 1),
    })
    assert speedup >= MIN_LOAD_SPEEDUP, (
        f"mmap load only {speedup:.1f}x faster "
        f"({jsonl_load_s:.3f}s jsonl.gz vs {lshd_load_s:.4f}s lshd)")


def test_save_comparison(checkpoints):
    dataset, jsonl_path, lshd_path, jsonl_save_s, lshd_save_s = checkpoints
    jsonl_bytes = Path(jsonl_path).stat().st_size
    lshd_bytes = Path(lshd_path).stat().st_size
    speedup = jsonl_save_s / lshd_save_s
    print(f"\nstore save ({len(dataset):,} rows): "
          f"gzip-jsonl {jsonl_save_s:.3f}s/{jsonl_bytes:,}B, "
          f"lshd {lshd_save_s:.3f}s/{lshd_bytes:,}B, "
          f"speedup {speedup:.1f}x")
    write_trajectory("store", "save", {
        "rows": len(dataset),
        "jsonl_gz_s": round(jsonl_save_s, 4),
        "jsonl_gz_bytes": jsonl_bytes,
        "lshd_s": round(lshd_save_s, 4),
        "lshd_bytes": lshd_bytes,
        "speedup": round(speedup, 1),
    })
    # Not gated as hard as the load path, but the columnar writer should
    # never be slower than serializing every row through json+gzip.
    assert lshd_save_s <= jsonl_save_s
