"""Ablation: clustering distance threshold (§4.1.3).

Single-link clustering with a threshold cut has one knob; sweeping it
shows the regime the pipeline operates in — too tight shatters templates
into per-instance singletons, too loose merges distinct providers.
"""

from repro.core.discovery import label_cluster
from repro.textutil.linkage import cluster_documents


def test_threshold_sweep(benchmark, top10k):
    bodies = [o.sample.body for o in top10k.outliers
              if o.sample.body is not None][:600]
    assert len(bodies) >= 20

    def sweep():
        return {threshold: cluster_documents(bodies,
                                             distance_threshold=threshold,
                                             min_df=2).n_clusters
                for threshold in (0.1, 0.4, 0.8)}

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Looser thresholds merge more: cluster count is non-increasing.
    assert counts[0.1] >= counts[0.4] >= counts[0.8]


def test_working_threshold_separates_providers(top10k):
    bodies = [o.sample.body for o in top10k.outliers
              if o.sample.body is not None][:600]
    result = cluster_documents(bodies, distance_threshold=0.4, min_df=2)
    labels = set()
    for label in result.largest_first():
        members = result.members(label)
        if len(members) < 2:
            continue
        page_type = label_cluster(bodies[members[0]])
        if page_type:
            labels.add(page_type)
    # The working threshold isolates multiple distinct page families.
    assert len(labels) >= 2
