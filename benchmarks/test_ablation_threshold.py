"""Ablation: agreement-threshold sweep around the paper's 80% (§4.1.4)."""

from repro.core.metrics import score_confirmed_blocks
from repro.core.resample import confirm_blocks


def test_threshold_sweep(benchmark, world, top10k):
    def sweep():
        results = {}
        for threshold in (0.5, 0.8, 0.95, 1.0):
            confirmed = confirm_blocks(top10k.initial, top10k.resampled,
                                       top10k.registry, threshold=threshold)
            score = score_confirmed_blocks(world, confirmed,
                                           top10k.safe_domains,
                                           top10k.countries)
            results[threshold] = (len(confirmed), score)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    counts = {t: n for t, (n, _) in results.items()}
    # Monotone: stricter thresholds confirm fewer pairs.
    assert counts[0.5] >= counts[0.8] >= counts[0.95] >= counts[1.0]
    # The paper's 80% keeps precision high without collapsing recall.
    score_80 = results[0.8][1]
    score_100 = results[1.0][1]
    assert score_80.precision >= 0.9
    assert score_80.recall >= score_100.recall
