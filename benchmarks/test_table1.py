"""Table 1 — pipeline data volumes at each step."""

from repro.analysis.tables import table1


def test_table1(benchmark, top10k, world):
    table = benchmark(table1, top10k, len(world.population))
    row = dict(zip(table.columns, table.rows[0]))
    # Shape: safe list < initial list; samples = safe x countries x 3;
    # clusters and CDNs discovered.
    assert row["Safe Domains"] < row["Initial Domains"]
    assert row["Initial Samples"] == (row["Safe Domains"]
                                      * len(top10k.countries) * 3)
    assert row["Clusters"] >= 3
    assert row["Discovered CDNs"] >= 2
