"""World freeze/load benchmark: pack-mapped workers vs rebuild-from-spec.

The frozen-world layer exists for one number: how fast a process-pool
worker comes up.  A worker given only a :class:`ScannerSpec` rebuilds the
whole world from its config — at the default study scale (60,000 domains)
that is seconds of CPU per worker, paid again at every pool width.  A
worker handed a frozen worldpack maps the parent's immutable state
zero-copy and must initialize **at least 5x faster**; that floor is the
gate this file enforces and CI re-checks against ``BENCH_world.json``.

Both paths are measured in a fresh child process (see
``bench_util.measure_child``) so the numbers are the worker's-eye view:
wall-clock of ``spec.build()`` plus the child's resident-set growth,
which is where the N-copies-of-the-world memory cost shows up.
"""

from __future__ import annotations

import time

from bench_util import measure_child, write_trajectory
from repro.lumscan.scanner import Lumscan
from repro.proxynet.luminati import LuminatiClient
from repro.websim.world import World, WorldConfig
from repro.websim.worldpack import freeze_world

WORLD_SEED = 7
SCAN_SEED = 9
MIN_PACK_SPEEDUP = 5.0
REBUILD_REPEATS = 2
PACK_REPEATS = 3


def _best(spec_build, repeats):
    """Best-of-``repeats`` child measurements of one spec's build()."""
    best = None
    for _ in range(repeats):
        probe = measure_child(spec_build)
        if best is None or probe["seconds"] < best["seconds"]:
            best = probe
    return best


def test_pack_worker_init_speedup():
    started = time.perf_counter()
    world = World(WorldConfig(seed=WORLD_SEED))
    parent_build_seconds = time.perf_counter() - started
    scanner = Lumscan(LuminatiClient(world), seed=SCAN_SEED)

    started = time.perf_counter()
    pack = scanner.freeze_world_pack()
    freeze_seconds = time.perf_counter() - started
    try:
        rebuild = _best(scanner.spawn_spec().build, REBUILD_REPEATS)
        mapped = _best(scanner.spawn_spec(world_source=pack.handle).build,
                       PACK_REPEATS)
        pack_kind = pack.handle.kind
        pack_nbytes = pack.handle.nbytes
    finally:
        pack.release()

    speedup = rebuild["seconds"] / mapped["seconds"]
    print(f"\nworldpack ({len(world.population)} domains): "
          f"parent build {parent_build_seconds:.2f}s, "
          f"freeze {freeze_seconds:.2f}s ({pack_nbytes / 1e6:.1f} MB, "
          f"{pack_kind}), worker rebuild {rebuild['seconds']:.2f}s "
          f"(+{rebuild['rss_delta_bytes'] / 1e6:.0f} MB rss), "
          f"worker pack load {mapped['seconds']:.2f}s "
          f"(+{mapped['rss_delta_bytes'] / 1e6:.0f} MB rss), "
          f"speedup {speedup:.1f}x")
    write_trajectory("world", "worker_init", {
        "world_size": len(world.population),
        "parent_build_seconds": round(parent_build_seconds, 3),
        "freeze_seconds": round(freeze_seconds, 3),
        "pack_kind": pack_kind,
        "pack_nbytes": pack_nbytes,
        "rebuild_seconds": round(rebuild["seconds"], 3),
        "rebuild_worker_rss_bytes": rebuild["rss_bytes"],
        "rebuild_worker_rss_delta_bytes": rebuild["rss_delta_bytes"],
        "pack_load_seconds": round(mapped["seconds"], 3),
        "pack_worker_rss_bytes": mapped["rss_bytes"],
        "pack_worker_rss_delta_bytes": mapped["rss_delta_bytes"],
        "speedup": round(speedup, 2),
    })
    assert speedup >= MIN_PACK_SPEEDUP, (
        f"pack-mapped worker init should be >= {MIN_PACK_SPEEDUP}x faster "
        f"than rebuild-from-spec, got {speedup:.1f}x "
        f"({rebuild['seconds']:.2f}s vs {mapped['seconds']:.2f}s)")


def test_freeze_is_cheaper_than_one_rebuild():
    """Freezing must amortize immediately: freeze < one worker rebuild.

    The 5x gate above covers the per-worker win; this one covers the
    parent's up-front cost, which must be recouped by the *first* worker
    for ``world_source="auto"`` to be a safe default at any pool width.
    A small world keeps this check cheap — the freeze cost is dominated
    by per-domain encoding, so the ratio transfers to larger scales.
    """
    world = World(WorldConfig.small(seed=WORLD_SEED))
    scanner = Lumscan(LuminatiClient(world), seed=SCAN_SEED)
    started = time.perf_counter()
    pack = scanner.freeze_world_pack()
    freeze_seconds = time.perf_counter() - started
    try:
        rebuild = _best(scanner.spawn_spec().build, 1)
    finally:
        pack.release()
    print(f"\nfreeze (small): {freeze_seconds:.2f}s vs one worker rebuild "
          f"{rebuild['seconds']:.2f}s")
    write_trajectory("world", "freeze_amortization", {
        "world_size": len(world.population),
        "freeze_seconds": round(freeze_seconds, 3),
        "rebuild_seconds": round(rebuild["seconds"], 3),
    })
    assert freeze_seconds < rebuild["seconds"], (
        f"freezing ({freeze_seconds:.2f}s) should cost less than one "
        f"worker rebuild ({rebuild['seconds']:.2f}s)")
