"""Ablation: length-cutoff sweep (§4.1.5).

The paper notes the cutoff choice is "relatively arbitrary between 5%
and 50%" — both ends lose roughly 20% of block pages.  This bench sweeps
the cutoff and checks the recall surface is flat in the middle and
degrades only at extreme cutoffs.
"""

from repro.core.metrics import overall_recall, recall_by_fingerprint


def _recall_at(top10k, cutoff):
    rows = recall_by_fingerprint(
        top10k.initial, top10k.representatives, cutoff=cutoff,
        registry=top10k.registry,
        restrict_countries=top10k.top_blocking_countries[:20])
    return overall_recall(rows)


def test_cutoff_sweep(benchmark, top10k):
    def sweep():
        return {cutoff: _recall_at(top10k, cutoff)
                for cutoff in (0.05, 0.15, 0.30, 0.50, 0.80, 0.95)}

    recalls = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Monotone: a looser (smaller) cutoff can only flag more pages.
    assert recalls[0.05] >= recalls[0.30] >= recalls[0.80]
    # The 5%-50% plateau from the paper: similar recall across the range.
    assert recalls[0.05] - recalls[0.50] < 0.35
    # Extreme cutoffs hurt.
    assert recalls[0.95] < recalls[0.30]
