"""Table 8 — geoblocked sites by top category (Top 1M sample)."""

from repro.analysis.tables import table8


def test_table8(benchmark, top1m, fortiguard):
    table = benchmark(table8, top1m, fortiguard)
    total = table.rows[-1]
    assert total[0] == "Total"
    assert total[1] == len(top1m.sampled_domains)
    # Paper: 4.4% of sampled CDN customers geoblock somewhere; synthetic
    # worlds land in the same regime.
    rate = total[2] / total[1]
    assert 0.005 < rate < 0.15
