"""Table 7 — geoblocking among Top 1M sites, by country and CDN."""

from repro.analysis.tables import table7


def test_table7(benchmark, top1m):
    table = benchmark(table7, top1m)
    ordered = [row[0] for row in table.rows if row[0] not in ("Total", "Other")]
    # Paper shape: Iran/Sudan/Syria/Cuba lead by raw count.
    if ordered:
        assert ordered[0] in ("IR", "SY", "SD", "CU")
    for row in table.rows:
        assert row[4] == row[1] + row[2] + row[3]


def test_provider_rates_shape(benchmark, top1m):
    rates = benchmark(top1m.provider_rates)
    # AppEngine customers geoblock at the highest rate (16.8% in §5.2.1);
    # Cloudflare and CloudFront are in the low single digits.
    def rate(provider):
        blocked, tested = rates.get(provider, (0, 0))
        return blocked / tested if tested else 0.0
    assert rate("appengine") > rate("cloudflare")
    assert rate("appengine") > rate("cloudfront")
    assert 0.05 < rate("appengine") < 0.8
