"""§7.3 extension — application-layer discrimination survey."""

from repro.core.appdiff import run_appdiff_study
from repro.proxynet.luminati import LuminatiClient


def test_appdiff_survey(benchmark, world):
    commerce = [d.name for d in world.population
                if d.category in ("Shopping", "Travel", "Auctions",
                                  "Personal Vehicles")
                and not d.dead and not d.redirect_loop
                and d.name not in world.policies][:40]
    countries = world.registry.luminati_codes()[:12]
    # Widen coverage with the countries ground truth actually degrades, so
    # precision is measurable.
    extra = set()
    for name in commerce:
        degradation = world.degradations.get(name)
        if degradation:
            extra |= set(list(degradation.remove_account_countries)[:2])
            extra |= set(list(degradation.price_multipliers)[:2])
    countries = sorted(set(countries) | {c for c in extra
                                         if c in world.registry
                                         and world.registry.get(c).luminati})
    luminati = LuminatiClient(world)
    result = benchmark.pedantic(run_appdiff_study,
                                args=(luminati, commerce, countries),
                                kwargs={"samples": 2},
                                rounds=1, iterations=1)
    # Every finding must be a genuine degradation (high precision),
    # counting both sides of a price split (see appdiff.is_genuine).
    from repro.core.appdiff import is_genuine
    if result.findings:
        genuine = sum(
            1 for finding in result.findings
            if is_genuine(world.degradations.get(finding.domain), finding))
        assert genuine / len(result.findings) >= 0.8
