"""Ablation: percentage vs raw length difference (§4.1.5).

The paper found raw byte cutoffs "not as effective": percentages
normalize page length, while raw differences excessively penalize long
pages.  This bench compares the false-alarm behaviour of both modes on
the same scan data.
"""

from repro.core.lengths import extract_outliers


def test_raw_vs_percentage(benchmark, top10k):
    reps = top10k.representatives

    def both_modes():
        pct = extract_outliers(top10k.initial, reps, cutoff=0.30)
        raw = extract_outliers(top10k.initial, reps, raw_cutoff=20_000)
        return pct, raw

    pct, raw = benchmark.pedantic(both_modes, rounds=1, iterations=1)

    def false_alarm_rate(outliers):
        noise = sum(1 for o in outliers
                    if o.sample.status == 200 and o.sample.body is None)
        return noise / len(outliers) if outliers else 0.0

    # Raw cutoffs flag large pages' natural variation (status-200, long
    # bodies) at a higher rate than the percentage mode.
    assert false_alarm_rate(raw) >= false_alarm_rate(pct)
    # And the percentage mode still catches block pages.
    assert any(o.sample.body is not None for o in pct)
