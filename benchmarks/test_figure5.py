"""Figure 5 — Enterprise geoblock-rule activations over time."""

from repro.analysis.figures import figure5


def test_figure5(benchmark, cf_rules):
    figure = benchmark(figure5, cf_rules)
    # All five sanctioned-bundle series exist and are cumulative.
    assert set(figure.series) == {"KP", "IR", "SY", "SD", "CU"}
    finals = {}
    for country, points in figure.series.items():
        ys = [y for _, y in points]
        assert ys == sorted(ys)
        finals[country] = ys[-1] if ys else 0
    # Paper shape: the bundle curves move together — ending counts are the
    # same order of magnitude, with KP/IR on top.
    top = max(finals, key=finals.get)
    assert top in ("KP", "IR")
    assert min(finals.values()) > 0
    assert max(finals.values()) / max(1, min(finals.values())) < 12
