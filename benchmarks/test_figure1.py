"""Figure 1 — consistency CDF for various sample sizes."""

from repro.analysis.figures import figure1, figure1_stat


def test_figure1(benchmark, pools):
    figure = benchmark(figure1, pools, sizes=(1, 3, 5, 10, 20), draws=300)
    # Paper headline: at 20 samples only ~3.9% of draws fall below an 80%
    # geoblocking rate; the synthetic number must stay small.
    stat = figure1_stat(figure, size=20)
    assert stat < 0.25
    # Larger samples concentrate: the below-80% mass shrinks with size.
    small = figure1_stat(figure, size=1)
    assert stat <= small + 1e-9
