"""Ablation: initial sample count, end to end (§4.1.5 / Figure 3).

Re-runs the Top-10K pipeline with 1, 3, and 5 initial samples per pair
on a small world and measures ground-truth recall of the confirmed set.
The paper picked 3 after showing a single sample misses too much and
more than 3 buys little; the same tradeoff must appear here.
"""

from repro.core.metrics import score_confirmed_blocks
from repro.core.pipeline import StudyConfig, run_top10k_study
from repro.websim.world import World, WorldConfig


def test_initial_sample_ablation(benchmark):
    def sweep():
        results = {}
        for samples in (1, 3, 5):
            world = World(WorldConfig.nano())
            config = StudyConfig(samples_initial=samples)
            result = run_top10k_study(world, config=config)
            score = score_confirmed_blocks(world, result.confirmed,
                                           result.safe_domains,
                                           result.countries)
            results[samples] = score
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # More initial samples can only help recall (more chances to observe
    # a block page before confirmation).
    assert results[5].recall >= results[1].recall
    # Precision stays high regardless — confirmation does that work.
    for score in results.values():
        assert score.precision >= 0.9
