"""§7.1 — OONI confounding analysis."""

from repro.core.identify import identify_by_ns
from repro.datasets.citizenlab import CitizenLabList
from repro.datasets.ooni import (
    OONICorpus,
    control_blocking_stats,
    find_geoblock_confounding,
)


def test_ooni_confounding(benchmark, world, top10k):
    citizenlab = CitizenLabList(world.population, world.taxonomy,
                                seed=world.config.seed)
    test_list = citizenlab.domains()
    corpus = OONICorpus.generate(world, test_list,
                                 measurements_per_pair=1,
                                 seed=world.config.seed)

    findings = benchmark(find_geoblock_confounding, corpus, len(test_list),
                         top10k.registry)
    # Paper shape: a meaningful fraction (9%) of the list shows CDN
    # geoblock pages somewhere; synthetic lists land in low percentages.
    assert 0.0 < findings.domain_fraction < 0.5
    assert findings.geoblock_measurements > 0


def test_ooni_control_blocking(benchmark, world):
    citizenlab = CitizenLabList(world.population, world.taxonomy,
                                seed=world.config.seed)
    test_list = citizenlab.domains()
    corpus = OONICorpus.generate(world, test_list,
                                 countries=["IR", "CN", "RU", "US", "DE"],
                                 measurements_per_pair=2,
                                 seed=world.config.seed)
    ns = identify_by_ns(world.dns, test_list)
    cdn = ns["cloudflare"] | ns["akamai"]
    stats = benchmark(control_blocking_stats, corpus, cdn, None)
    # Paper shape: control-request blocking (Tor fate-sharing) exceeds the
    # local-blocked-control-ok signal (36,028 vs 14,380).
    assert stats.control_403 >= stats.local_blocked_control_ok
