"""Figure 2 — relative sizes of block pages vs representative pages."""

import statistics

from repro.analysis.figures import figure2


def test_figure2(benchmark, top10k):
    figure = benchmark(
        figure2, top10k.initial, top10k.top_blocking_countries[:20],
        top10k.registry)
    blocked = [x for x, _ in figure.series["blocked pages"]]
    everything = [x for x, _ in figure.series["all pages"]]
    assert blocked and everything
    # Paper shape: block pages sit far to the right (much shorter than the
    # representative page); ordinary samples cluster near zero difference.
    assert statistics.median(blocked) > 0.5
    assert statistics.median(everything) < 0.3
