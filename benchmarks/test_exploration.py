"""§3.1 exploration: VPS curl/ZGrab study and header-realism ablation."""

from repro.core.pipeline import run_vps_exploration


def test_vps_exploration(benchmark, world, top10k):
    result = benchmark.pedantic(
        run_vps_exploration, args=(world,),
        kwargs={"registry": top10k.registry}, rounds=1, iterations=1)
    # Paper shape: Iran produces far more 403s than the US control
    # (707 vs 69 in §3.1).  The geoblocking-driven part of the signal is
    # the classified block pages; raw 403s also carry symmetric bot noise.
    assert result.iran_blockpage_count >= result.us_blockpage_count
    assert result.iran_blockpage_count > 0
    assert result.flagged_pairs
    assert (len(result.genuine_pairs) + len(result.false_positive_pairs)
            == len(result.flagged_pairs))


def test_header_realism_ablation(benchmark, world):
    """Lumscan's full headers vs ZGrab's UA-only profile (§3.2, §7.3).

    The ablation measures bot-detection hits for both header profiles on
    the same protected domains — the reason Lumscan sends full headers.
    """
    from repro.proxynet.vps import VPSFleet

    fleet = VPSFleet(world)
    client = fleet.get("US")
    protected = [d for d in world.population
                 if d.bot_protection and not d.dead and not d.redirect_loop
                 and d.name not in world.policies and not d.censored_in][:12]

    def run_profiles():
        zgrab_hits = browser_hits = 0
        for domain in protected:
            for _ in range(4):
                result = client.fetch_zgrab(domain.url)
                if result.ok and result.response.status == 403:
                    zgrab_hits += 1
                result = client.fetch_browser(domain.url)
                if result.ok and result.response.status == 403:
                    browser_hits += 1
        return zgrab_hits, browser_hits

    zgrab_hits, browser_hits = benchmark.pedantic(run_profiles, rounds=1,
                                                  iterations=1)
    assert zgrab_hits > browser_hits * 3
