"""Micro-benchmarks for the simulation hot paths."""

from repro.core.classify import classify_body
from repro.httpsim.messages import Request
from repro.httpsim.url import parse_url
from repro.httpsim.useragent import browser_headers
from repro.lumscan.scanner import Lumscan
from repro.proxynet.luminati import LuminatiClient


def test_world_fetch_throughput(benchmark, world):
    domains = [d for d in world.population.top(50)
               if not d.dead and not d.redirect_loop][:20]
    requests = [Request(url=parse_url(d.url), headers=browser_headers())
                for d in domains]
    ip = world.residential_address("US")
    state = {"i": 0}

    def fetch_one():
        request = requests[state["i"] % len(requests)]
        state["i"] += 1
        try:
            return world.fetch(request, ip)
        except Exception:
            return None

    benchmark(fetch_one)


def test_lumscan_probe_throughput(benchmark, world):
    scanner = Lumscan(LuminatiClient(world), seed=3)
    domain = next(d for d in world.population
                  if not d.dead and not d.redirect_loop
                  and d.name not in world.policies and not d.censored_in)

    benchmark(scanner.probe, domain.url, "US")


def test_classify_throughput(benchmark, world, top10k):
    bodies = [o.sample.body for o in top10k.outliers
              if o.sample.body is not None][:50]
    assert bodies
    state = {"i": 0}

    def classify_one():
        body = bodies[state["i"] % len(bodies)]
        state["i"] += 1
        return classify_body(body, top10k.registry)

    benchmark(classify_one)
