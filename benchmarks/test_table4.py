"""Table 4 — geoblocked sites by category (Top 10K)."""

from repro.analysis.tables import table4


def test_table4(benchmark, top10k, fortiguard):
    table = benchmark(table4, top10k, fortiguard)
    total = table.rows[-1]
    assert total[1] == len(top10k.safe_domains)
    assert total[2] == len(top10k.confirmed_domains)
    # Paper shape: overall blocked fraction is small (1.6% in Table 4).
    rate = total[2] / total[1]
    assert 0.0 < rate < 0.10
