"""Throughput benches for dataset and report persistence."""

from repro.lumscan.serialize import dump_dataset, load_dataset


def _dataset_from(top10k, limit=50_000):
    # Reuse a slice of the real study dataset.
    from repro.lumscan.records import ScanDataset
    data = ScanDataset()
    for index in range(min(limit, len(top10k.initial))):
        sample = top10k.initial.row(index)
        data.append(sample.domain, sample.country, sample.status,
                    sample.length, sample.body, error=sample.error,
                    interfered=sample.interfered)
    return data


def test_dump_throughput(benchmark, top10k, tmp_path_factory):
    data = _dataset_from(top10k)
    path = tmp_path_factory.mktemp("bench") / "scan.jsonl"
    benchmark.pedantic(dump_dataset, args=(data, path), rounds=2, iterations=1)


def test_load_throughput(benchmark, top10k, tmp_path_factory):
    data = _dataset_from(top10k)
    path = tmp_path_factory.mktemp("bench") / "scan.jsonl"
    dump_dataset(data, path)
    loaded = benchmark.pedantic(load_dataset, args=(path,),
                                rounds=2, iterations=1)
    assert len(loaded) == len(data)


def test_svg_render_throughput(benchmark, top10k):
    from repro.analysis.figures import figure2
    from repro.analysis.svgplot import render_svg
    figure = figure2(top10k.initial, top10k.top_blocking_countries[:20],
                     top10k.registry)
    svg = benchmark(render_svg, figure)
    assert svg.startswith("<svg")
