"""Session-scoped study artifacts shared by all benchmarks.

Each benchmark regenerates one paper artifact (table/figure) and asserts
its *shape* against the paper, so the benchmark suite doubles as the
reproduction harness.  The expensive scans run once per session; the
benchmarked callables are the artifact-regeneration steps.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentSuite
from repro.core.pipeline import (
    build_observation_pools,
    run_top10k_study,
    run_top1m_study,
)
from repro.datasets.cloudflare_rules import CloudflareRuleDataset
from repro.datasets.fortiguard import FortiGuardClient
from repro.lumscan.scanner import Lumscan
from repro.proxynet.luminati import LuminatiClient
from repro.websim.world import World, WorldConfig


@pytest.fixture(scope="session")
def world() -> World:
    return World(WorldConfig.tiny())


@pytest.fixture(scope="session")
def top10k(world):
    return run_top10k_study(world)


@pytest.fixture(scope="session")
def top1m(world, top10k):
    return run_top1m_study(world, registry=top10k.registry)


@pytest.fixture(scope="session")
def fortiguard(world):
    return FortiGuardClient(world.population, world.taxonomy,
                            seed=world.config.seed)


@pytest.fixture(scope="session")
def pools(world, top10k):
    pairs = [(c.domain, c.country) for c in top10k.confirmed][:20]
    scanner = Lumscan(LuminatiClient(world), seed=1)
    return build_observation_pools(world, scanner, pairs, top10k.registry,
                                   samples=100)


@pytest.fixture(scope="session")
def cf_rules():
    return CloudflareRuleDataset.generate(n_zones=80_000, seed=7)
