"""Figure 3 — false-negative rate vs initial sample size."""

from repro.analysis.figures import figure3


def test_figure3(benchmark, pools):
    figure = benchmark(figure3, pools, sizes=(1, 2, 3, 5, 10), draws=400)
    curve = dict(figure.series["false negatives"])
    # Monotone non-increasing in sample size.
    assert curve[1.0] >= curve[3.0] >= curve[10.0]
    # Paper headline: 3 initial samples miss only ~1.7% of known
    # geoblocking pairs; the synthetic pipeline must land in the same
    # small-single-digit regime.
    assert curve[3.0] < 0.15
