"""Columnar-kernel benchmark: vectorized ScanDataset vs scalar reference.

The tier-1 suite proves the numpy kernels agree with the retained scalar
implementations (``repro.core.reference``); this benchmark proves they
are worth having.  A synthetic 120k-row scan (600 domains x 40 countries
x 5 samples, paper-scale for one Top-10K country slice) is pushed
through both paths:

* aggregation — ``count_status``, ``error_rate_by_domain``,
  ``response_rate_by_country``, ``lengths_by_domain``;
* outlier extraction — ``representative_lengths`` + ``extract_outliers``
  (the §4.1.2 length heuristic).

Both must be at least 5x faster than the row-at-a-time reference.  The
clustering check then asserts the inverted-index sparse join and the
dense blocked matmul produce *bit-identical* labels on the discovery
corpus (real simulated block pages, not synthetic text).

Timings land in ``BENCH_columnar.json`` at the repo root so CI keeps a
trajectory of the speedup across commits.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import reference
from repro.core.lengths import extract_outliers, representative_lengths
from repro.lumscan.records import NO_RESPONSE, ScanDataset
from repro.textutil.linkage import single_link_clusters
from repro.textutil.tfidf import TfidfVectorizer

ROWS = 120_000
DOMAINS = 600
COUNTRIES = 40
MIN_SPEEDUP = 5.0
_RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_columnar.json"


def _synthetic_dataset(rows: int = ROWS, seed: int = 17) -> ScanDataset:
    """A paper-shaped scan: mostly 200s, some 403 block pages, some errors."""
    rng = np.random.default_rng(seed)
    dataset = ScanDataset()
    domains = [f"domain{i:04d}.example" for i in range(DOMAINS)]
    countries = [f"C{i:02d}" for i in range(COUNTRIES)]
    # ~1 in 16 probes hits a block page, ~1 in 16 times out — paper-like
    # proportions, so the outlier set stays a small fraction of the scan.
    statuses = rng.choice([200] * 14 + [403, NO_RESPONSE],
                          size=rows).tolist()
    # Ordinary pages sit within 10% of their domain's typical size (well
    # inside the 30% cutoff); block pages are tiny and get flagged.
    base = rng.integers(8_000, 60_000, size=DOMAINS)
    jitter = rng.uniform(0.90, 1.0, size=rows)
    for i in range(rows):
        status = statuses[i]
        d = i % DOMAINS
        domain = domains[d]
        country = countries[(i // DOMAINS) % COUNTRIES]
        if status == NO_RESPONSE:
            dataset.append(domain, country, NO_RESPONSE, 0, None,
                           error="timeout")
        elif status == 403:
            dataset.append(domain, country, 403, 451,
                           "<html>error code 1009 access denied</html>")
        else:
            dataset.append(domain, country, 200, int(base[d] * jitter[i]),
                           None)
    return dataset


def _time(fn, repeat: int = 3) -> float:
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _write_trajectory(key: str, payload: dict) -> None:
    record = {}
    if _RESULTS_PATH.exists():
        try:
            record = json.loads(_RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            record = {}
    record[key] = payload
    _RESULTS_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def big_dataset() -> ScanDataset:
    return _synthetic_dataset()


def test_aggregation_speedup(big_dataset):
    dataset = big_dataset

    def scalar():
        return (reference.count_status(dataset, 403),
                reference.error_rate_by_domain(dataset),
                reference.response_rate_by_country(dataset),
                reference.lengths_by_domain(dataset))

    def vectorized():
        return (dataset.count_status(403),
                dataset.error_rate_by_domain(),
                dataset.response_rate_by_country(),
                dataset.lengths_by_domain())

    assert scalar() == vectorized()
    scalar_s = _time(scalar)
    vectorized_s = _time(vectorized)
    speedup = scalar_s / vectorized_s
    _write_trajectory("aggregation", {
        "rows": len(dataset),
        "scalar_s": round(scalar_s, 4),
        "vectorized_s": round(vectorized_s, 4),
        "speedup": round(speedup, 1),
    })
    assert speedup >= MIN_SPEEDUP, (
        f"aggregation kernels only {speedup:.1f}x faster "
        f"({scalar_s:.3f}s scalar vs {vectorized_s:.3f}s vectorized)")


def test_outlier_extraction_speedup(big_dataset):
    dataset = big_dataset
    reps = representative_lengths(dataset)
    assert reps == reference.representative_lengths(dataset)

    def scalar():
        return reference.extract_outliers(dataset, reps)

    def vectorized():
        return extract_outliers(dataset, reps)

    assert scalar() == vectorized()
    scalar_s = _time(scalar)
    vectorized_s = _time(vectorized)
    speedup = scalar_s / vectorized_s
    _write_trajectory("outlier_extraction", {
        "rows": len(dataset),
        "outliers": len(vectorized()),
        "scalar_s": round(scalar_s, 4),
        "vectorized_s": round(vectorized_s, 4),
        "speedup": round(speedup, 1),
    })
    assert speedup >= MIN_SPEEDUP, (
        f"outlier extraction only {speedup:.1f}x faster "
        f"({scalar_s:.3f}s scalar vs {vectorized_s:.3f}s vectorized)")


def test_sparse_join_bit_identical(world, top10k):
    """Sparse-join and dense clustering labels match on the discovery corpus."""
    bodies = sorted({o.sample.body for o in top10k.outliers
                     if o.sample.body is not None})
    assert len(bodies) >= 2
    matrix = TfidfVectorizer(min_df=2).fit_transform(bodies)
    dense_s = _time(lambda: single_link_clusters(matrix, join="dense"),
                    repeat=1)
    sparse_s = _time(lambda: single_link_clusters(matrix, join="sparse"),
                     repeat=1)
    dense = single_link_clusters(matrix, join="dense")
    sparse_labels = single_link_clusters(matrix, join="sparse")
    auto = single_link_clusters(matrix, join="auto")
    assert dense == sparse_labels == auto
    _write_trajectory("clustering", {
        "documents": len(bodies),
        "clusters": len(set(dense)),
        "dense_s": round(dense_s, 4),
        "sparse_s": round(sparse_s, 4),
        "bit_identical": True,
    })
