"""Table 9 — Cloudflare country-rule rates by account tier."""

import pytest

from repro.analysis.tables import table9
from repro.datasets.cloudflare_rules import BASELINE_TARGETS


def test_table9(benchmark, cf_rules):
    table = benchmark(table9, cf_rules)
    assert table.rows[0][0] == "Baseline"
    baselines = cf_rules.baseline_rates()
    # Measured baselines track the published Table 9 row.
    for tier, target in BASELINE_TARGETS.items():
        assert baselines[tier] == pytest.approx(target, rel=0.25)
    # Enterprise zones geoblock an order of magnitude more than free zones.
    assert baselines["enterprise"] / baselines["free"] > 10


def test_table9_country_ordering(benchmark, cf_rules):
    rates = benchmark(cf_rules.country_rates)
    enterprise_top = max(rates, key=lambda c: rates[c]["enterprise"])
    free_top = max(rates, key=lambda c: rates[c]["free"])
    # Paper: sanctions lead the enterprise column; CN/RU lead free.
    assert enterprise_top in ("KP", "IR", "SY", "SD")
    assert free_top in ("CN", "RU")
