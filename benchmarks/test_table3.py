"""Table 3 — most geoblocked categories by CDN (Top 10K)."""

from repro.analysis.tables import table3


def test_table3(benchmark, top10k, fortiguard):
    table = benchmark(table3, top10k, fortiguard)
    totals = table.rows[-1]
    assert totals[0] == "Total"
    # Row sums must be internally consistent.
    for row in table.rows:
        assert row[4] == row[1] + row[2] + row[3]
