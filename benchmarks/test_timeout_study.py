"""§7.3 extension — timeout-based geoblocking detection."""

from repro.core.timeouts import run_timeout_study
from repro.lumscan.scanner import Lumscan
from repro.proxynet.luminati import LuminatiClient
from repro.websim.policies import ACTION_DROP


def test_timeout_study(benchmark, world, top10k):
    scanner = Lumscan(LuminatiClient(world), seed=13)
    study = benchmark.pedantic(run_timeout_study,
                               args=(scanner, top10k.initial),
                               rounds=1, iterations=1)
    # Candidates exist (flaky pairs + genuine droppers); confirmation
    # rejects the noise.
    assert len(study.confirmed) <= len(study.candidates)
    # Confirmed detections are dominated by genuine drop policies.
    drop_truth = {name for name, policy in world.policies.items()
                  if policy.action == ACTION_DROP}
    if study.confirmed:
        hits = sum(1 for c in study.confirmed if c.domain in drop_truth)
        assert hits / len(study.confirmed) >= 0.5
