"""Scan-engine wall-clock benchmark: parallel vs. serial Top-10K stage.

The simulator answers probes in microseconds, but a real scan is
latency-bound: each probe spends most of its time waiting on the
residential exit's round trip (the paper's scans push ~4.2M probes
through Luminati).  ``SimulatedLatencyClient`` restores that property by
sleeping a fixed per-request latency inside the client, so this
benchmark measures exactly what the engine is for — overlapping network
wait across workers — while the deterministic merge keeps the output
byte-identical to the serial scan.

The latency is calibrated from the measured CPU cost of a serial scan
(20× the per-probe CPU time, floored at 4 ms), keeping the benchmark
honest on fast and slow hosts alike: the speedup ceiling at 4 workers
is ~3.8×, and the assertion requires >= 3×.
"""

from __future__ import annotations

import time

from repro.lumscan.engine import ScanEngine
from repro.lumscan.scanner import Lumscan
from repro.proxynet.luminati import LuminatiClient

SEED = 11
SAMPLES = 2
COUNTRIES = ["US", "DE", "IR"]
WORKERS = 4
MIN_SPEEDUP = 3.0


class SimulatedLatencyClient(LuminatiClient):
    """LuminatiClient with a fixed per-request network round trip."""

    def __init__(self, world, latency: float) -> None:
        super().__init__(world)
        self.latency = latency

    def request(self, *args, **kwargs):
        time.sleep(self.latency)
        return super().request(*args, **kwargs)


def _scan_urls(world, n=20):
    urls = []
    for domain in world.population.top(200):
        if not domain.dead and not domain.redirect_loop:
            urls.append(domain.url)
            if len(urls) == n:
                break
    return urls


def _rows(data):
    return [data.row(i) for i in range(len(data))]


def _calibrate_latency(world, urls) -> float:
    """Per-request latency = 20x the measured per-probe CPU cost."""
    scanner = Lumscan(LuminatiClient(world), seed=SEED)
    started = time.perf_counter()
    data = scanner.scan(urls, COUNTRIES, samples=SAMPLES)
    per_probe = (time.perf_counter() - started) / len(data)
    return max(0.004, 20.0 * per_probe)


def test_parallel_scan_speedup(world):
    urls = _scan_urls(world)
    latency = _calibrate_latency(world, urls)

    serial_scanner = Lumscan(SimulatedLatencyClient(world, latency), seed=SEED)
    started = time.perf_counter()
    serial = serial_scanner.scan(urls, COUNTRIES, samples=SAMPLES)
    serial_time = time.perf_counter() - started

    engine = ScanEngine(Lumscan(SimulatedLatencyClient(world, latency),
                                seed=SEED),
                        workers=WORKERS, chunk_size=4)
    started = time.perf_counter()
    parallel = engine.scan(urls, COUNTRIES, samples=SAMPLES)
    parallel_time = time.perf_counter() - started

    # Correctness first: the parallel dataset is identical to the serial
    # one, record for record.
    assert _rows(parallel) == _rows(serial)

    speedup = serial_time / parallel_time
    print(f"\nscan stage: serial {serial_time:.2f}s, "
          f"{WORKERS} workers {parallel_time:.2f}s, speedup {speedup:.2f}x "
          f"(latency {latency * 1000:.1f} ms/probe)")
    assert speedup >= MIN_SPEEDUP, (
        f"expected >= {MIN_SPEEDUP}x speedup at {WORKERS} workers, "
        f"got {speedup:.2f}x")


def test_engine_overhead_negligible_serial(world):
    """workers=1 engine path adds no measurable cost over the plain loop."""
    urls = _scan_urls(world, n=10)
    scanner = Lumscan(LuminatiClient(world), seed=SEED)

    started = time.perf_counter()
    direct = scanner.scan(urls, COUNTRIES, samples=SAMPLES)
    direct_time = time.perf_counter() - started

    engine = ScanEngine(Lumscan(LuminatiClient(world), seed=SEED), workers=1)
    started = time.perf_counter()
    engined = engine.scan(urls, COUNTRIES, samples=SAMPLES)
    engine_time = time.perf_counter() - started

    assert _rows(engined) == _rows(direct)
    # Generous bound: the engine path must stay within 2x of the plain
    # loop even under timer noise at these tiny durations.
    assert engine_time <= direct_time * 2 + 0.05
