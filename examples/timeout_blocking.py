#!/usr/bin/env python3
"""Scenario: detecting timeout-based geoblocking (§7.3 future work).

Some operators don't serve a block page — they silently drop connections
from countries they exclude, indistinguishable at first glance from a
flaky residential path or a censor's packet drops.  The paper flags this
as future work; this example runs the detector this reproduction adds:

1. scan a slice of the web, 3 samples per (domain, country);
2. flag pairs that failed every sample while the domain was alive in
   many other countries;
3. reconfirm with 20 more samples (a flaky path survives that streak
   rarely; a drop policy always);
4. separate detections in censoring countries (unattributable) from the
   rest, then grade everything against the simulator's ground truth.

Run:  python examples/timeout_blocking.py
"""

from repro import World, WorldConfig
from repro.core.timeouts import run_timeout_study
from repro.lumscan.scanner import Lumscan
from repro.proxynet.luminati import LuminatiClient
from repro.websim.policies import ACTION_DROP


def main() -> None:
    world = World(WorldConfig.tiny())
    droppers = {name for name, policy in world.policies.items()
                if policy.action == ACTION_DROP}
    print(f"Ground truth: {len(droppers)} domains drop connections "
          "from blocked countries\n")

    scanner = Lumscan(LuminatiClient(world), seed=1)
    domains = [d.url for d in world.population.top(600) if not d.dead]
    countries = world.registry.luminati_codes()
    print(f"Scanning {len(domains)} domains x {len(countries)} countries "
          "x 3 samples...")
    initial = scanner.scan(domains, countries, samples=3)

    study = run_timeout_study(scanner, initial, min_responsive_countries=5)
    print(f"  candidates (all-fail pairs, domain alive elsewhere): "
          f"{len(study.candidates)}")
    print(f"  confirmed after 20-sample streak:                    "
          f"{len(study.confirmed)}")
    print(f"  ...outside censoring countries (attributable):       "
          f"{len(study.unambiguous)}\n")

    true_hits = 0
    unambiguous_hits = 0
    for block in study.confirmed:
        genuine = (block.domain in droppers
                   and world.is_geoblocked(block.domain, block.country, epoch=1))
        flag = "DROP-POLICY" if genuine else (
            "censorship?" if block.ambiguous_censorship else "noise")
        if genuine:
            true_hits += 1
            if not block.ambiguous_censorship:
                unambiguous_hits += 1
        print(f"  {block.domain:24s} {block.country}  [{flag}]")

    # Detections in censoring countries are *correct* timeout detections
    # but unattributable: a censor's packet drops and an operator's
    # connection drops look identical.  Precision is therefore scored on
    # the attributable (unambiguous) subset.
    unambiguous = study.unambiguous
    if unambiguous:
        print(f"\nPrecision on attributable detections: "
              f"{unambiguous_hits}/{len(unambiguous)} "
              f"= {unambiguous_hits / len(unambiguous):.0%}")
    ambiguous = len(study.confirmed) - len(unambiguous)
    if ambiguous:
        print(f"Detections in censoring countries (unattributable): "
              f"{ambiguous} — censors' drops look identical to operators'.")
    print("\nAs the paper predicts, timeouts are a much harder signal than "
          "block\npages: censorship and residential noise both masquerade "
          "as drops.")


if __name__ == "__main__":
    main()
