#!/usr/bin/env python3
"""Scenario: how much does geoblocking confound censorship measurement?

Section 7.1 of the paper shows that 9% of the Citizen Lab block list —
the de-facto standard probe list for censorship measurement — returned a
*CDN geoblock page* somewhere, so naive anomaly detection would blame
nation-state censors for blocks that site owners configured themselves.

This example generates a simulated OONI corpus over the synthetic
Citizen Lab list and separates the three things that actually happened
in each anomalous measurement: nation-state censorship, server-side
geoblocking, and Tor-blocked control requests.

Run:  python examples/censorship_confounding.py
"""

from repro import World, WorldConfig
from repro.core.classify import classify_body
from repro.core.identify import identify_by_ns
from repro.datasets.citizenlab import CitizenLabList
from repro.datasets.ooni import (
    OONICorpus,
    control_blocking_stats,
    find_geoblock_confounding,
)

COUNTRIES = ["IR", "CN", "RU", "SY", "TR", "US", "DE", "BR", "NG", "IN"]


def main() -> None:
    world = World(WorldConfig.tiny())
    citizenlab = CitizenLabList(world.population, world.taxonomy,
                                seed=world.config.seed)
    test_list = citizenlab.domains()
    print(f"Citizen Lab test list: {len(test_list)} domains")

    print(f"Generating OONI-style measurements from {len(COUNTRIES)} "
          "countries (2 per pair)...")
    corpus = OONICorpus.generate(world, test_list, countries=COUNTRIES,
                                 measurements_per_pair=2,
                                 seed=world.config.seed)
    print(f"  {len(corpus)} measurements\n")

    # Naive anomaly detection: local blocked, control fine.
    anomalies = [m for m in corpus if m.local_blocked and not m.control_blocked]
    print(f"Naive anomalies (local blocked, control ok): {len(anomalies)}")

    # What were those anomalies, really?
    censorship = geoblock = other = 0
    for m in anomalies:
        if m.local_body is None:
            other += 1
            continue
        verdict = classify_body(m.local_body)
        if verdict.kind == "censorship":
            censorship += 1
        elif verdict.kind == "explicit-geoblock":
            geoblock += 1
        else:
            other += 1
    print(f"  nation-state censorship pages: {censorship}")
    print(f"  CDN geoblock pages:            {geoblock}  <- the confounder")
    print(f"  other (timeouts, bot pages):   {other}\n")

    findings = find_geoblock_confounding(corpus, len(test_list))
    print(f"Domains on the list with >= 1 geoblock observation: "
          f"{len(findings.geoblock_domains)} "
          f"({findings.domain_fraction:.1%} of the list; paper: 9%)")
    print(f"Geoblock observations span {len(findings.geoblock_countries)} "
          "countries\n")

    ns = identify_by_ns(world.dns, test_list)
    cdn_domains = ns["cloudflare"] | ns["akamai"]
    stats = control_blocking_stats(corpus, cdn_domains)
    print("Control-request blocking on Akamai/Cloudflare-fronted domains:")
    print(f"  control returned 403:                {stats.control_403}")
    print(f"  local blocked while control ok:      "
          f"{stats.local_blocked_control_ok}")
    print(f"  block pages with a blocked control:  "
          f"{stats.blockpages_with_blocked_control}")
    print("\nAs in the paper, control blocking (largely Tor-exit blocking) "
          "dwarfs\nthe local-only signal, so saved OONI reports cannot "
          "distinguish\n'site down' from 'control blocked'.")


if __name__ == "__main__":
    main()
