#!/usr/bin/env python3
"""Scenario: express and evaluate Cloudflare-style access rules.

Section 6 of the paper describes Firewall Access Rules: customers can
whitelist, block, challenge, or JS-challenge visitors by IP address,
country, or AS number.  This example builds a zone's rule set the way a
site operator would — block sanctioned countries, challenge a risky ISP's
AS, whitelist the office IP — and evaluates simulated visitors against
it, cross-checking the country rules against the simulation's own
ground-truth policy representation.

Run:  python examples/firewall_rules_engine.py
"""

from repro import World, WorldConfig
from repro.datasets.firewall_rules import (
    ZoneRuleSet,
    evaluate_visitor,
    rules_from_geopolicy,
)
from repro.netsim.asn import ASRegistry


def main() -> None:
    world = World(WorldConfig.tiny())
    asn_registry = ASRegistry.build_for_world(world.allocator,
                                              seed=world.config.seed)

    # A site operator's policy: sanctions compliance + abuse mitigation.
    rules = ZoneRuleSet()
    for country in ("IR", "SY", "SD", "CU", "KP"):
        rules.add("block", "country", country)
    rules.add("challenge", "country", "CN")
    ru_isp = asn_registry.ases(country="RU", kind="isp")[0]
    rules.add("block", "asn", f"AS{ru_isp.asn}")
    office_ip = world.residential_address("IR")  # engineer travelling in IR
    rules.add("whitelist", "ip", office_ip)

    print("Zone rule set:")
    for rule in rules.rules:
        print(f"  {rule.action:12s} {rule.scope:8s} {rule.target}")
    print()

    visitors = [
        ("US resident", world.residential_address("US")),
        ("German resident", world.residential_address("DE")),
        ("Iranian resident", world.residential_address("IR")),
        (f"Whitelisted IP (in IR)", office_ip),
        ("Chinese resident", world.residential_address("CN")),
        (f"Customer of {ru_isp.name}", None),  # filled below
    ]
    # Find an address actually inside the blocked Russian ISP's AS.
    for _ in range(50):
        candidate = world.residential_address("RU")
        record = asn_registry.lookup(candidate)
        if record and record.asn == ru_isp.asn:
            visitors[-1] = (f"Customer of {ru_isp.name}", candidate)
            break

    print("Visitor evaluation:")
    for label, ip in visitors:
        if ip is None:
            continue
        action = evaluate_visitor(rules, ip, world.geoip, asn_registry)
        print(f"  {label:28s} -> {action or 'allow'}")

    # Cross-check: a ground-truth geoblocking policy, expressed as rules,
    # must make the same decisions the simulated CDN edge makes.
    print("\nCross-checking a real policy against the rule engine:")
    name, policy = next(
        (n, p) for n, p in world.policies.items()
        if p.is_geoblocking and p.enforcer == "cloudflare")
    derived = rules_from_geopolicy(policy)
    agreements = 0
    checks = 0
    for country in list(world.registry.luminati_codes())[:30]:
        engine_says = derived.evaluate("0.0.0.0", country=country)
        policy_says = "block" if policy.blocks(country, None, 0) else None
        checks += 1
        if (engine_says == "block") == (policy_says == "block"):
            agreements += 1
    print(f"  {name}: rule engine and GeoPolicy agree on "
          f"{agreements}/{checks} countries")


if __name__ == "__main__":
    main()
