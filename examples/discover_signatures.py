#!/usr/bin/env python3
"""Scenario: discover block-page signatures from raw scan traffic.

The heart of the paper's methodology (§4.1.2–4.1.3) is *semi-automated
discovery*: you don't know what block pages look like in advance, so you
flag suspiciously short pages, cluster them, eyeball each cluster, and
extract a robust signature per family.  This example runs that loop on
raw probe traffic and prints the signatures it derives — then shows they
match fresh page instances whose embedded Ray IDs / incident numbers
differ.

Run:  python examples/discover_signatures.py
"""

from repro import World, WorldConfig
from repro.core.discovery import discover
from repro.core.lengths import extract_outliers, representative_lengths
from repro.lumscan.scanner import Lumscan
from repro.proxynet.luminati import LuminatiClient
from repro.textutil.htmltext import extract_text
from repro.websim import blockpages

COUNTRIES = ["IR", "SY", "CU", "CN", "RU", "US", "DE", "BR"]


def main() -> None:
    world = World(WorldConfig.tiny())
    scanner = Lumscan(LuminatiClient(world))

    print("Scanning 400 domains from 8 countries (2 samples each)...")
    urls = [d.url for d in world.population.top(400)]
    dataset = scanner.scan(urls, COUNTRIES, samples=2)
    print(f"  {len(dataset)} samples collected\n")

    reps = representative_lengths(dataset)
    outliers = extract_outliers(dataset, reps, cutoff=0.30)
    bodies = [o.sample.body for o in outliers if o.sample.body is not None]
    print(f"Length heuristic flagged {len(outliers)} outliers "
          f"({len(bodies)} with retained bodies)")

    background = [s.body for s in dataset
                  if s.status == 200 and s.body is not None][:100]
    clusters = discover(bodies, background, min_cluster_size=2)
    print(f"Clustering produced {len(clusters)} clusters of >= 2 pages\n")

    for cluster in clusters:
        label = cluster.page_type or "(unrecognized)"
        print(f"cluster size={cluster.size:4d}  label={label}")
        for marker in cluster.markers:
            print(f"    signature marker: {marker!r}")

    # Show robustness: a *fresh* instance (new random IDs) still matches.
    import random
    rng = random.Random(999)
    labelled = [c for c in clusters if c.page_type and c.markers]
    print("\nValidating signatures against fresh page instances:")
    for cluster in labelled:
        fresh = blockpages.render(cluster.page_type, rng,
                                  "brand-new-host.example", "SY").body
        text = extract_text(fresh).lower()
        hit = all(m in text for m in cluster.markers)
        print(f"  {cluster.page_type:22s} -> {'MATCH' if hit else 'MISS'}")


if __name__ == "__main__":
    main()
