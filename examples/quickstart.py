#!/usr/bin/env python3
"""Quickstart: run the Top-10K geoblocking study end to end.

Builds a small synthetic Internet, runs the paper's full §4 pipeline
(initial 3-sample scan, length-outlier extraction, clustering + signature
discovery, fingerprint search, 20-sample confirmation), and prints what
was found — then checks the detections against the simulator's ground
truth, something the original study could only approximate by hand.

Run:  python examples/quickstart.py
"""

from repro import World, WorldConfig, run_top10k_study
from repro.analysis.report import render_table
from repro.analysis.tables import table5, table6
from repro.core.metrics import score_confirmed_blocks


def main() -> None:
    print("Building synthetic Internet (1,200 domains, 28 countries)...")
    world = World(WorldConfig.tiny())
    print(f"  {len(world.population)} domains, "
          f"{len(world.policies)} with access policies, "
          f"{len(world.geoblocking_domains())} geoblocking\n")

    print("Running the Top-10K study (this is the full paper pipeline)...")
    result = run_top10k_study(world)

    print(f"  safe probe list:        {len(result.safe_domains)} domains")
    print(f"  initial samples:        {len(result.initial)}")
    print(f"  length outliers:        {len(result.outliers)}")
    print(f"  clusters discovered:    {len({c.label for c in result.clusters})}")
    print(f"  candidate pairs:        {len(result.candidates)}")
    print(f"  confirmed instances:    {len(result.confirmed)}")
    print(f"  unique blocked domains: {len(result.confirmed_domains)}\n")

    print(render_table(table5(result)))
    print()
    print(render_table(table6(result)))
    print()

    score = score_confirmed_blocks(world, result.confirmed,
                                   result.safe_domains, result.countries)
    print("Ground-truth evaluation (simulator-only superpower):")
    print(f"  precision = {score.precision:.1%}")
    print(f"  recall    = {score.recall:.1%}")


if __name__ == "__main__":
    main()
