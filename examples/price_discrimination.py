#!/usr/bin/env python3
"""Scenario: find sites that change features or prices by country.

Beyond whole-site blocking, the paper's closing discussion (§7.3) points
at subtler discrimination: login buttons that vanish for some countries,
prices that depend on where you browse from.  This example surveys the
synthetic web's commerce sites from a spread of countries and reports
every consistent difference the detector finds, then grades the findings
against the simulator's ground truth.

Run:  python examples/price_discrimination.py
"""

from repro import World, WorldConfig
from repro.core.appdiff import run_appdiff_study
from repro.proxynet.luminati import LuminatiClient

SURVEY_COUNTRIES = ["US", "DE", "GB", "FR", "JP", "CA", "AU", "CH",
                    "CN", "RU", "BR", "IN", "NG", "TR"]


def main() -> None:
    world = World(WorldConfig.tiny())
    commerce = [d.name for d in world.population
                if d.category in ("Shopping", "Travel", "Auctions",
                                  "Personal Vehicles")
                and not d.dead and not d.redirect_loop
                and d.name not in world.policies][:60]
    countries = [c for c in SURVEY_COUNTRIES if c in world.registry]
    print(f"Surveying {len(commerce)} commerce sites from "
          f"{len(countries)} countries (2 samples each)...\n")

    luminati = LuminatiClient(world)
    result = run_appdiff_study(luminati, commerce, countries, samples=2)

    features = result.by_kind("feature-removal")
    prices = result.by_kind("price")
    print(f"Feature-removal findings: {len(features)}")
    for finding in features[:10]:
        print(f"  {finding.domain:24s} {finding.country}  {finding.detail}")
    print(f"\nPrice-discrimination findings: {len(prices)}")
    for finding in prices[:10]:
        print(f"  {finding.domain:24s} {finding.country}  {finding.detail}")

    # Grade against ground truth.  Note the subtlety: difference
    # detection has no direction — when most surveyed countries pay the
    # raised price, the *baseline* countries look "discounted"; both
    # sides of a genuine price split count (see appdiff.is_genuine).
    from repro.core.appdiff import is_genuine
    tp = sum(1 for finding in result.findings
             if is_genuine(world.degradations.get(finding.domain), finding))
    total = len(result.findings)
    print(f"\nGround truth: {tp}/{total} findings are real "
          f"({tp / total:.0%} precision)" if total else
          "\nNo findings (nothing to grade)")
    truth_domains = {name for name in commerce
                     if name in world.degradations}
    found_domains = set(result.domains_with_findings())
    if truth_domains:
        recall = len(found_domains & truth_domains) / len(truth_domains)
        print(f"Domain-level recall over surveyed commerce sites: {recall:.0%}")


if __name__ == "__main__":
    main()
