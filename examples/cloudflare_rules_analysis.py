#!/usr/bin/env python3
"""Scenario: analyze a Cloudflare firewall-rules snapshot (§6).

Reproduces the paper's validation analysis: given a July-2018 snapshot of
country-scoped access rules, compute per-tier blocking baselines, the
most-targeted countries per tier (Table 9), and the Figure 5 time series
showing sanctioned countries' rules being activated together — including
the April-2018 regression that briefly gave Free/Pro/Business zones the
Enterprise-only country-block feature.

Run:  python examples/cloudflare_rules_analysis.py
"""

import datetime

from repro.analysis.report import render_table
from repro.analysis.tables import table9
from repro.datasets.cloudflare_rules import (
    CloudflareRuleDataset,
    SANCTIONS_BUNDLE,
)


def main() -> None:
    print("Generating a 120,000-zone rules snapshot...")
    dataset = CloudflareRuleDataset.generate(n_zones=120_000, seed=7)
    print(f"  {len(dataset)} active country-scoped rules\n")

    print(render_table(table9(dataset)))
    print()

    regression = datetime.date(2018, 4, 1)
    recent = dataset.rules_activated_after(regression)
    non_ent_blocks = sum(
        1 for r in dataset
        if r.tier != "enterprise" and r.action == "block")
    print(f"Rules activated since the {regression} regression: {recent}")
    print(f"Non-Enterprise *block* rules (only possible during the "
          f"regression): {non_ent_blocks}\n")

    print("Figure 5 — cumulative Enterprise block-rule activations:")
    series = dataset.activation_series(SANCTIONS_BUNDLE, tier="enterprise",
                                       action="block")
    checkpoints = [datetime.date(2016, 12, 31), datetime.date(2017, 12, 31),
                   datetime.date(2018, 7, 15)]
    header = "country " + "".join(f"{d.isoformat():>14s}" for d in checkpoints)
    print(f"  {header}")
    for country, points in series.items():
        row = f"  {country:7s}"
        for checkpoint in checkpoints:
            count = sum(1 for d, _ in points if d <= checkpoint)
            row += f"{count:14d}"
        print(row)
    print("\nThe sanctioned-country curves move together: customers that "
          "activate\nblocking for one sanctioned country activate the "
          "whole set within days.")


if __name__ == "__main__":
    main()
