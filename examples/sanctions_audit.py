#!/usr/bin/env python3
"""Scenario: what does a user in a sanctioned country actually see?

The paper's motivating observation is that users in Iran, Syria, Sudan,
and Cuba lose access to ordinary websites — shopping, news, even
pbskids.com — because of blanket sanctions compliance.  This example
audits the synthetic Top-500 from four sanctioned countries plus two
controls, fetching each site the way a resident's browser would, and
reports exactly what each country's users are denied, per provider.

Run:  python examples/sanctions_audit.py
"""

from collections import Counter, defaultdict

from repro import World, WorldConfig, classify_body
from repro.httpsim.messages import Request
from repro.httpsim.url import parse_url
from repro.httpsim.useragent import browser_headers
from repro.netsim.errors import FetchError

AUDIT_COUNTRIES = ["IR", "SY", "SD", "CU", "US", "DE"]
TOP_N = 500


def audit_country(world: World, country: str, domains) -> Counter:
    """Fetch every domain as a resident and tally the outcomes."""
    outcomes: Counter = Counter()
    ip = world.residential_address(country)
    for domain in domains:
        request = Request(url=parse_url(domain.url), headers=browser_headers())
        try:
            response = world.fetch(request, ip)
            # Follow one redirect hop for the common http->https case.
            hops = 0
            while response.is_redirect and hops < 5:
                request = request.with_url(request.url.resolve(response.location))
                response = world.fetch(request, ip)
                hops += 1
        except FetchError:
            outcomes["unreachable"] += 1
            continue
        verdict = classify_body(response.body)
        if verdict.kind == "explicit-geoblock":
            outcomes[f"geoblocked ({verdict.provider})"] += 1
        elif verdict.kind == "censorship":
            outcomes["censored (nation-state)"] += 1
        elif verdict.kind == "challenge":
            outcomes["challenged (captcha/js)"] += 1
        elif verdict.is_blockpage:
            outcomes["blocked (ambiguous page)"] += 1
        else:
            outcomes["accessible"] += 1
    return outcomes


def main() -> None:
    world = World(WorldConfig.tiny())
    domains = [d for d in world.population.top(TOP_N) if not d.dead]
    print(f"Auditing {len(domains)} top-ranked sites from "
          f"{len(AUDIT_COUNTRIES)} countries...\n")

    denial_rates = {}
    for country in AUDIT_COUNTRIES:
        outcomes = audit_country(world, country, domains)
        name = world.registry.get(country).name
        total = sum(outcomes.values())
        denied = total - outcomes["accessible"]
        denial_rates[country] = denied / total
        print(f"{name} ({country}):")
        for outcome, count in outcomes.most_common():
            print(f"  {outcome:28s} {count:4d}  ({count / total:.1%})")
        print()

    print("Denial rate ranking (highest first):")
    for country, rate in sorted(denial_rates.items(), key=lambda kv: -kv[1]):
        flag = "  <- sanctioned" if world.registry.get(country).sanctioned else ""
        print(f"  {country}: {rate:.1%}{flag}")


if __name__ == "__main__":
    main()
