"""Artifact encoding must be byte-identical across interpreter runs.

Checkpoint resume diffs re-encoded artifacts against the bytes a fresh
run produces; any hash-seed or iteration-order dependence in
``encode_artifact`` (or ``save_report``) would make that comparison
flap.  These tests run the encoder in subprocesses with *different*
``PYTHONHASHSEED`` values — the harshest practical perturbation of
set/dict iteration order — and assert the output bytes match.
"""

from __future__ import annotations

import os
import subprocess
import sys

_ENCODE_SCRIPT = r"""
import json
import sys
from collections import Counter

from repro.core.identify import CDNPopulation
from repro.run.codecs import encode_artifact

population = CDNPopulation(tested=6)
for provider, domain in [("cloudflare", "zeta.example"),
                         ("cloudflare", "alpha.example"),
                         ("akamai", "mid.example"),
                         ("fastly", "omega.example")]:
    population.customers.setdefault(provider, set()).add(domain)

artifact = {
    "counts": Counter({"US": 3, "RU": 2, "CN": 2, "IR": 1}),
    "flags": {"gamma", "beta", "alpha", "delta"},
    "pair": ("left", ("nested", frozenset({"y", "x"}))),
    "population": population,
    "rates": {"b.example": 0.5, "a.example": 1.0},
}
sys.stdout.write(json.dumps(encode_artifact(artifact), sort_keys=False))
"""


def _encode_with_hash_seed(seed: str) -> bytes:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _ENCODE_SCRIPT],
        capture_output=True, env=env, check=True)
    return result.stdout


def test_encoding_is_hash_seed_independent():
    first = _encode_with_hash_seed("1")
    second = _encode_with_hash_seed("2")
    assert first, "encoder produced no output"
    assert first == second


def test_encoding_is_stable_across_repeat_runs():
    assert _encode_with_hash_seed("42") == _encode_with_hash_seed("42")


def test_encoded_sets_are_sorted():
    import json

    payload = json.loads(_encode_with_hash_seed("1"))
    assert payload["__repro__"] == "dict"
    entries = dict((key, value) for key, value in payload["items"])
    flags = entries["flags"]
    assert flags["__repro__"] == "set"
    assert flags["items"] == sorted(flags["items"])
    customers = entries["population"]["customers"]
    for _provider, domains in customers:
        assert domains == sorted(domains)


def test_dict_and_counter_order_round_trips():
    """Insertion order is the contract: encode preserves it, decode
    rebuilds it — that is *why* the lint ``ordered()`` annotations in
    codecs.py are correct and ``sorted()`` would be a bug."""
    from collections import Counter

    from repro.run.codecs import decode_artifact, encode_artifact

    counter = Counter()
    for country in ["US", "RU", "CN", "IR"]:
        counter[country] = 2  # equal counts: most_common order is insertion
    mapping = {"zeta": 1, "alpha": 2, "mid": 3}
    rebuilt_counter = decode_artifact(encode_artifact(counter))
    rebuilt_mapping = decode_artifact(encode_artifact(mapping))
    assert list(rebuilt_counter) == list(counter)
    assert rebuilt_counter.most_common() == counter.most_common()
    assert list(rebuilt_mapping) == list(mapping)
