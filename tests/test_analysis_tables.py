"""Tests for table builders and report rendering."""

import pytest

from repro.analysis import tables as tabs
from repro.analysis.report import render_markdown_table, render_table
from repro.core.metrics import recall_by_fingerprint
from repro.datasets.cloudflare_rules import CloudflareRuleDataset
from repro.datasets.fortiguard import FortiGuardClient


@pytest.fixture(scope="module")
def fortiguard(tiny_world):
    return FortiGuardClient(tiny_world.population, tiny_world.taxonomy,
                            seed=tiny_world.config.seed)


class TestTable1:
    def test_columns(self, tiny_top10k, tiny_world):
        table = tabs.table1(tiny_top10k, len(tiny_world.population))
        assert len(table.rows) == 1
        row = dict(zip(table.columns, table.rows[0]))
        assert row["Initial Domains"] == len(tiny_world.population)
        assert row["Safe Domains"] == len(tiny_top10k.safe_domains)
        assert row["Clusters"] >= 1
        assert row["Discovered CDNs"] >= 1

    def test_samples_match_dataset(self, tiny_top10k, tiny_world):
        table = tabs.table1(tiny_top10k, len(tiny_world.population))
        row = dict(zip(table.columns, table.rows[0]))
        assert row["Initial Samples"] == len(tiny_top10k.initial)


class TestTable2:
    def test_total_row(self, tiny_top10k):
        rows = recall_by_fingerprint(
            tiny_top10k.initial, tiny_top10k.representatives,
            registry=tiny_top10k.registry,
            restrict_countries=tiny_top10k.top_blocking_countries[:20])
        table = tabs.table2(rows)
        assert table.rows[-1][0] == "Total"
        total_recalled = sum(r.recalled for r in rows)
        assert table.rows[-1][1] == total_recalled

    def test_recall_rendered_as_percent(self, tiny_top10k):
        rows = recall_by_fingerprint(
            tiny_top10k.initial, tiny_top10k.representatives,
            registry=tiny_top10k.registry)
        table = tabs.table2(rows)
        for row in table.rows:
            assert row[3].endswith("%")


class TestTables3Through6:
    def test_table3_totals_consistent(self, tiny_top10k, fortiguard):
        table = tabs.table3(tiny_top10k, fortiguard)
        totals = table.rows[-1]
        assert totals[0] == "Total"
        assert totals[4] == totals[1] + totals[2] + totals[3]

    def test_table4_total_matches_unique_domains(self, tiny_top10k, fortiguard):
        table = tabs.table4(tiny_top10k, fortiguard)
        total_row = table.rows[-1]
        assert total_row[1] == len(tiny_top10k.safe_domains)
        assert total_row[2] == len(tiny_top10k.confirmed_domains)

    def test_table5_totals(self, tiny_top10k):
        table = tabs.table5(tiny_top10k)
        last = table.rows[-1]
        assert last[1] == len(tiny_top10k.confirmed_domains)
        assert last[3] == len(tiny_top10k.confirmed)

    def test_table6_sanctioned_on_top(self, tiny_top10k):
        table = tabs.table6(tiny_top10k)
        if len(table.rows) < 3:
            pytest.skip("too few confirmed blocks in tiny world")
        top_countries = [row[0] for row in table.rows[:3]]
        assert set(top_countries) & {"IR", "SY", "SD", "CU"}

    def test_table6_row_sums(self, tiny_top10k):
        table = tabs.table6(tiny_top10k)
        for row in table.rows:
            assert row[4] == row[1] + row[2] + row[3]


class TestTable9:
    def test_structure(self):
        dataset = CloudflareRuleDataset.generate(n_zones=20_000, seed=2)
        table = tabs.table9(dataset)
        assert table.rows[0][0] == "Baseline"
        assert len(table.rows) == 1 + 16
        for row in table.rows:
            for cell in row[1:]:
                assert cell.endswith("%")

    def test_country_subset(self):
        dataset = CloudflareRuleDataset.generate(n_zones=10_000, seed=2)
        table = tabs.table9(dataset, countries=["RU", "KP"])
        assert len(table.rows) == 3


class TestRendering:
    def test_render_table_aligned(self, tiny_top10k, tiny_world):
        table = tabs.table1(tiny_top10k, len(tiny_world.population))
        text = render_table(table)
        lines = text.splitlines()
        assert lines[0].startswith("Table 1")
        assert set(lines[2]) <= {"-", " "}

    def test_render_markdown(self, tiny_top10k, tiny_world):
        table = tabs.table1(tiny_top10k, len(tiny_world.population))
        md = render_markdown_table(table)
        assert md.startswith("| ")
        assert md.count("\n") == 2  # header + separator + one row

    def test_column_accessor(self, tiny_top10k, tiny_world):
        table = tabs.table1(tiny_top10k, len(tiny_world.population))
        assert table.column("Clusters") == [table.rows[0][4]]
        with pytest.raises(ValueError):
            table.column("Nope")

    def test_as_dicts(self, tiny_top10k, tiny_world):
        table = tabs.table1(tiny_top10k, len(tiny_world.population))
        dicts = table.as_dicts()
        assert dicts[0]["Safe Domains"] == len(tiny_top10k.safe_domains)
