"""Tests for fingerprint matching and the classifier."""

import random

import pytest

from repro.core.classify import (
    VERDICT_AMBIGUOUS,
    VERDICT_CENSORSHIP,
    VERDICT_CHALLENGE,
    VERDICT_ERROR,
    VERDICT_EXPLICIT,
    VERDICT_OK,
    classify_body,
    classify_sample,
)
from repro.core.fingerprints import (
    Fingerprint,
    FingerprintRegistry,
    PAGE_DISPLAY_NAMES,
    PAGE_PROVIDER,
)
from repro.lumscan.records import Sample
from repro.websim import blockpages


@pytest.fixture(scope="module")
def rng():
    return random.Random(7)


class TestFingerprint:
    def test_all_markers_required(self):
        fp = Fingerprint(page_type="x", markers=("aaa", "bbb"))
        assert fp.matches("aaa bbb ccc")
        assert not fp.matches("aaa only")

    def test_empty_markers_match_everything(self):
        assert Fingerprint(page_type="x", markers=()).matches("anything")


class TestRegistryMatching:
    def test_every_rendered_page_matches_its_fingerprint(self, registry, rng):
        for page_type in blockpages.ALL_PAGE_TYPES:
            page = blockpages.render(page_type, rng, "example.com", "IR")
            assert registry.match(page.body) == page_type, page_type

    def test_matching_robust_to_instance_variation(self, registry, rng):
        for _ in range(10):
            page = blockpages.render(blockpages.CLOUDFLARE_BLOCK, rng,
                                     "other-host.net", "SY")
            assert registry.match(page.body) == blockpages.CLOUDFLARE_BLOCK

    def test_normal_page_no_match(self, registry):
        from repro.websim.content import generate_page
        page = generate_page("plain.com", "Business", seed=1)
        assert registry.match(page) is None

    def test_none_and_empty(self, registry):
        assert registry.match(None) is None
        assert registry.match("") is None

    def test_cloudflare_vs_baidu_disambiguation(self, registry, rng):
        # Both say "has banned the country or region".
        cf = blockpages.render(blockpages.CLOUDFLARE_BLOCK, rng, "a.com", "IR")
        baidu = blockpages.render(blockpages.BAIDU_BLOCK, rng, "b.com", "CN")
        assert registry.match(cf.body) == blockpages.CLOUDFLARE_BLOCK
        assert registry.match(baidu.body) == blockpages.BAIDU_BLOCK

    def test_page_types_complete(self, registry):
        assert set(registry.page_types()) == set(blockpages.ALL_PAGE_TYPES)

    def test_explicit_types(self, registry):
        assert set(registry.explicit_types()) == set(
            blockpages.EXPLICIT_GEOBLOCK_TYPES)

    def test_get_and_contains(self, registry):
        assert blockpages.AKAMAI_BLOCK in registry
        assert registry.get(blockpages.AKAMAI_BLOCK).page_type == blockpages.AKAMAI_BLOCK
        with pytest.raises(KeyError):
            registry.get("unknown")

    def test_with_fingerprint_replaces(self, registry):
        custom = Fingerprint(page_type=blockpages.AKAMAI_BLOCK,
                             markers=("CUSTOM MARKER",))
        updated = registry.with_fingerprint(custom)
        assert updated.get(blockpages.AKAMAI_BLOCK).markers == ("CUSTOM MARKER",)
        # Original untouched.
        assert registry.get(blockpages.AKAMAI_BLOCK).markers != ("CUSTOM MARKER",)

    def test_display_names_and_providers_cover_all_types(self):
        for page_type in blockpages.ALL_PAGE_TYPES:
            assert page_type in PAGE_DISPLAY_NAMES
            assert page_type in PAGE_PROVIDER


class TestClassifyBody:
    def test_explicit(self, rng):
        page = blockpages.render(blockpages.APPENGINE_BLOCK, rng, "a.com", "IR")
        verdict = classify_body(page.body)
        assert verdict.kind == VERDICT_EXPLICIT
        assert verdict.provider == "appengine"
        assert verdict.is_blockpage

    def test_challenge(self, rng):
        page = blockpages.render(blockpages.CLOUDFLARE_CAPTCHA, rng, "a.com", "CN")
        verdict = classify_body(page.body)
        assert verdict.kind == VERDICT_CHALLENGE
        assert not verdict.is_blockpage

    def test_ambiguous(self, rng):
        page = blockpages.render(blockpages.AKAMAI_BLOCK, rng, "a.com", "IR")
        verdict = classify_body(page.body)
        assert verdict.kind == VERDICT_AMBIGUOUS
        assert verdict.is_blockpage

    def test_censorship_detected(self):
        body = "<html><iframe src='http://10.10.34.34?type=x'></iframe></html>"
        assert classify_body(body).kind == VERDICT_CENSORSHIP

    def test_ok(self):
        assert classify_body("<html>normal content</html>").kind == VERDICT_OK

    def test_none_body(self):
        assert classify_body(None).kind == VERDICT_OK


class TestClassifySample:
    def test_error_sample(self):
        sample = Sample(domain="a.com", country="US", status=0, length=0,
                        body=None, error="timeout")
        assert classify_sample(sample).kind == VERDICT_ERROR

    def test_ok_sample(self, rng):
        page = blockpages.render(blockpages.CLOUDFRONT_BLOCK, rng, "a.com", "SY")
        sample = Sample(domain="a.com", country="SY", status=403,
                        length=len(page.body), body=page.body, error=None)
        verdict = classify_sample(sample)
        assert verdict.kind == VERDICT_EXPLICIT
        assert verdict.provider == "cloudfront"
